//! Binary wire format for protocol messages, stream framing, and
//! per-feed flow control.
//!
//! Step II sends the two reference signals to the vouching device and Step
//! V returns the local time difference. Messages are encoded with a small
//! explicit binary codec (little-endian, length-prefixed) rather than a
//! serialization framework so the on-the-wire byte count — which feeds the
//! Bluetooth timing/energy models — is meaningful and stable.
//!
//! # Streaming ingestion at scale
//!
//! A remote [`crate::stream::AuthService`] ingesting thousands of
//! concurrent microphone feeds needs three things beyond the basic message
//! codec, all provided here:
//!
//! * **Batched audio** — [`Message::AudioBatch`] carries a run of
//!   consecutive audio chunks in one frame, amortizing the per-message tag
//!   and session header across a network read.
//! * **Framing** — [`Message::encode_framed`] prefixes the encoding with a
//!   `u32` length, and [`FrameReader`] reassembles messages from an
//!   arbitrarily segmented byte stream (TCP reads, BLE notifications),
//!   enforcing [`MAX_FRAME_BYTES`] before buffering.
//! * **Backpressure** — [`IngestFeed`] accounts buffered-but-unscanned
//!   samples per feed against a high-water mark, queueing
//!   [`Message::Busy`] when a sender overruns and [`Message::Credit`]
//!   once the scan drains the backlog, so a slow scanner throttles its
//!   senders instead of buffering without bound.

use std::collections::VecDeque;

use crate::config::ActionConfig;
use crate::error::PianoError;
use crate::ranging::LocationDiffs;
use crate::signal::ReferenceSignal;

/// Protocol messages exchanged over the Bluetooth secure channel.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Step II: both reference signals plus the session's schedule, sent by
    /// the authenticating device.
    ReferenceSignals {
        /// Session identifier chosen by the authenticating device.
        session: u64,
        /// The authenticating device's signal `S_A`.
        sa: SignalSpec,
        /// The vouching device's signal `S_V`.
        sv: SignalSpec,
    },
    /// Step V: the vouching device's local location difference
    /// `l_VV − l_VA` (in samples).
    TimeDiffReport {
        /// Session identifier echoed back.
        session: u64,
        /// `l_VV − l_VA` in samples, or `None` if either signal was not
        /// present in the vouching device's recording.
        vouch_diff_samples: Option<f64>,
    },
    /// A chunk of streamed recording audio.
    ///
    /// The streaming session API ([`crate::stream`]) consumes audio
    /// incrementally; this message gives those chunks a wire
    /// representation, so a device can forward its microphone feed to a
    /// remote [`crate::stream::AuthService`] instead of shipping one
    /// whole-recording blob. `seq` is a per-session chunk counter the
    /// receiver uses to detect gaps; samples are raw PCM at the session's
    /// nominal rate. Chunks are capped at [`MAX_AUDIO_CHUNK_SAMPLES`]
    /// samples on both sides of the wire — encoding a larger chunk panics
    /// rather than producing a frame every conforming receiver rejects.
    AudioChunk {
        /// Session identifier the audio belongs to.
        session: u64,
        /// Zero-based chunk sequence number within the session.
        seq: u32,
        /// PCM samples in stream order.
        samples: Vec<f64>,
    },
    /// A framed batch of consecutive audio chunks.
    ///
    /// Semantically identical to delivering
    /// `chunks.len()` [`Message::AudioChunk`]s with sequence numbers
    /// `start_seq, start_seq+1, …` — one frame instead of many amortizes
    /// the header and lets an ingest node pull a whole network read's
    /// worth of audio through the decoder at once. Caps:
    /// [`MAX_AUDIO_BATCH_CHUNKS`] chunks, [`MAX_AUDIO_CHUNK_SAMPLES`] per
    /// chunk, [`MAX_AUDIO_BATCH_SAMPLES`] total; both encoder and decoder
    /// enforce all three.
    AudioBatch {
        /// Session identifier the audio belongs to.
        session: u64,
        /// Sequence number of `chunks[0]`; chunk `i` has `start_seq + i`.
        start_seq: u32,
        /// Consecutive PCM chunks in stream order.
        chunks: Vec<Vec<f64>>,
    },
    /// Flow control: the receiver's buffered backlog crossed its
    /// high-water mark. The sender should pause this session's audio until
    /// a [`Message::Credit`] arrives; audio already in flight is still
    /// accepted (sequence numbers keep advancing).
    Busy {
        /// Session identifier the backlog belongs to.
        session: u64,
        /// Samples buffered but not yet scanned when the mark was crossed.
        buffered_samples: u64,
        /// The receiver's configured high-water mark, in samples.
        high_water: u64,
    },
    /// Flow control: the receiver drained its backlog; the sender may
    /// resume and keep roughly `samples` in flight.
    Credit {
        /// Session identifier the grant belongs to.
        session: u64,
        /// Samples of headroom now available.
        samples: u64,
    },
}

/// The construction parameters of one reference signal — equivalent
/// information to the PCM, three orders of magnitude smaller.
#[derive(Clone, Debug, PartialEq)]
pub struct SignalSpec {
    /// Sorted candidate indices (the frequency set `F`).
    pub indices: Vec<u16>,
    /// Per-tone phases, aligned with `indices`.
    pub phases: Vec<f64>,
    /// Per-tone amplitude.
    pub amplitude: f64,
}

impl SignalSpec {
    /// Extracts the spec from a reference signal.
    pub fn of(signal: &ReferenceSignal) -> Self {
        SignalSpec {
            indices: signal.indices().iter().map(|&i| i as u16).collect(),
            phases: signal.phases().to_vec(),
            amplitude: signal.amplitude(),
        }
    }

    /// Reconstructs the full reference signal under a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] if the spec is inconsistent with the
    /// configuration (bad indices, mismatched lengths, wrong amplitude).
    pub fn reconstruct(&self, config: &ActionConfig) -> Result<ReferenceSignal, PianoError> {
        if self.indices.is_empty() {
            return Err(PianoError::Wire("signal spec has no tones".into()));
        }
        if self.indices.len() != self.phases.len() {
            return Err(PianoError::Wire("indices/phases length mismatch".into()));
        }
        let indices: Vec<usize> = self.indices.iter().map(|&i| i as usize).collect();
        if !indices.windows(2).all(|w| w[0] < w[1]) {
            return Err(PianoError::Wire(
                "signal spec indices not sorted/unique".into(),
            ));
        }
        if indices[indices.len() - 1] >= config.grid.len() {
            return Err(PianoError::Wire("signal spec index out of grid".into()));
        }
        let expected_amp = config.max_amplitude / indices.len() as f64;
        if (self.amplitude - expected_amp).abs() > 1e-6 * expected_amp {
            return Err(PianoError::Wire(
                "signal spec amplitude violates power rule".into(),
            ));
        }
        ReferenceSignal::from_parts(
            config.grid,
            indices,
            self.amplitude,
            self.phases.clone(),
            config.signal_len,
            config.sample_rate,
        )
        .map_err(PianoError::Wire)
    }
}

const TAG_REFERENCE_SIGNALS: u8 = 1;
const TAG_TIME_DIFF: u8 = 2;
const TAG_AUDIO_CHUNK: u8 = 3;
const TAG_AUDIO_BATCH: u8 = 4;
const TAG_BUSY: u8 = 5;
const TAG_CREDIT: u8 = 6;

/// Ceiling on samples per [`Message::AudioChunk`]: one second at the
/// paper's 44.1 kHz rate, rounded up. Chunks are meant to be small (a few
/// audio-callback buffers); anything larger is a malformed frame.
pub const MAX_AUDIO_CHUNK_SAMPLES: usize = 65_536;

/// Ceiling on chunks per [`Message::AudioBatch`].
pub const MAX_AUDIO_BATCH_CHUNKS: usize = 256;

/// Ceiling on *total* samples per [`Message::AudioBatch`]: four seconds at
/// 44.1 kHz, rounded up — twice the paper's full recording, so one batch
/// can never buffer more than a couple of scans' worth of audio.
pub const MAX_AUDIO_BATCH_SAMPLES: usize = 262_144;

/// Ceiling on one framed message's payload length. Sized to admit a
/// maximal [`Message::AudioBatch`] (the largest legal message) with
/// header slack; [`FrameReader`] rejects larger length prefixes before
/// buffering a byte of the payload.
pub const MAX_FRAME_BYTES: usize = MAX_AUDIO_BATCH_SAMPLES * 8 + 4096;

impl Message {
    /// Encodes the message to bytes.
    ///
    /// # Panics
    ///
    /// Panics if an [`Message::AudioChunk`] carries more than
    /// [`MAX_AUDIO_CHUNK_SAMPLES`] samples — the decoder enforces the same
    /// cap, so a larger chunk could never be delivered; split it instead.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::ReferenceSignals { session, sa, sv } => {
                out.push(TAG_REFERENCE_SIGNALS);
                out.extend_from_slice(&session.to_le_bytes());
                encode_spec(&mut out, sa);
                encode_spec(&mut out, sv);
            }
            Message::TimeDiffReport {
                session,
                vouch_diff_samples,
            } => {
                out.push(TAG_TIME_DIFF);
                out.extend_from_slice(&session.to_le_bytes());
                match vouch_diff_samples {
                    Some(v) => {
                        out.push(1);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
            Message::AudioChunk {
                session,
                seq,
                samples,
            } => {
                assert!(
                    samples.len() <= MAX_AUDIO_CHUNK_SAMPLES,
                    "audio chunk of {} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} wire cap; \
                     split it into smaller chunks",
                    samples.len()
                );
                out.push(TAG_AUDIO_CHUNK);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
                for &s in samples {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            Message::AudioBatch {
                session,
                start_seq,
                chunks,
            } => {
                assert!(
                    chunks.len() <= MAX_AUDIO_BATCH_CHUNKS,
                    "audio batch of {} chunks exceeds the {MAX_AUDIO_BATCH_CHUNKS} wire cap; \
                     split it into smaller batches",
                    chunks.len()
                );
                let total: usize = chunks.iter().map(Vec::len).sum();
                assert!(
                    total <= MAX_AUDIO_BATCH_SAMPLES,
                    "audio batch of {total} samples exceeds the {MAX_AUDIO_BATCH_SAMPLES} wire \
                     cap; split it into smaller batches"
                );
                out.push(TAG_AUDIO_BATCH);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&start_seq.to_le_bytes());
                out.extend_from_slice(&(chunks.len() as u16).to_le_bytes());
                for chunk in chunks {
                    assert!(
                        chunk.len() <= MAX_AUDIO_CHUNK_SAMPLES,
                        "batch chunk of {} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} wire \
                         cap; split it into smaller chunks",
                        chunk.len()
                    );
                    out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
                    for &s in chunk {
                        out.extend_from_slice(&s.to_le_bytes());
                    }
                }
            }
            Message::Busy {
                session,
                buffered_samples,
                high_water,
            } => {
                out.push(TAG_BUSY);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&buffered_samples.to_le_bytes());
                out.extend_from_slice(&high_water.to_le_bytes());
            }
            Message::Credit { session, samples } => {
                out.push(TAG_CREDIT);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&samples.to_le_bytes());
            }
        }
        out
    }

    /// [`encode`](Self::encode) with a little-endian `u32` length prefix —
    /// the frame format [`FrameReader`] consumes.
    pub fn encode_framed(&self) -> Vec<u8> {
        let body = self.encode();
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a message from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] on truncation, unknown tags, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Message, PianoError> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.u8()?;
        let msg = match tag {
            TAG_REFERENCE_SIGNALS => {
                let session = r.u64()?;
                let sa = decode_spec(&mut r)?;
                let sv = decode_spec(&mut r)?;
                Message::ReferenceSignals { session, sa, sv }
            }
            TAG_TIME_DIFF => {
                let session = r.u64()?;
                let present = r.u8()?;
                let vouch_diff_samples = match present {
                    0 => None,
                    1 => Some(r.f64()?),
                    x => return Err(PianoError::Wire(format!("bad option byte {x}"))),
                };
                Message::TimeDiffReport {
                    session,
                    vouch_diff_samples,
                }
            }
            TAG_AUDIO_CHUNK => {
                let session = r.u64()?;
                let seq = r.u32()?;
                let n = r.u32()? as usize;
                if n > MAX_AUDIO_CHUNK_SAMPLES {
                    return Err(PianoError::Wire(format!(
                        "audio chunk of {n} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} cap"
                    )));
                }
                let mut samples = Vec::with_capacity(n);
                for _ in 0..n {
                    samples.push(r.f64()?);
                }
                Message::AudioChunk {
                    session,
                    seq,
                    samples,
                }
            }
            TAG_AUDIO_BATCH => {
                let session = r.u64()?;
                let start_seq = r.u32()?;
                let n_chunks = r.u16()? as usize;
                if n_chunks > MAX_AUDIO_BATCH_CHUNKS {
                    return Err(PianoError::Wire(format!(
                        "audio batch of {n_chunks} chunks exceeds the {MAX_AUDIO_BATCH_CHUNKS} cap"
                    )));
                }
                let mut total = 0usize;
                let mut chunks = Vec::with_capacity(n_chunks);
                for _ in 0..n_chunks {
                    let n = r.u32()? as usize;
                    if n > MAX_AUDIO_CHUNK_SAMPLES {
                        return Err(PianoError::Wire(format!(
                            "batch chunk of {n} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} cap"
                        )));
                    }
                    total += n;
                    if total > MAX_AUDIO_BATCH_SAMPLES {
                        return Err(PianoError::Wire(format!(
                            "audio batch of {total}+ samples exceeds the \
                             {MAX_AUDIO_BATCH_SAMPLES} cap"
                        )));
                    }
                    let mut samples = Vec::with_capacity(n);
                    for _ in 0..n {
                        samples.push(r.f64()?);
                    }
                    chunks.push(samples);
                }
                Message::AudioBatch {
                    session,
                    start_seq,
                    chunks,
                }
            }
            TAG_BUSY => Message::Busy {
                session: r.u64()?,
                buffered_samples: r.u64()?,
                high_water: r.u64()?,
            },
            TAG_CREDIT => Message::Credit {
                session: r.u64()?,
                samples: r.u64()?,
            },
            x => return Err(PianoError::Wire(format!("unknown message tag {x}"))),
        };
        if r.pos != bytes.len() {
            return Err(PianoError::Wire(format!(
                "{} trailing bytes after message",
                bytes.len() - r.pos
            )));
        }
        Ok(msg)
    }
}

fn encode_spec(out: &mut Vec<u8>, spec: &SignalSpec) {
    out.extend_from_slice(&(spec.indices.len() as u16).to_le_bytes());
    for &i in &spec.indices {
        out.extend_from_slice(&i.to_le_bytes());
    }
    for &p in &spec.phases {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out.extend_from_slice(&spec.amplitude.to_le_bytes());
}

fn decode_spec(r: &mut Reader<'_>) -> Result<SignalSpec, PianoError> {
    let n = r.u16()? as usize;
    if n == 0 || n > 4096 {
        return Err(PianoError::Wire(format!("implausible tone count {n}")));
    }
    let mut indices = Vec::with_capacity(n);
    for _ in 0..n {
        indices.push(r.u16()?);
    }
    let mut phases = Vec::with_capacity(n);
    for _ in 0..n {
        phases.push(r.f64()?);
    }
    let amplitude = r.f64()?;
    Ok(SignalSpec {
        indices,
        phases,
        amplitude,
    })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], PianoError> {
        if self.pos + n > self.bytes.len() {
            return Err(PianoError::Wire("truncated message".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PianoError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, PianoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("size")))
    }
    fn u32(&mut self) -> Result<u32, PianoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("size")))
    }
    fn u64(&mut self) -> Result<u64, PianoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("size")))
    }
    fn f64(&mut self) -> Result<f64, PianoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("size")))
    }
}

/// Reassembles length-prefixed [`Message`] frames from an arbitrarily
/// segmented byte stream.
///
/// Push bytes as they arrive (any slicing — TCP reads, BLE notifications,
/// byte-at-a-time) with [`push`](Self::push), then drain complete messages
/// with [`next_frame`](Self::next_frame). The reader enforces
/// [`MAX_FRAME_BYTES`] on the length prefix *before* buffering the
/// payload, so a malicious 4-byte header cannot make it allocate
/// unboundedly. A framing error (oversized prefix, malformed payload)
/// poisons the reader — a byte stream that has lost framing cannot be
/// trusted to resynchronize.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Contiguous stream buffer; `buf[pos..]` is the unconsumed tail
    /// (compacted once the consumed prefix amortizes — the same pattern
    /// as the streaming detector's ring).
    buf: Vec<u8>,
    pos: usize,
    poisoned: bool,
}

/// Consumed-prefix slack a [`FrameReader`] tolerates before compacting.
const FRAME_COMPACT_SLACK: usize = 64 * 1024;

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// Appends raw stream bytes. Accepts anything byte-slice-like,
    /// including the vendored `bytes::Bytes`.
    pub fn push(&mut self, data: impl AsRef<[u8]>) {
        self.buf.extend_from_slice(data.as_ref());
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether a framing error has poisoned the reader.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Decodes the next complete message, or `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] on an oversized length prefix or a
    /// payload [`Message::decode`] rejects; every later call then fails
    /// the same way (the reader is poisoned).
    pub fn next_frame(&mut self) -> Result<Option<Message>, PianoError> {
        if self.poisoned {
            return Err(PianoError::Wire(
                "frame reader poisoned by an earlier framing error".into(),
            ));
        }
        if self.buffered() < 4 {
            return Ok(None);
        }
        let header: [u8; 4] = self.buf[self.pos..self.pos + 4]
            .try_into()
            .expect("4 bytes buffered");
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME_BYTES {
            self.poisoned = true;
            return Err(PianoError::Wire(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap"
            )));
        }
        if self.buffered() < 4 + len {
            return Ok(None);
        }
        let body = &self.buf[self.pos + 4..self.pos + 4 + len];
        match Message::decode(body) {
            Ok(msg) => {
                self.pos += 4 + len;
                if self.pos > FRAME_COMPACT_SLACK {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                Ok(Some(msg))
            }
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }
}

/// Per-feed ingestion accounting: sequence tracking, a bounded pending
/// buffer, and watermark-based flow control.
///
/// One `IngestFeed` fronts one remote audio feed on an ingest node. Wire
/// audio goes in via [`accept`](Self::accept) (which verifies session id
/// and sequence contiguity), the scan drains samples out via
/// [`take_pending`](Self::take_pending), and the feed queues flow-control
/// replies for the sender:
///
/// * crossing the **high-water mark** queues one [`Message::Busy`] — the
///   sender should pause (in-flight audio is still accepted; dropping
///   sequenced audio would corrupt the stream);
/// * draining back under the **low-water mark** (half the high-water
///   mark) queues one [`Message::Credit`] with the regained headroom;
/// * the **hard limit** ([`hard_limit`](Self::hard_limit): the
///   high-water mark plus one maximal batch of post-`Busy` in-flight
///   slack) is where cooperation ends — a sender that ignores `Busy`
///   past it gets its audio *rejected* (feed state unchanged), so one
///   misbehaving feed can never buffer without bound; the caller should
///   drop the feed.
///
/// Drain replies with [`poll_reply`](Self::poll_reply).
/// [`peak_buffered`](Self::peak_buffered) records the observed
/// high-water mark for capacity planning.
#[derive(Debug)]
pub struct IngestFeed {
    session: u64,
    high_water: usize,
    low_water: usize,
    next_seq: u32,
    pending: VecDeque<f64>,
    peak_buffered: usize,
    awaiting_credit: bool,
    replies: VecDeque<Message>,
}

impl IngestFeed {
    /// A feed for wire session `session` that tolerates up to
    /// `high_water` buffered-but-unscanned samples before pushing back.
    ///
    /// # Panics
    ///
    /// Panics if `high_water` is zero.
    pub fn new(session: u64, high_water: usize) -> Self {
        assert!(high_water > 0, "high-water mark must be positive");
        IngestFeed {
            session,
            high_water,
            low_water: high_water / 2,
            next_seq: 0,
            pending: VecDeque::new(),
            peak_buffered: 0,
            awaiting_credit: false,
            replies: VecDeque::new(),
        }
    }

    /// The wire session id this feed accepts audio for.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Samples accepted but not yet taken by the scan.
    pub fn buffered(&self) -> usize {
        self.pending.len()
    }

    /// The largest backlog ever observed, in samples.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Whether a [`Message::Busy`] is outstanding (no credit granted yet).
    pub fn is_busy(&self) -> bool {
        self.awaiting_credit
    }

    /// The enforced backlog ceiling: high-water mark plus one maximal
    /// batch of in-flight slack. [`accept`](Self::accept) rejects audio
    /// that would exceed it.
    pub fn hard_limit(&self) -> usize {
        self.high_water + MAX_AUDIO_BATCH_SAMPLES
    }

    /// The next expected chunk sequence number.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Accepts one wire audio message ([`Message::AudioChunk`] or
    /// [`Message::AudioBatch`]) for this feed, buffering its samples.
    /// Returns the number of samples buffered.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] for non-audio messages, a session-id
    /// mismatch, a sequence gap, or audio that would push the backlog
    /// past [`hard_limit`](Self::hard_limit) (a sender ignoring `Busy`);
    /// the feed state is unchanged on error.
    pub fn accept(&mut self, msg: &Message) -> Result<usize, PianoError> {
        let (session, start_seq, seq_span, samples): (u64, u32, u32, usize) = match msg {
            Message::AudioChunk {
                session,
                seq,
                samples,
            } => (*session, *seq, 1, samples.len()),
            Message::AudioBatch {
                session,
                start_seq,
                chunks,
            } => (
                *session,
                *start_seq,
                chunks.len() as u32,
                chunks.iter().map(Vec::len).sum(),
            ),
            other => {
                return Err(PianoError::Wire(format!(
                    "ingest feed expects audio, got {other:?}"
                )))
            }
        };
        if session != self.session {
            return Err(PianoError::Wire(format!(
                "audio for session {session:#x}, expected {:#x}",
                self.session
            )));
        }
        if start_seq != self.next_seq {
            return Err(PianoError::Wire(format!(
                "audio gap: got seq {start_seq}, expected {}",
                self.next_seq
            )));
        }
        if self.pending.len() + samples > self.hard_limit() {
            return Err(PianoError::Wire(format!(
                "feed backlog of {} + {samples} samples exceeds the {} hard limit \
                 (sender ignored Busy); drop the feed",
                self.pending.len(),
                self.hard_limit()
            )));
        }
        self.next_seq += seq_span;
        match msg {
            Message::AudioChunk { samples, .. } => self.pending.extend(samples.iter().copied()),
            Message::AudioBatch { chunks, .. } => {
                for chunk in chunks {
                    self.pending.extend(chunk.iter().copied());
                }
            }
            _ => unreachable!("validated above"),
        }
        self.peak_buffered = self.peak_buffered.max(self.pending.len());
        if self.pending.len() > self.high_water && !self.awaiting_credit {
            self.awaiting_credit = true;
            self.replies.push_back(Message::Busy {
                session: self.session,
                buffered_samples: self.pending.len() as u64,
                high_water: self.high_water as u64,
            });
        }
        Ok(samples)
    }

    /// Takes up to `max` pending samples in stream order for scanning.
    /// Crossing back under the low-water mark after a
    /// [`Message::Busy`] queues the sender's [`Message::Credit`].
    pub fn take_pending(&mut self, max: usize) -> Vec<f64> {
        let n = max.min(self.pending.len());
        let taken: Vec<f64> = self.pending.drain(..n).collect();
        if self.awaiting_credit && self.pending.len() <= self.low_water {
            self.awaiting_credit = false;
            self.replies.push_back(Message::Credit {
                session: self.session,
                samples: (self.high_water - self.pending.len()) as u64,
            });
        }
        taken
    }

    /// Pops the next queued flow-control reply for the sender.
    pub fn poll_reply(&mut self) -> Option<Message> {
        self.replies.pop_front()
    }
}

/// Convenience: encodes the Step V report from detection output.
pub fn time_diff_report(session: u64, diffs: Option<&LocationDiffs>) -> Message {
    Message::TimeDiffReport {
        session,
        vouch_diff_samples: diffs.map(|d| d.vouch_diff_samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spec(indices: Vec<u16>) -> SignalSpec {
        let n = indices.len();
        SignalSpec {
            phases: indices.iter().map(|&i| i as f64 * 0.1).collect(),
            indices,
            amplitude: 32_000.0 / n as f64,
        }
    }

    #[test]
    fn reference_signals_roundtrip() {
        let msg = Message::ReferenceSignals {
            session: 0xDEADBEEF,
            sa: spec(vec![1, 5, 9]),
            sv: spec(vec![0, 2, 4, 6, 8]),
        };
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn time_diff_roundtrips_both_variants() {
        for v in [Some(1234.5), None] {
            let msg = Message::TimeDiffReport {
                session: 7,
                vouch_diff_samples: v,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn audio_chunk_roundtrips() {
        for samples in [
            Vec::new(),
            vec![0.0],
            (0..1024)
                .map(|i| (i as f64 * 0.37).sin() * 12_000.0)
                .collect(),
        ] {
            let msg = Message::AudioChunk {
                session: 0xFEED_F00D,
                seq: 41,
                samples,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn audio_chunk_truncation_and_trailing_garbage_error() {
        let msg = Message::AudioChunk {
            session: 5,
            seq: 1,
            samples: vec![1.0, -2.0, 3.5],
        };
        let bytes = msg.encode();
        for cut in [1, 9, 13, 16, bytes.len() - 1] {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Message::decode(&padded).is_err());
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn audio_chunk_encode_rejects_oversized_chunks() {
        // The encoder enforces the same cap as the decoder: an oversized
        // chunk must fail at the sender, not stall at every receiver.
        let _ = Message::AudioChunk {
            session: 1,
            seq: 0,
            samples: vec![0.0; MAX_AUDIO_CHUNK_SAMPLES + 1],
        }
        .encode();
    }

    #[test]
    fn audio_chunk_rejects_implausible_sample_count() {
        // Hand-craft a header claiming more samples than the cap; the
        // decoder must reject it before trying to allocate.
        let mut bytes = vec![3u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&((MAX_AUDIO_CHUNK_SAMPLES as u32 + 1).to_le_bytes()));
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
    }

    #[test]
    fn audio_batch_roundtrips() {
        for chunks in [
            vec![],
            vec![vec![1.0, -2.0]],
            vec![vec![0.5; 7], vec![], vec![-1.25; 3]],
        ] {
            let msg = Message::AudioBatch {
                session: 0xBEEF,
                start_seq: 17,
                chunks,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn audio_batch_truncation_and_trailing_garbage_error() {
        let msg = Message::AudioBatch {
            session: 9,
            start_seq: 3,
            chunks: vec![vec![1.0], vec![2.0, 3.0]],
        };
        let bytes = msg.encode();
        for cut in [1, 8, 12, 14, 18, bytes.len() - 1] {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut padded = bytes.clone();
        padded.push(7);
        assert!(Message::decode(&padded).is_err());
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn audio_batch_encode_rejects_too_many_chunks() {
        let _ = Message::AudioBatch {
            session: 1,
            start_seq: 0,
            chunks: vec![Vec::new(); MAX_AUDIO_BATCH_CHUNKS + 1],
        }
        .encode();
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn audio_batch_encode_rejects_oversized_totals() {
        // Each chunk is legal on its own; the batch total is not.
        let chunk = vec![0.0; MAX_AUDIO_CHUNK_SAMPLES];
        let n = MAX_AUDIO_BATCH_SAMPLES / MAX_AUDIO_CHUNK_SAMPLES + 1;
        let _ = Message::AudioBatch {
            session: 1,
            start_seq: 0,
            chunks: vec![chunk; n],
        }
        .encode();
    }

    #[test]
    fn audio_batch_decode_rejects_implausible_headers() {
        // Chunk count over the cap.
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&((MAX_AUDIO_BATCH_CHUNKS as u16 + 1).to_le_bytes()));
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
        // Per-chunk sample count over the cap.
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&((MAX_AUDIO_CHUNK_SAMPLES as u32 + 1).to_le_bytes()));
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
        // Total over the batch cap, every chunk individually legal. The
        // decoder must reject at the running total, before allocating.
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let n = MAX_AUDIO_BATCH_SAMPLES / MAX_AUDIO_CHUNK_SAMPLES + 1;
        bytes.extend_from_slice(&(n as u16).to_le_bytes());
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        bytes.extend_from_slice(&vec![0u8; MAX_AUDIO_CHUNK_SAMPLES * 8]);
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        bytes.extend_from_slice(&vec![0u8; MAX_AUDIO_CHUNK_SAMPLES * 8]);
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        bytes.extend_from_slice(&vec![0u8; MAX_AUDIO_CHUNK_SAMPLES * 8]);
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        bytes.extend_from_slice(&vec![0u8; MAX_AUDIO_CHUNK_SAMPLES * 8]);
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
    }

    #[test]
    fn flow_control_messages_roundtrip() {
        for msg in [
            Message::Busy {
                session: 3,
                buffered_samples: 99_000,
                high_water: 88_200,
            },
            Message::Credit {
                session: 3,
                samples: 44_100,
            },
        ] {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
            for cut in 0..msg.encode().len() {
                assert!(Message::decode(&msg.encode()[..cut]).is_err());
            }
        }
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let msgs = vec![
            Message::TimeDiffReport {
                session: 1,
                vouch_diff_samples: Some(12.5),
            },
            Message::AudioChunk {
                session: 1,
                seq: 0,
                samples: vec![1.0, 2.0, 3.0],
            },
            Message::Credit {
                session: 1,
                samples: 100,
            },
        ];
        let stream: Vec<u8> = msgs.iter().flat_map(|m| m.encode_framed()).collect();
        // Byte-at-a-time delivery.
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for &b in &stream {
            reader.push([b]);
            while let Some(m) = reader.next_frame().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(reader.buffered(), 0);
        // One shot delivery, via the vendored Bytes buffer.
        let mut reader = FrameReader::new();
        reader.push(bytes::Bytes::from(stream));
        let mut got = Vec::new();
        while let Some(m) = reader.next_frame().unwrap() {
            got.push(m);
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn frame_reader_rejects_oversized_prefixes_and_poisons() {
        let mut reader = FrameReader::new();
        reader.push(((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
        assert!(reader.next_frame().is_err());
        assert!(reader.is_poisoned());
        // Poisoned: even a valid frame is refused afterwards.
        reader.push(
            Message::Credit {
                session: 1,
                samples: 1,
            }
            .encode_framed(),
        );
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn frame_reader_poisons_on_malformed_payload() {
        let mut reader = FrameReader::new();
        reader.push(3u32.to_le_bytes());
        reader.push([99, 0, 0]); // unknown tag
        assert!(reader.next_frame().is_err());
        assert!(reader.is_poisoned());
    }

    #[test]
    fn ingest_feed_accounts_sequences_and_watermarks() {
        let mut feed = IngestFeed::new(7, 1000);
        assert_eq!(feed.session(), 7);
        // Chunks and batches advance the sequence together.
        feed.accept(&Message::AudioChunk {
            session: 7,
            seq: 0,
            samples: vec![0.0; 300],
        })
        .unwrap();
        feed.accept(&Message::AudioBatch {
            session: 7,
            start_seq: 1,
            chunks: vec![vec![0.0; 300], vec![0.0; 300]],
        })
        .unwrap();
        assert_eq!(feed.next_seq(), 3);
        assert_eq!(feed.buffered(), 900);
        assert!(!feed.is_busy(), "below the high-water mark");
        assert!(feed.poll_reply().is_none());
        // Crossing the mark queues exactly one Busy.
        feed.accept(&Message::AudioChunk {
            session: 7,
            seq: 3,
            samples: vec![0.0; 200],
        })
        .unwrap();
        assert!(feed.is_busy());
        assert_eq!(
            feed.poll_reply(),
            Some(Message::Busy {
                session: 7,
                buffered_samples: 1100,
                high_water: 1000,
            })
        );
        assert!(feed.poll_reply().is_none(), "one Busy per overrun");
        // In-flight audio is still accepted while busy, without new Busy.
        feed.accept(&Message::AudioChunk {
            session: 7,
            seq: 4,
            samples: vec![0.0; 100],
        })
        .unwrap();
        assert!(feed.poll_reply().is_none());
        assert_eq!(feed.peak_buffered(), 1200);
        // Draining to the low-water mark (half) grants credit once.
        let taken = feed.take_pending(600);
        assert_eq!(taken.len(), 600);
        // 1200 − 600 = 600 remaining > 500: still busy, no credit yet.
        assert!(feed.is_busy());
        assert!(feed.poll_reply().is_none());
        let _ = feed.take_pending(200);
        assert_eq!(
            feed.poll_reply(),
            Some(Message::Credit {
                session: 7,
                samples: 600,
            })
        );
        assert!(!feed.is_busy());
        // Errors leave the feed untouched.
        assert!(feed
            .accept(&Message::AudioChunk {
                session: 8,
                seq: 5,
                samples: vec![],
            })
            .is_err());
        assert!(feed
            .accept(&Message::AudioChunk {
                session: 7,
                seq: 99,
                samples: vec![],
            })
            .is_err());
        assert!(feed
            .accept(&Message::Credit {
                session: 7,
                samples: 0,
            })
            .is_err());
        assert_eq!(feed.next_seq(), 5);
        assert_eq!(feed.buffered(), 400);
    }

    #[test]
    fn ingest_feed_hard_limit_rejects_senders_that_ignore_busy() {
        let mut feed = IngestFeed::new(1, 100);
        assert_eq!(feed.hard_limit(), 100 + MAX_AUDIO_BATCH_SAMPLES);
        // A sender blasting max-size chunks past Busy fills the slack…
        let mut seq = 0u32;
        while (feed.buffered() + MAX_AUDIO_CHUNK_SAMPLES) <= feed.hard_limit() {
            feed.accept(&Message::AudioChunk {
                session: 1,
                seq,
                samples: vec![0.0; MAX_AUDIO_CHUNK_SAMPLES],
            })
            .unwrap();
            seq += 1;
        }
        assert!(feed.is_busy());
        let buffered = feed.buffered();
        // …and the first chunk past the hard limit is rejected whole,
        // with the feed state untouched (memory stays bounded).
        let err = feed
            .accept(&Message::AudioChunk {
                session: 1,
                seq,
                samples: vec![0.0; MAX_AUDIO_CHUNK_SAMPLES],
            })
            .unwrap_err();
        assert!(err.to_string().contains("hard limit"), "{err}");
        assert_eq!(feed.buffered(), buffered);
        assert_eq!(feed.next_seq(), seq);
        // Draining restores service for a re-synchronized feed.
        let _ = feed.take_pending(buffered);
        assert!(feed
            .accept(&Message::AudioChunk {
                session: 1,
                seq,
                samples: vec![0.0; 8],
            })
            .is_ok());
    }

    #[test]
    fn frame_reader_compacts_its_consumed_prefix() {
        let mut reader = FrameReader::new();
        let frame = Message::AudioChunk {
            session: 1,
            seq: 0,
            samples: vec![0.5; 8_192],
        }
        .encode_framed();
        // Several frames past the compaction slack: the consumed prefix
        // must be reclaimed rather than grow with the stream.
        for _ in 0..4 {
            reader.push(&frame);
            assert!(matches!(reader.next_frame(), Ok(Some(_))));
        }
        assert_eq!(reader.buffered(), 0);
        assert!(
            reader.buf.len() <= FRAME_COMPACT_SLACK + frame.len(),
            "stale prefix kept: {} bytes",
            reader.buf.len()
        );
    }

    #[test]
    fn truncated_messages_error() {
        let msg = Message::ReferenceSignals {
            session: 1,
            sa: spec(vec![1, 2]),
            sv: spec(vec![3]),
        };
        let bytes = msg.encode();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut bytes = Message::TimeDiffReport {
            session: 1,
            vouch_diff_samples: None,
        }
        .encode();
        bytes.push(0xFF);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(Message::decode(&[99, 0, 0]).is_err());
    }

    #[test]
    fn spec_roundtrips_through_reference_signal() {
        let config = ActionConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let original = ReferenceSignal::random(&config, &mut rng);
        let spec = SignalSpec::of(&original);
        let rebuilt = spec.reconstruct(&config).unwrap();
        assert_eq!(rebuilt, original);
        // Crucially the waveforms are identical: V plays exactly S_V.
        assert_eq!(rebuilt.waveform(), original.waveform());
    }

    #[test]
    fn reconstruct_validates() {
        let config = ActionConfig::default();
        // Empty.
        assert!(spec_err(
            SignalSpec {
                indices: vec![],
                phases: vec![],
                amplitude: 1.0
            },
            &config
        ));
        // Length mismatch.
        assert!(spec_err(
            SignalSpec {
                indices: vec![1, 2],
                phases: vec![0.0],
                amplitude: 16_000.0
            },
            &config
        ));
        // Unsorted.
        assert!(spec_err(
            SignalSpec {
                indices: vec![2, 1],
                phases: vec![0.0, 0.0],
                amplitude: 16_000.0
            },
            &config
        ));
        // Out of grid.
        assert!(spec_err(
            SignalSpec {
                indices: vec![40],
                phases: vec![0.0],
                amplitude: 32_000.0
            },
            &config
        ));
        // Wrong amplitude (power rule).
        assert!(spec_err(
            SignalSpec {
                indices: vec![1, 2],
                phases: vec![0.0, 0.0],
                amplitude: 99.0
            },
            &config
        ));
    }

    fn spec_err(s: SignalSpec, c: &ActionConfig) -> bool {
        s.reconstruct(c).is_err()
    }

    #[test]
    fn wire_size_is_compact() {
        // The Step II payload must be O(100) bytes, not PCM-sized: this is
        // what the Bluetooth timing budget in E8 assumes.
        let msg = Message::ReferenceSignals {
            session: 1,
            sa: spec((0..15).collect()),
            sv: spec((15..29).collect()),
        };
        let len = msg.encode().len();
        assert!(len < 600, "wire size {len} bytes");
    }
}
