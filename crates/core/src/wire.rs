//! Binary wire format for protocol messages.
//!
//! Step II sends the two reference signals to the vouching device and Step
//! V returns the local time difference. Messages are encoded with a small
//! explicit binary codec (little-endian, length-prefixed) rather than a
//! serialization framework so the on-the-wire byte count — which feeds the
//! Bluetooth timing/energy models — is meaningful and stable.

use crate::config::ActionConfig;
use crate::error::PianoError;
use crate::ranging::LocationDiffs;
use crate::signal::ReferenceSignal;

/// Protocol messages exchanged over the Bluetooth secure channel.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Step II: both reference signals plus the session's schedule, sent by
    /// the authenticating device.
    ReferenceSignals {
        /// Session identifier chosen by the authenticating device.
        session: u64,
        /// The authenticating device's signal `S_A`.
        sa: SignalSpec,
        /// The vouching device's signal `S_V`.
        sv: SignalSpec,
    },
    /// Step V: the vouching device's local location difference
    /// `l_VV − l_VA` (in samples).
    TimeDiffReport {
        /// Session identifier echoed back.
        session: u64,
        /// `l_VV − l_VA` in samples, or `None` if either signal was not
        /// present in the vouching device's recording.
        vouch_diff_samples: Option<f64>,
    },
    /// A chunk of streamed recording audio.
    ///
    /// The streaming session API ([`crate::stream`]) consumes audio
    /// incrementally; this message gives those chunks a wire
    /// representation, so a device can forward its microphone feed to a
    /// remote [`crate::stream::AuthService`] instead of shipping one
    /// whole-recording blob. `seq` is a per-session chunk counter the
    /// receiver uses to detect gaps; samples are raw PCM at the session's
    /// nominal rate. Chunks are capped at [`MAX_AUDIO_CHUNK_SAMPLES`]
    /// samples on both sides of the wire — encoding a larger chunk panics
    /// rather than producing a frame every conforming receiver rejects.
    AudioChunk {
        /// Session identifier the audio belongs to.
        session: u64,
        /// Zero-based chunk sequence number within the session.
        seq: u32,
        /// PCM samples in stream order.
        samples: Vec<f64>,
    },
}

/// The construction parameters of one reference signal — equivalent
/// information to the PCM, three orders of magnitude smaller.
#[derive(Clone, Debug, PartialEq)]
pub struct SignalSpec {
    /// Sorted candidate indices (the frequency set `F`).
    pub indices: Vec<u16>,
    /// Per-tone phases, aligned with `indices`.
    pub phases: Vec<f64>,
    /// Per-tone amplitude.
    pub amplitude: f64,
}

impl SignalSpec {
    /// Extracts the spec from a reference signal.
    pub fn of(signal: &ReferenceSignal) -> Self {
        SignalSpec {
            indices: signal.indices().iter().map(|&i| i as u16).collect(),
            phases: signal.phases().to_vec(),
            amplitude: signal.amplitude(),
        }
    }

    /// Reconstructs the full reference signal under a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] if the spec is inconsistent with the
    /// configuration (bad indices, mismatched lengths, wrong amplitude).
    pub fn reconstruct(&self, config: &ActionConfig) -> Result<ReferenceSignal, PianoError> {
        if self.indices.is_empty() {
            return Err(PianoError::Wire("signal spec has no tones".into()));
        }
        if self.indices.len() != self.phases.len() {
            return Err(PianoError::Wire("indices/phases length mismatch".into()));
        }
        let indices: Vec<usize> = self.indices.iter().map(|&i| i as usize).collect();
        if !indices.windows(2).all(|w| w[0] < w[1]) {
            return Err(PianoError::Wire(
                "signal spec indices not sorted/unique".into(),
            ));
        }
        if indices[indices.len() - 1] >= config.grid.len() {
            return Err(PianoError::Wire("signal spec index out of grid".into()));
        }
        let expected_amp = config.max_amplitude / indices.len() as f64;
        if (self.amplitude - expected_amp).abs() > 1e-6 * expected_amp {
            return Err(PianoError::Wire(
                "signal spec amplitude violates power rule".into(),
            ));
        }
        ReferenceSignal::from_parts(
            config.grid,
            indices,
            self.amplitude,
            self.phases.clone(),
            config.signal_len,
            config.sample_rate,
        )
        .map_err(PianoError::Wire)
    }
}

const TAG_REFERENCE_SIGNALS: u8 = 1;
const TAG_TIME_DIFF: u8 = 2;
const TAG_AUDIO_CHUNK: u8 = 3;

/// Ceiling on samples per [`Message::AudioChunk`]: one second at the
/// paper's 44.1 kHz rate, rounded up. Chunks are meant to be small (a few
/// audio-callback buffers); anything larger is a malformed frame.
pub const MAX_AUDIO_CHUNK_SAMPLES: usize = 65_536;

impl Message {
    /// Encodes the message to bytes.
    ///
    /// # Panics
    ///
    /// Panics if an [`Message::AudioChunk`] carries more than
    /// [`MAX_AUDIO_CHUNK_SAMPLES`] samples — the decoder enforces the same
    /// cap, so a larger chunk could never be delivered; split it instead.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::ReferenceSignals { session, sa, sv } => {
                out.push(TAG_REFERENCE_SIGNALS);
                out.extend_from_slice(&session.to_le_bytes());
                encode_spec(&mut out, sa);
                encode_spec(&mut out, sv);
            }
            Message::TimeDiffReport {
                session,
                vouch_diff_samples,
            } => {
                out.push(TAG_TIME_DIFF);
                out.extend_from_slice(&session.to_le_bytes());
                match vouch_diff_samples {
                    Some(v) => {
                        out.push(1);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
            Message::AudioChunk {
                session,
                seq,
                samples,
            } => {
                assert!(
                    samples.len() <= MAX_AUDIO_CHUNK_SAMPLES,
                    "audio chunk of {} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} wire cap; \
                     split it into smaller chunks",
                    samples.len()
                );
                out.push(TAG_AUDIO_CHUNK);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
                for &s in samples {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
        }
        out
    }

    /// Decodes a message from bytes.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] on truncation, unknown tags, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Message, PianoError> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.u8()?;
        let msg = match tag {
            TAG_REFERENCE_SIGNALS => {
                let session = r.u64()?;
                let sa = decode_spec(&mut r)?;
                let sv = decode_spec(&mut r)?;
                Message::ReferenceSignals { session, sa, sv }
            }
            TAG_TIME_DIFF => {
                let session = r.u64()?;
                let present = r.u8()?;
                let vouch_diff_samples = match present {
                    0 => None,
                    1 => Some(r.f64()?),
                    x => return Err(PianoError::Wire(format!("bad option byte {x}"))),
                };
                Message::TimeDiffReport {
                    session,
                    vouch_diff_samples,
                }
            }
            TAG_AUDIO_CHUNK => {
                let session = r.u64()?;
                let seq = r.u32()?;
                let n = r.u32()? as usize;
                if n > MAX_AUDIO_CHUNK_SAMPLES {
                    return Err(PianoError::Wire(format!(
                        "audio chunk of {n} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} cap"
                    )));
                }
                let mut samples = Vec::with_capacity(n);
                for _ in 0..n {
                    samples.push(r.f64()?);
                }
                Message::AudioChunk {
                    session,
                    seq,
                    samples,
                }
            }
            x => return Err(PianoError::Wire(format!("unknown message tag {x}"))),
        };
        if r.pos != bytes.len() {
            return Err(PianoError::Wire(format!(
                "{} trailing bytes after message",
                bytes.len() - r.pos
            )));
        }
        Ok(msg)
    }
}

fn encode_spec(out: &mut Vec<u8>, spec: &SignalSpec) {
    out.extend_from_slice(&(spec.indices.len() as u16).to_le_bytes());
    for &i in &spec.indices {
        out.extend_from_slice(&i.to_le_bytes());
    }
    for &p in &spec.phases {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out.extend_from_slice(&spec.amplitude.to_le_bytes());
}

fn decode_spec(r: &mut Reader<'_>) -> Result<SignalSpec, PianoError> {
    let n = r.u16()? as usize;
    if n == 0 || n > 4096 {
        return Err(PianoError::Wire(format!("implausible tone count {n}")));
    }
    let mut indices = Vec::with_capacity(n);
    for _ in 0..n {
        indices.push(r.u16()?);
    }
    let mut phases = Vec::with_capacity(n);
    for _ in 0..n {
        phases.push(r.f64()?);
    }
    let amplitude = r.f64()?;
    Ok(SignalSpec {
        indices,
        phases,
        amplitude,
    })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], PianoError> {
        if self.pos + n > self.bytes.len() {
            return Err(PianoError::Wire("truncated message".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, PianoError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, PianoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("size")))
    }
    fn u32(&mut self) -> Result<u32, PianoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("size")))
    }
    fn u64(&mut self) -> Result<u64, PianoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("size")))
    }
    fn f64(&mut self) -> Result<f64, PianoError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("size")))
    }
}

/// Convenience: encodes the Step V report from detection output.
pub fn time_diff_report(session: u64, diffs: Option<&LocationDiffs>) -> Message {
    Message::TimeDiffReport {
        session,
        vouch_diff_samples: diffs.map(|d| d.vouch_diff_samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spec(indices: Vec<u16>) -> SignalSpec {
        let n = indices.len();
        SignalSpec {
            phases: indices.iter().map(|&i| i as f64 * 0.1).collect(),
            indices,
            amplitude: 32_000.0 / n as f64,
        }
    }

    #[test]
    fn reference_signals_roundtrip() {
        let msg = Message::ReferenceSignals {
            session: 0xDEADBEEF,
            sa: spec(vec![1, 5, 9]),
            sv: spec(vec![0, 2, 4, 6, 8]),
        };
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn time_diff_roundtrips_both_variants() {
        for v in [Some(1234.5), None] {
            let msg = Message::TimeDiffReport {
                session: 7,
                vouch_diff_samples: v,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn audio_chunk_roundtrips() {
        for samples in [
            Vec::new(),
            vec![0.0],
            (0..1024)
                .map(|i| (i as f64 * 0.37).sin() * 12_000.0)
                .collect(),
        ] {
            let msg = Message::AudioChunk {
                session: 0xFEED_F00D,
                seq: 41,
                samples,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn audio_chunk_truncation_and_trailing_garbage_error() {
        let msg = Message::AudioChunk {
            session: 5,
            seq: 1,
            samples: vec![1.0, -2.0, 3.5],
        };
        let bytes = msg.encode();
        for cut in [1, 9, 13, 16, bytes.len() - 1] {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Message::decode(&padded).is_err());
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn audio_chunk_encode_rejects_oversized_chunks() {
        // The encoder enforces the same cap as the decoder: an oversized
        // chunk must fail at the sender, not stall at every receiver.
        let _ = Message::AudioChunk {
            session: 1,
            seq: 0,
            samples: vec![0.0; MAX_AUDIO_CHUNK_SAMPLES + 1],
        }
        .encode();
    }

    #[test]
    fn audio_chunk_rejects_implausible_sample_count() {
        // Hand-craft a header claiming more samples than the cap; the
        // decoder must reject it before trying to allocate.
        let mut bytes = vec![3u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&((MAX_AUDIO_CHUNK_SAMPLES as u32 + 1).to_le_bytes()));
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
    }

    #[test]
    fn truncated_messages_error() {
        let msg = Message::ReferenceSignals {
            session: 1,
            sa: spec(vec![1, 2]),
            sv: spec(vec![3]),
        };
        let bytes = msg.encode();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut bytes = Message::TimeDiffReport {
            session: 1,
            vouch_diff_samples: None,
        }
        .encode();
        bytes.push(0xFF);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(Message::decode(&[99, 0, 0]).is_err());
    }

    #[test]
    fn spec_roundtrips_through_reference_signal() {
        let config = ActionConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let original = ReferenceSignal::random(&config, &mut rng);
        let spec = SignalSpec::of(&original);
        let rebuilt = spec.reconstruct(&config).unwrap();
        assert_eq!(rebuilt, original);
        // Crucially the waveforms are identical: V plays exactly S_V.
        assert_eq!(rebuilt.waveform(), original.waveform());
    }

    #[test]
    fn reconstruct_validates() {
        let config = ActionConfig::default();
        // Empty.
        assert!(spec_err(
            SignalSpec {
                indices: vec![],
                phases: vec![],
                amplitude: 1.0
            },
            &config
        ));
        // Length mismatch.
        assert!(spec_err(
            SignalSpec {
                indices: vec![1, 2],
                phases: vec![0.0],
                amplitude: 16_000.0
            },
            &config
        ));
        // Unsorted.
        assert!(spec_err(
            SignalSpec {
                indices: vec![2, 1],
                phases: vec![0.0, 0.0],
                amplitude: 16_000.0
            },
            &config
        ));
        // Out of grid.
        assert!(spec_err(
            SignalSpec {
                indices: vec![40],
                phases: vec![0.0],
                amplitude: 32_000.0
            },
            &config
        ));
        // Wrong amplitude (power rule).
        assert!(spec_err(
            SignalSpec {
                indices: vec![1, 2],
                phases: vec![0.0, 0.0],
                amplitude: 99.0
            },
            &config
        ));
    }

    fn spec_err(s: SignalSpec, c: &ActionConfig) -> bool {
        s.reconstruct(c).is_err()
    }

    #[test]
    fn wire_size_is_compact() {
        // The Step II payload must be O(100) bytes, not PCM-sized: this is
        // what the Bluetooth timing budget in E8 assumes.
        let msg = Message::ReferenceSignals {
            session: 1,
            sa: spec((0..15).collect()),
            sv: spec((15..29).collect()),
        };
        let len = msg.encode().len();
        assert!(len < 600, "wire size {len} bytes");
    }
}
