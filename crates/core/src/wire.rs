//! Binary wire format for protocol messages, stream framing, and
//! per-feed flow control.
//!
//! Step II sends the two reference signals to the vouching device and Step
//! V returns the local time difference. Messages are encoded with a small
//! explicit binary codec (little-endian, length-prefixed) rather than a
//! serialization framework so the on-the-wire byte count — which feeds the
//! Bluetooth timing/energy models — is meaningful and stable.
//!
//! # Streaming ingestion at scale
//!
//! A remote [`crate::stream::AuthService`] ingesting thousands of
//! concurrent microphone feeds needs three things beyond the basic message
//! codec, all provided here:
//!
//! * **Batched audio** — [`Message::AudioBatch`] carries a run of
//!   consecutive audio chunks in one frame, amortizing the per-message tag
//!   and session header across a network read.
//! * **Framing** — [`Message::encode_framed`] prefixes the encoding with a
//!   `u32` length, and [`FrameReader`] reassembles messages from an
//!   arbitrarily segmented byte stream (TCP reads, BLE notifications),
//!   enforcing [`MAX_FRAME_BYTES`] before buffering.
//! * **Backpressure** — [`IngestFeed`] accounts buffered-but-unscanned
//!   samples per feed against a high-water mark, queueing
//!   [`Message::Busy`] when a sender overruns and [`Message::Credit`]
//!   once the scan drains the backlog, so a slow scanner throttles its
//!   senders instead of buffering without bound.
//!
//! # The i16 delta PCM codec
//!
//! Raw audio frames spend 8 wire bytes per `f64` sample even though every
//! real microphone produces 16-bit PCM. [`Message::AudioBatchI16`] is the
//! compressed batch representation: samples quantized to `i16`, each
//! chunk run through the best of three fixed linear predictors (order 0 =
//! the sample itself, order 1 = first difference, order 2 = second
//! difference — the FLAC "fixed predictor" family), and the residuals
//! zigzag + LEB128 varint packed. Silence costs one byte per sample and
//! in-band signal typically two, cutting wire bytes ≈4× versus the `f64`
//! encoding; decode reproduces the quantized samples **exactly** (the
//! codec is lossless over `i16` — only the initial quantization rounds).
//!
//! Which representation a connection uses is negotiated once at
//! handshake: the client lists the codec ids it can encode in
//! [`Message::Hello`], the server answers the chosen [`WireCodec`] in
//! [`Message::Accept`], and `PIANO_WIRE_CODEC` ([`WireCodec::ENV`])
//! selects what clients offer fleet-wide. The remaining transport
//! messages ([`Message::StreamEnd`], [`Message::Decision`]) delimit a
//! feed's recording and carry the verdict back; the socket loops binding
//! these messages to real byte streams live in the `piano-net` crate.

use std::collections::VecDeque;
use std::fmt;
use std::ops::Deref;

use crate::config::ActionConfig;
use crate::error::PianoError;
use crate::piano::{AuthDecision, DenialReason};
use crate::pool::{FramePool, PooledBuf};
use crate::ranging::LocationDiffs;
use crate::signal::ReferenceSignal;

/// One run of PCM samples on the wire — either plainly heap-owned or a
/// refcounted slab from a [`FramePool`].
///
/// Every audio payload in [`Message`] is a `Samples` (or a [`ChunkList`]
/// of them), so the *same* message type serves both decode paths:
/// [`Message::decode`] without a pool produces [`Samples::Owned`] vectors
/// exactly as before, while a pooled [`FrameReader`] decodes straight
/// into recycled slabs and hands them on **by reference** — cloning a
/// [`Samples::Pooled`] is a refcount bump, not a copy, which is what
/// lets [`IngestFeed`] buffer a frame's audio without re-owning it.
///
/// Both variants dereference to `&[T]` and compare by sample content, so
/// a pooled message is `==` to its owned equivalent.
#[derive(Clone)]
pub enum Samples<T = f64> {
    /// Plain heap-owned samples (construction by hosts/tests, and the
    /// pool-less decode path).
    Owned(Vec<T>),
    /// A refcounted slab drawn from a [`FramePool`]; dropping the last
    /// handle returns the slab to the pool.
    Pooled(PooledBuf<T>),
}

impl<T> Samples<T> {
    /// An empty, allocation-free sample run.
    pub fn empty() -> Self {
        Samples::Owned(Vec::new())
    }

    /// The samples as a slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[T] {
        match self {
            Samples::Owned(v) => v.as_slice(),
            Samples::Pooled(b) => b,
        }
    }

    /// Whether this run is backed by a pool slab (clones are refcount
    /// bumps) rather than a plain vector (clones copy).
    pub fn is_pooled(&self) -> bool {
        matches!(self, Samples::Pooled(_))
    }
}

impl<T> Deref for Samples<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> AsRef<[T]> for Samples<T> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> Default for Samples<T> {
    fn default() -> Self {
        Samples::empty()
    }
}

impl<T: PartialEq> PartialEq for Samples<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq> PartialEq<Vec<T>> for Samples<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: fmt::Debug> fmt::Debug for Samples<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T> From<Vec<T>> for Samples<T> {
    fn from(v: Vec<T>) -> Self {
        Samples::Owned(v)
    }
}

impl<T: Clone> From<&[T]> for Samples<T> {
    fn from(s: &[T]) -> Self {
        Samples::Owned(s.to_vec())
    }
}

/// The chunk list of a batched audio message — like [`Samples`], either
/// heap-owned or a pooled slab, so a pooled decode allocates nothing for
/// the list that carries the frozen per-chunk handles either.
#[derive(Clone)]
pub enum ChunkList<T = f64> {
    /// Plain heap-owned list of chunks.
    Owned(Vec<Samples<T>>),
    /// A refcounted list slab from a [`FramePool`]; releasing it drops
    /// the chunk handles, cascading their slabs back to the pool.
    Pooled(PooledBuf<Samples<T>>),
}

impl<T> ChunkList<T> {
    /// The chunks as a slice (also available through `Deref`).
    pub fn as_slice(&self) -> &[Samples<T>] {
        match self {
            ChunkList::Owned(v) => v.as_slice(),
            ChunkList::Pooled(b) => b,
        }
    }

    /// Total samples across all chunks.
    pub fn total_samples(&self) -> usize {
        self.as_slice().iter().map(|c| c.len()).sum()
    }
}

impl<T> Deref for ChunkList<T> {
    type Target = [Samples<T>];

    fn deref(&self) -> &[Samples<T>] {
        self.as_slice()
    }
}

impl<T> Default for ChunkList<T> {
    fn default() -> Self {
        ChunkList::Owned(Vec::new())
    }
}

impl<T: PartialEq> PartialEq for ChunkList<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq> PartialEq<Vec<Vec<T>>> for ChunkList<T> {
    fn eq(&self, other: &Vec<Vec<T>>) -> bool {
        self.len() == other.len() && self.iter().zip(other).all(|(a, b)| a == b)
    }
}

impl<T: fmt::Debug> fmt::Debug for ChunkList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T> From<Vec<Samples<T>>> for ChunkList<T> {
    fn from(v: Vec<Samples<T>>) -> Self {
        ChunkList::Owned(v)
    }
}

impl<T> From<Vec<Vec<T>>> for ChunkList<T> {
    fn from(v: Vec<Vec<T>>) -> Self {
        ChunkList::Owned(v.into_iter().map(Samples::Owned).collect())
    }
}

/// Protocol messages exchanged over the Bluetooth secure channel.
#[derive(Clone, Debug, PartialEq)]
pub enum Message {
    /// Step II: both reference signals plus the session's schedule, sent by
    /// the authenticating device.
    ReferenceSignals {
        /// Session identifier chosen by the authenticating device.
        session: u64,
        /// The authenticating device's signal `S_A`.
        sa: SignalSpec,
        /// The vouching device's signal `S_V`.
        sv: SignalSpec,
    },
    /// Step V: the vouching device's local location difference
    /// `l_VV − l_VA` (in samples).
    TimeDiffReport {
        /// Session identifier echoed back.
        session: u64,
        /// `l_VV − l_VA` in samples, or `None` if either signal was not
        /// present in the vouching device's recording.
        vouch_diff_samples: Option<f64>,
    },
    /// A chunk of streamed recording audio.
    ///
    /// The streaming session API ([`crate::stream`]) consumes audio
    /// incrementally; this message gives those chunks a wire
    /// representation, so a device can forward its microphone feed to a
    /// remote [`crate::stream::AuthService`] instead of shipping one
    /// whole-recording blob. `seq` is a per-session chunk counter the
    /// receiver uses to detect gaps; samples are raw PCM at the session's
    /// nominal rate. Chunks are capped at [`MAX_AUDIO_CHUNK_SAMPLES`]
    /// samples on both sides of the wire — encoding a larger chunk panics
    /// rather than producing a frame every conforming receiver rejects.
    AudioChunk {
        /// Session identifier the audio belongs to.
        session: u64,
        /// Zero-based chunk sequence number within the session.
        seq: u32,
        /// PCM samples in stream order.
        samples: Samples,
    },
    /// A framed batch of consecutive audio chunks.
    ///
    /// Semantically identical to delivering
    /// `chunks.len()` [`Message::AudioChunk`]s with sequence numbers
    /// `start_seq, start_seq+1, …` — one frame instead of many amortizes
    /// the header and lets an ingest node pull a whole network read's
    /// worth of audio through the decoder at once. Caps:
    /// [`MAX_AUDIO_BATCH_CHUNKS`] chunks, [`MAX_AUDIO_CHUNK_SAMPLES`] per
    /// chunk, [`MAX_AUDIO_BATCH_SAMPLES`] total; both encoder and decoder
    /// enforce all three.
    AudioBatch {
        /// Session identifier the audio belongs to.
        session: u64,
        /// Sequence number of `chunks[0]`; chunk `i` has `start_seq + i`.
        start_seq: u32,
        /// Consecutive PCM chunks in stream order.
        chunks: ChunkList,
    },
    /// Flow control: the receiver's buffered backlog crossed its
    /// high-water mark. The sender should pause this session's audio until
    /// a [`Message::Credit`] arrives; audio already in flight is still
    /// accepted (sequence numbers keep advancing).
    Busy {
        /// Session identifier the backlog belongs to.
        session: u64,
        /// Samples buffered but not yet scanned when the mark was crossed.
        buffered_samples: u64,
        /// The receiver's configured high-water mark, in samples.
        high_water: u64,
    },
    /// Flow control: the receiver drained its backlog; the sender may
    /// resume and keep roughly `samples` in flight.
    Credit {
        /// Session identifier the grant belongs to.
        session: u64,
        /// Samples of headroom now available.
        samples: u64,
    },
    /// A compressed batch of consecutive audio chunks: i16-quantized PCM,
    /// delta-encoded per chunk under a fixed linear predictor, residuals
    /// zigzag + varint packed (see the [module docs](self)).
    ///
    /// Semantically equivalent to an [`Message::AudioBatch`] whose samples
    /// happen to lie on the `i16` grid; the same caps apply
    /// ([`MAX_AUDIO_BATCH_CHUNKS`], [`MAX_AUDIO_CHUNK_SAMPLES`],
    /// [`MAX_AUDIO_BATCH_SAMPLES`]) and decoding reproduces the quantized
    /// samples exactly — the delta/varint layer is lossless.
    AudioBatchI16 {
        /// Session identifier the audio belongs to.
        session: u64,
        /// Sequence number of `chunks[0]`; chunk `i` has `start_seq + i`.
        start_seq: u32,
        /// Consecutive quantized PCM chunks in stream order.
        chunks: ChunkList<i16>,
    },
    /// Transport handshake, client → server: the audio codec ids
    /// ([`WireCodec::id`]) the sender can encode, in preference order.
    /// Unknown ids pass through undisturbed so newer clients can offer
    /// codecs an older server simply skips.
    Hello {
        /// Offered codec ids, most preferred first.
        codecs: Vec<u8>,
    },
    /// Transport handshake, server → client: the accepted feed. Assigns
    /// the wire session id every subsequent audio frame must carry and
    /// fixes the negotiated codec for the connection.
    Accept {
        /// Wire session id assigned to this feed.
        session: u64,
        /// The codec id ([`WireCodec::id`]) the server selected.
        codec: u8,
    },
    /// End of a feed's recording: no more audio will follow for this
    /// session. The receiver finishes the session's scan once the
    /// remaining backlog drains.
    StreamEnd {
        /// Session identifier the end-of-stream belongs to.
        session: u64,
    },
    /// The authenticator's final verdict for a session, sent back to the
    /// feed that streamed the vouching recording.
    Decision {
        /// Session identifier the verdict belongs to.
        session: u64,
        /// The decision.
        decision: AuthDecision,
    },
    /// Reconnect handshake, client → server: reattach to wire session
    /// `session` after a transport loss, sent as the *first* frame of the
    /// new connection (where a fresh feed would send [`Message::Hello`]).
    /// `next_seq` is the first chunk the client has not had acknowledged;
    /// the server answers with [`Message::ResumeAck`] naming the sequence
    /// it actually wants, and the client replays from there — the
    /// reconstructed stream is byte-identical to an unbroken one.
    Resume {
        /// The wire session id from the original [`Message::Accept`].
        session: u64,
        /// The client's replay cursor: first unacknowledged chunk seq.
        next_seq: u32,
    },
    /// Reconnect handshake, server → client: the feed is reattached.
    /// The client must (re)send chunks from `ack_seq` — everything below
    /// it reached the [`IngestFeed`] intact before the disconnect.
    ResumeAck {
        /// Session identifier echoed back.
        session: u64,
        /// First chunk sequence number the server still needs.
        ack_seq: u32,
        /// The server already holds this feed's [`Message::StreamEnd`]:
        /// skip straight to awaiting the decision.
        ended: bool,
    },
    /// Admission control, server → client, in place of
    /// [`Message::Accept`]: the server is shedding new feeds because its
    /// active backlog exceeds the configured limit. Re-dial after roughly
    /// `retry_after_ms` milliseconds.
    Retry {
        /// Suggested wait before re-dialing, in milliseconds.
        retry_after_ms: u64,
    },
    /// Continuous re-verification, server → client: re-challenge a
    /// *standing* feed over its live connection. After a granted
    /// [`Message::Decision`], a feed that stays connected may receive
    /// any number of these; each carries a fresh pair of reference
    /// signals for re-check round `round`. The feed records the acoustic
    /// exchange and streams it back as [`Message::RecheckAudio`] frames,
    /// then awaits the round's [`Message::RecheckVerdict`] — no
    /// reconnect, no new handshake, no new wire session.
    Recheck {
        /// The feed's wire session id (from the original
        /// [`Message::Accept`]).
        session: u64,
        /// One-based re-check round number; strictly increasing per
        /// session.
        round: u32,
        /// The fresh authenticating-device signal `S_A` for this round.
        sa: SignalSpec,
        /// The fresh vouching-device signal `S_V` for this round.
        sv: SignalSpec,
    },
    /// Continuous re-verification, client → server: a chunk of the
    /// feed's re-challenge recording for round `round`. Chunks are
    /// capped at [`MAX_AUDIO_CHUNK_SAMPLES`] samples like every audio
    /// frame; `done` marks the round's final chunk (which may carry zero
    /// samples).
    RecheckAudio {
        /// The feed's wire session id.
        session: u64,
        /// The round this audio answers.
        round: u32,
        /// Zero-based chunk sequence number within the round.
        seq: u32,
        /// Whether this is the round's final chunk.
        done: bool,
        /// PCM samples in stream order.
        samples: Vec<f64>,
    },
    /// Continuous re-verification, server → client: the verdict for one
    /// re-check round. A denied verdict does not tear the connection
    /// down by itself — lock-out policy (how many denials end the
    /// standing session) lives with the host.
    RecheckVerdict {
        /// The feed's wire session id.
        session: u64,
        /// The round the verdict concludes.
        round: u32,
        /// The round's decision.
        decision: AuthDecision,
    },
}

/// Audio codecs a connection can negotiate for its batch frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireCodec {
    /// [`Message::AudioBatch`]: 8 bytes per sample, `f64` PCM verbatim.
    Raw,
    /// [`Message::AudioBatchI16`]: i16 quantization + per-chunk fixed
    /// linear prediction + zigzag varint residuals (≈4× smaller).
    I16Delta,
}

impl WireCodec {
    /// Environment variable selecting the codec clients offer fleet-wide:
    /// `off` (or `raw`) for [`WireCodec::Raw`], `i16-delta` for
    /// [`WireCodec::I16Delta`].
    pub const ENV: &'static str = "PIANO_WIRE_CODEC";

    /// The wire id carried in [`Message::Hello`] / [`Message::Accept`].
    pub fn id(self) -> u8 {
        match self {
            WireCodec::Raw => 0,
            WireCodec::I16Delta => 1,
        }
    }

    /// The codec for a wire id, if recognized.
    pub fn from_id(id: u8) -> Option<WireCodec> {
        match id {
            0 => Some(WireCodec::Raw),
            1 => Some(WireCodec::I16Delta),
            _ => None,
        }
    }

    /// Parses a [`WireCodec::ENV`]-style name (`off`/`raw`, `i16-delta`).
    pub fn parse(name: &str) -> Option<WireCodec> {
        match name.trim() {
            "off" | "raw" => Some(WireCodec::Raw),
            "i16-delta" | "i16_delta" => Some(WireCodec::I16Delta),
            _ => None,
        }
    }

    /// The codec named by [`WireCodec::ENV`], defaulting to
    /// [`WireCodec::I16Delta`] (compression on unless opted out with
    /// `PIANO_WIRE_CODEC=off`). Unrecognized values fall back to the
    /// default rather than failing: a misspelled knob must not take the
    /// fleet down.
    pub fn from_env() -> WireCodec {
        std::env::var(Self::ENV)
            .ok()
            .and_then(|v| Self::parse(&v))
            .unwrap_or(WireCodec::I16Delta)
    }

    /// Server-side negotiation: the first offered id (preference order)
    /// that appears in `supported`, falling back to [`WireCodec::Raw`] —
    /// every conforming endpoint can encode raw batches, so a connection
    /// never fails over codec choice.
    pub fn negotiate(offered: &[u8], supported: &[WireCodec]) -> WireCodec {
        offered
            .iter()
            .filter_map(|&id| WireCodec::from_id(id))
            .find(|c| supported.contains(c))
            .unwrap_or(WireCodec::Raw)
    }
}

/// The construction parameters of one reference signal — equivalent
/// information to the PCM, three orders of magnitude smaller.
#[derive(Clone, Debug, PartialEq)]
pub struct SignalSpec {
    /// Sorted candidate indices (the frequency set `F`).
    pub indices: Vec<u16>,
    /// Per-tone phases, aligned with `indices`.
    pub phases: Vec<f64>,
    /// Per-tone amplitude.
    pub amplitude: f64,
}

impl SignalSpec {
    /// Extracts the spec from a reference signal.
    pub fn of(signal: &ReferenceSignal) -> Self {
        SignalSpec {
            indices: signal.indices().iter().map(|&i| i as u16).collect(),
            phases: signal.phases().to_vec(),
            amplitude: signal.amplitude(),
        }
    }

    /// Reconstructs the full reference signal under a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] if the spec is inconsistent with the
    /// configuration (bad indices, mismatched lengths, wrong amplitude).
    pub fn reconstruct(&self, config: &ActionConfig) -> Result<ReferenceSignal, PianoError> {
        if self.indices.is_empty() {
            return Err(PianoError::Wire("signal spec has no tones".into()));
        }
        if self.indices.len() != self.phases.len() {
            return Err(PianoError::Wire("indices/phases length mismatch".into()));
        }
        let indices: Vec<usize> = self.indices.iter().map(|&i| i as usize).collect();
        if !indices.windows(2).all(|w| w[0] < w[1]) {
            return Err(PianoError::Wire(
                "signal spec indices not sorted/unique".into(),
            ));
        }
        if indices[indices.len() - 1] >= config.grid.len() {
            return Err(PianoError::Wire("signal spec index out of grid".into()));
        }
        let expected_amp = config.max_amplitude / indices.len() as f64;
        if (self.amplitude - expected_amp).abs() > 1e-6 * expected_amp {
            return Err(PianoError::Wire(
                "signal spec amplitude violates power rule".into(),
            ));
        }
        ReferenceSignal::from_parts(
            config.grid,
            indices,
            self.amplitude,
            self.phases.clone(),
            config.signal_len,
            config.sample_rate,
        )
        .map_err(PianoError::Wire)
    }
}

const TAG_REFERENCE_SIGNALS: u8 = 1;
const TAG_TIME_DIFF: u8 = 2;
const TAG_AUDIO_CHUNK: u8 = 3;
const TAG_AUDIO_BATCH: u8 = 4;
const TAG_BUSY: u8 = 5;
const TAG_CREDIT: u8 = 6;
const TAG_AUDIO_BATCH_I16: u8 = 7;
const TAG_HELLO: u8 = 8;
const TAG_ACCEPT: u8 = 9;
const TAG_STREAM_END: u8 = 10;
const TAG_DECISION: u8 = 11;
const TAG_RESUME: u8 = 12;
const TAG_RESUME_ACK: u8 = 13;
const TAG_RETRY: u8 = 14;
const TAG_RECHECK: u8 = 15;
const TAG_RECHECK_AUDIO: u8 = 16;
const TAG_RECHECK_VERDICT: u8 = 17;

/// Ceiling on codec ids in one [`Message::Hello`].
const MAX_HELLO_CODECS: usize = 16;

/// Ceiling on the UTF-8 byte length of a
/// [`DenialReason::ProtocolFailure`] string on the wire; longer reasons
/// are truncated at a character boundary by the encoder.
const MAX_REASON_BYTES: usize = 1024;

/// Highest fixed-predictor order the i16 codec uses (the FLAC family:
/// 0 = verbatim, 1 = first difference, 2 = second difference).
const MAX_PREDICTOR_ORDER: u8 = 2;

/// ZigZag maps signed residuals to unsigned so small magnitudes of either
/// sign get short varints.
fn zigzag(v: i32) -> u32 {
    ((v << 1) ^ (v >> 31)) as u32
}

fn unzigzag(u: u32) -> i32 {
    ((u >> 1) as i32) ^ -((u & 1) as i32)
}

/// LEB128 length of `u` in bytes (1–5).
fn varint_len(u: u32) -> usize {
    match u {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0xFFF_FFFF => 4,
        _ => 5,
    }
}

fn push_varint(out: &mut Vec<u8>, mut u: u32) {
    while u >= 0x80 {
        out.push((u as u8) | 0x80);
        u >>= 7;
    }
    out.push(u as u8);
}

/// The residual of sample `i` under fixed predictor `order`, given the
/// already-decoded prefix `q[..i]`. Shared by encoder and decoder so the
/// two cannot diverge.
fn predictor(q: &[i16], i: usize, order: u8) -> i32 {
    match order {
        0 => 0,
        1 if i == 0 => 0,
        // piano-lint: allow(wire-no-panic, reason = "callers pass i <= q.len() with the i == 0 case handled above, so the prefix q[..i] is non-empty here")
        1 => q[i - 1] as i32,
        2 => match i {
            0 => 0,
            1 => q[0] as i32,
            // piano-lint: allow(wire-no-panic, reason = "i >= 2 in this arm and callers pass i <= q.len(), so both prefix taps are in bounds")
            _ => 2 * q[i - 1] as i32 - q[i - 2] as i32,
        },
        // piano-lint: allow(wire-no-panic, reason = "orders above MAX_PREDICTOR_ORDER are rejected by decode_i16_chunk before this is called, and the encoder only iterates 0..=MAX_PREDICTOR_ORDER")
        _ => unreachable!("orders above {MAX_PREDICTOR_ORDER} are rejected at decode"),
    }
}

/// Total varint bytes chunk `q` costs under `order`.
fn chunk_cost(q: &[i16], order: u8) -> usize {
    (0..q.len())
        .map(|i| varint_len(zigzag(q[i] as i32 - predictor(q, i, order))))
        .sum()
}

/// Encodes one i16 chunk: picks the cheapest fixed predictor (ties to the
/// lowest order), writes `order | n | residual varints`.
fn encode_i16_chunk(out: &mut Vec<u8>, q: &[i16]) {
    let order = (0..=MAX_PREDICTOR_ORDER)
        .min_by_key(|&o| chunk_cost(q, o))
        .unwrap_or(0);
    out.push(order);
    out.extend_from_slice(&(q.len() as u32).to_le_bytes());
    for i in 0..q.len() {
        push_varint(out, zigzag(q[i] as i32 - predictor(q, i, order)));
    }
}

/// Decodes `n` raw f64 audio samples, rejecting non-finite values.
///
/// Audio is the one payload that flows straight into the DSP kernels: a
/// NaN or ∞ accepted here would poison a session's sliding-DFT scan
/// state (see `piano_dsp::sparse`), so a frame carrying one is malformed
/// by definition and the whole message is refused. The i16 codec path
/// cannot encode non-finite values, so this check lives only on the raw
/// f64 path.
fn decode_f64_samples_into(
    r: &mut Reader<'_>,
    n: usize,
    out: &mut Vec<f64>,
) -> Result<(), PianoError> {
    out.reserve(n);
    for _ in 0..n {
        let v = r.f64()?;
        if !v.is_finite() {
            return Err(PianoError::Wire(format!(
                "non-finite audio sample {v} rejected at the ingest boundary"
            )));
        }
        out.push(v);
    }
    Ok(())
}

/// Decodes `n` raw f64 samples as one [`Samples`] run: into a recycled
/// slab when a pool is at hand, a fresh `Vec` otherwise.
fn decode_f64_chunk(
    r: &mut Reader<'_>,
    n: usize,
    pool: Option<&FramePool>,
) -> Result<Samples, PianoError> {
    match pool {
        Some(pool) => {
            let mut buf = pool.acquire_f64();
            decode_f64_samples_into(r, n, buf.as_mut_vec())?;
            Ok(Samples::Pooled(buf.freeze()))
        }
        None => {
            let mut samples = Vec::new();
            decode_f64_samples_into(r, n, &mut samples)?;
            Ok(Samples::Owned(samples))
        }
    }
}

/// Decodes one predictor-coded i16 chunk into `out`, which must start
/// empty — the predictor taps index the decoded prefix of *this* chunk.
fn decode_i16_chunk_into(r: &mut Reader<'_>, out: &mut Vec<i16>) -> Result<(), PianoError> {
    let order = r.u8()?;
    if order > MAX_PREDICTOR_ORDER {
        return Err(PianoError::Wire(format!(
            "unknown predictor order {order} (max {MAX_PREDICTOR_ORDER})"
        )));
    }
    let n = r.u32()? as usize;
    if n > MAX_AUDIO_CHUNK_SAMPLES {
        return Err(PianoError::Wire(format!(
            "i16 chunk of {n} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} cap"
        )));
    }
    out.reserve(n);
    for i in 0..n {
        let residual = unzigzag(r.varint32()?);
        let v = predictor(out, i, order)
            .checked_add(residual)
            .ok_or_else(|| PianoError::Wire("i16 residual overflows".into()))?;
        if v < i16::MIN as i32 || v > i16::MAX as i32 {
            return Err(PianoError::Wire(format!(
                "decoded sample {v} outside the i16 range"
            )));
        }
        out.push(v as i16);
    }
    Ok(())
}

/// Decodes one i16 chunk as a [`Samples<i16>`] run: into a recycled slab
/// when a pool is at hand, a fresh `Vec` otherwise.
fn decode_i16_chunk(
    r: &mut Reader<'_>,
    pool: Option<&FramePool>,
) -> Result<Samples<i16>, PianoError> {
    match pool {
        Some(pool) => {
            let mut buf = pool.acquire_i16();
            decode_i16_chunk_into(r, buf.as_mut_vec())?;
            Ok(Samples::Pooled(buf.freeze()))
        }
        None => {
            let mut q = Vec::new();
            decode_i16_chunk_into(r, &mut q)?;
            Ok(Samples::Owned(q))
        }
    }
}

/// Accumulates decoded chunks on either representation — what lets the
/// batch arms of [`Message::decode`] and [`Message::decode_pooled`]
/// share one validation loop.
enum ListBuilder<'p, T> {
    Owned(Vec<Samples<T>>),
    Pooled(crate::pool::PooledBufMut<Samples<T>>, &'p FramePool),
}

impl<T: Clone> ListBuilder<'_, T> {
    fn push(&mut self, chunk: Samples<T>) {
        match self {
            ListBuilder::Owned(v) => v.push(chunk),
            ListBuilder::Pooled(b, _) => b.push(chunk),
        }
    }

    fn finish(self) -> ChunkList<T> {
        match self {
            ListBuilder::Owned(v) => ChunkList::Owned(v),
            ListBuilder::Pooled(b, _) => ChunkList::Pooled(b.freeze()),
        }
    }

    fn pool(&self) -> Option<&FramePool> {
        match self {
            ListBuilder::Owned(_) => None,
            ListBuilder::Pooled(_, p) => Some(p),
        }
    }
}

/// Ceiling on samples per [`Message::AudioChunk`]: one second at the
/// paper's 44.1 kHz rate, rounded up. Chunks are meant to be small (a few
/// audio-callback buffers); anything larger is a malformed frame.
pub const MAX_AUDIO_CHUNK_SAMPLES: usize = 65_536;

/// Ceiling on chunks per [`Message::AudioBatch`].
pub const MAX_AUDIO_BATCH_CHUNKS: usize = 256;

/// Ceiling on *total* samples per [`Message::AudioBatch`]: four seconds at
/// 44.1 kHz, rounded up — twice the paper's full recording, so one batch
/// can never buffer more than a couple of scans' worth of audio.
pub const MAX_AUDIO_BATCH_SAMPLES: usize = 262_144;

/// Ceiling on one framed message's payload length. Sized to admit a
/// maximal [`Message::AudioBatch`] (the largest legal message) with
/// header slack; [`FrameReader`] rejects larger length prefixes before
/// buffering a byte of the payload.
pub const MAX_FRAME_BYTES: usize = MAX_AUDIO_BATCH_SAMPLES * 8 + 4096;

impl Message {
    /// Encodes the message to bytes.
    ///
    /// # Panics
    ///
    /// Panics if an [`Message::AudioChunk`] carries more than
    /// [`MAX_AUDIO_CHUNK_SAMPLES`] samples — the decoder enforces the same
    /// cap, so a larger chunk could never be delivered; split it instead.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Message::ReferenceSignals { session, sa, sv } => {
                out.push(TAG_REFERENCE_SIGNALS);
                out.extend_from_slice(&session.to_le_bytes());
                encode_spec(&mut out, sa);
                encode_spec(&mut out, sv);
            }
            Message::TimeDiffReport {
                session,
                vouch_diff_samples,
            } => {
                out.push(TAG_TIME_DIFF);
                out.extend_from_slice(&session.to_le_bytes());
                match vouch_diff_samples {
                    Some(v) => {
                        out.push(1);
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                    None => out.push(0),
                }
            }
            Message::AudioChunk {
                session,
                seq,
                samples,
            } => {
                assert!(
                    samples.len() <= MAX_AUDIO_CHUNK_SAMPLES,
                    "audio chunk of {} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} wire cap; \
                     split it into smaller chunks",
                    samples.len()
                );
                out.push(TAG_AUDIO_CHUNK);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
                for &s in samples.iter() {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            Message::AudioBatch {
                session,
                start_seq,
                chunks,
            } => {
                assert!(
                    chunks.len() <= MAX_AUDIO_BATCH_CHUNKS,
                    "audio batch of {} chunks exceeds the {MAX_AUDIO_BATCH_CHUNKS} wire cap; \
                     split it into smaller batches",
                    chunks.len()
                );
                let total: usize = chunks.total_samples();
                assert!(
                    total <= MAX_AUDIO_BATCH_SAMPLES,
                    "audio batch of {total} samples exceeds the {MAX_AUDIO_BATCH_SAMPLES} wire \
                     cap; split it into smaller batches"
                );
                out.push(TAG_AUDIO_BATCH);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&start_seq.to_le_bytes());
                out.extend_from_slice(&(chunks.len() as u16).to_le_bytes());
                for chunk in chunks.iter() {
                    assert!(
                        chunk.len() <= MAX_AUDIO_CHUNK_SAMPLES,
                        "batch chunk of {} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} wire \
                         cap; split it into smaller chunks",
                        chunk.len()
                    );
                    out.extend_from_slice(&(chunk.len() as u32).to_le_bytes());
                    for &s in chunk.iter() {
                        out.extend_from_slice(&s.to_le_bytes());
                    }
                }
            }
            Message::Busy {
                session,
                buffered_samples,
                high_water,
            } => {
                out.push(TAG_BUSY);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&buffered_samples.to_le_bytes());
                out.extend_from_slice(&high_water.to_le_bytes());
            }
            Message::Credit { session, samples } => {
                out.push(TAG_CREDIT);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&samples.to_le_bytes());
            }
            Message::AudioBatchI16 {
                session,
                start_seq,
                chunks,
            } => {
                assert!(
                    chunks.len() <= MAX_AUDIO_BATCH_CHUNKS,
                    "audio batch of {} chunks exceeds the {MAX_AUDIO_BATCH_CHUNKS} wire cap; \
                     split it into smaller batches",
                    chunks.len()
                );
                let total: usize = chunks.total_samples();
                assert!(
                    total <= MAX_AUDIO_BATCH_SAMPLES,
                    "audio batch of {total} samples exceeds the {MAX_AUDIO_BATCH_SAMPLES} wire \
                     cap; split it into smaller batches"
                );
                out.push(TAG_AUDIO_BATCH_I16);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&start_seq.to_le_bytes());
                out.extend_from_slice(&(chunks.len() as u16).to_le_bytes());
                for chunk in chunks.iter() {
                    assert!(
                        chunk.len() <= MAX_AUDIO_CHUNK_SAMPLES,
                        "batch chunk of {} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} wire \
                         cap; split it into smaller chunks",
                        chunk.len()
                    );
                    encode_i16_chunk(&mut out, chunk);
                }
            }
            Message::Hello { codecs } => {
                assert!(
                    codecs.len() <= MAX_HELLO_CODECS,
                    "hello offers {} codecs, cap {MAX_HELLO_CODECS}",
                    codecs.len()
                );
                out.push(TAG_HELLO);
                out.push(codecs.len() as u8);
                out.extend_from_slice(codecs);
            }
            Message::Accept { session, codec } => {
                out.push(TAG_ACCEPT);
                out.extend_from_slice(&session.to_le_bytes());
                out.push(*codec);
            }
            Message::StreamEnd { session } => {
                out.push(TAG_STREAM_END);
                out.extend_from_slice(&session.to_le_bytes());
            }
            Message::Decision { session, decision } => {
                out.push(TAG_DECISION);
                out.extend_from_slice(&session.to_le_bytes());
                encode_decision(&mut out, decision);
            }
            Message::Resume { session, next_seq } => {
                out.push(TAG_RESUME);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&next_seq.to_le_bytes());
            }
            Message::ResumeAck {
                session,
                ack_seq,
                ended,
            } => {
                out.push(TAG_RESUME_ACK);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&ack_seq.to_le_bytes());
                out.push(u8::from(*ended));
            }
            Message::Retry { retry_after_ms } => {
                out.push(TAG_RETRY);
                out.extend_from_slice(&retry_after_ms.to_le_bytes());
            }
            Message::Recheck {
                session,
                round,
                sa,
                sv,
            } => {
                out.push(TAG_RECHECK);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                encode_spec(&mut out, sa);
                encode_spec(&mut out, sv);
            }
            Message::RecheckAudio {
                session,
                round,
                seq,
                done,
                samples,
            } => {
                assert!(
                    samples.len() <= MAX_AUDIO_CHUNK_SAMPLES,
                    "recheck audio chunk of {} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} \
                     wire cap; split it into smaller chunks",
                    samples.len()
                );
                out.push(TAG_RECHECK_AUDIO);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                out.extend_from_slice(&seq.to_le_bytes());
                out.push(u8::from(*done));
                out.extend_from_slice(&(samples.len() as u32).to_le_bytes());
                for &s in samples {
                    out.extend_from_slice(&s.to_le_bytes());
                }
            }
            Message::RecheckVerdict {
                session,
                round,
                decision,
            } => {
                out.push(TAG_RECHECK_VERDICT);
                out.extend_from_slice(&session.to_le_bytes());
                out.extend_from_slice(&round.to_le_bytes());
                encode_decision(&mut out, decision);
            }
        }
        out
    }

    /// [`encode`](Self::encode) with a little-endian `u32` length prefix —
    /// the frame format [`FrameReader`] consumes.
    pub fn encode_framed(&self) -> Vec<u8> {
        let body = self.encode();
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decodes a message from bytes into plain heap-owned payloads.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] on truncation, unknown tags, or
    /// trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<Message, PianoError> {
        Self::decode_with(bytes, None)
    }

    /// [`decode`](Self::decode), but audio payloads land in recycled
    /// slabs from `pool` ([`Samples::Pooled`] / [`ChunkList::Pooled`])
    /// instead of fresh heap vectors — the zero-copy ingest path a
    /// pooled [`FrameReader`] uses. Validation and the decoded sample
    /// values are bit-identical to the pool-less path.
    ///
    /// # Errors
    ///
    /// Exactly as [`decode`](Self::decode).
    pub fn decode_pooled(bytes: &[u8], pool: &FramePool) -> Result<Message, PianoError> {
        Self::decode_with(bytes, Some(pool))
    }

    fn decode_with(bytes: &[u8], pool: Option<&FramePool>) -> Result<Message, PianoError> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.u8()?;
        let msg = match tag {
            TAG_REFERENCE_SIGNALS => {
                let session = r.u64()?;
                let sa = decode_spec(&mut r)?;
                let sv = decode_spec(&mut r)?;
                Message::ReferenceSignals { session, sa, sv }
            }
            TAG_TIME_DIFF => {
                let session = r.u64()?;
                let present = r.u8()?;
                let vouch_diff_samples = match present {
                    0 => None,
                    1 => Some(r.f64()?),
                    x => return Err(PianoError::Wire(format!("bad option byte {x}"))),
                };
                Message::TimeDiffReport {
                    session,
                    vouch_diff_samples,
                }
            }
            TAG_AUDIO_CHUNK => {
                let session = r.u64()?;
                let seq = r.u32()?;
                let n = r.u32()? as usize;
                if n > MAX_AUDIO_CHUNK_SAMPLES {
                    return Err(PianoError::Wire(format!(
                        "audio chunk of {n} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} cap"
                    )));
                }
                let samples = decode_f64_chunk(&mut r, n, pool)?;
                Message::AudioChunk {
                    session,
                    seq,
                    samples,
                }
            }
            TAG_AUDIO_BATCH => {
                let session = r.u64()?;
                let start_seq = r.u32()?;
                let n_chunks = r.u16()? as usize;
                if n_chunks > MAX_AUDIO_BATCH_CHUNKS {
                    return Err(PianoError::Wire(format!(
                        "audio batch of {n_chunks} chunks exceeds the {MAX_AUDIO_BATCH_CHUNKS} cap"
                    )));
                }
                let mut total = 0usize;
                let mut chunks = match pool {
                    Some(p) => ListBuilder::Pooled(p.acquire_f64_list(), p),
                    None => ListBuilder::Owned(Vec::with_capacity(n_chunks)),
                };
                for _ in 0..n_chunks {
                    let n = r.u32()? as usize;
                    if n > MAX_AUDIO_CHUNK_SAMPLES {
                        return Err(PianoError::Wire(format!(
                            "batch chunk of {n} samples exceeds the {MAX_AUDIO_CHUNK_SAMPLES} cap"
                        )));
                    }
                    total += n;
                    if total > MAX_AUDIO_BATCH_SAMPLES {
                        return Err(PianoError::Wire(format!(
                            "audio batch of {total}+ samples exceeds the \
                             {MAX_AUDIO_BATCH_SAMPLES} cap"
                        )));
                    }
                    let chunk = decode_f64_chunk(&mut r, n, chunks.pool())?;
                    chunks.push(chunk);
                }
                Message::AudioBatch {
                    session,
                    start_seq,
                    chunks: chunks.finish(),
                }
            }
            TAG_BUSY => Message::Busy {
                session: r.u64()?,
                buffered_samples: r.u64()?,
                high_water: r.u64()?,
            },
            TAG_CREDIT => Message::Credit {
                session: r.u64()?,
                samples: r.u64()?,
            },
            TAG_AUDIO_BATCH_I16 => {
                let session = r.u64()?;
                let start_seq = r.u32()?;
                let n_chunks = r.u16()? as usize;
                if n_chunks > MAX_AUDIO_BATCH_CHUNKS {
                    return Err(PianoError::Wire(format!(
                        "audio batch of {n_chunks} chunks exceeds the {MAX_AUDIO_BATCH_CHUNKS} cap"
                    )));
                }
                let mut total = 0usize;
                let mut chunks = match pool {
                    Some(p) => ListBuilder::Pooled(p.acquire_i16_list(), p),
                    None => ListBuilder::Owned(Vec::with_capacity(n_chunks)),
                };
                for _ in 0..n_chunks {
                    let chunk = decode_i16_chunk(&mut r, chunks.pool())?;
                    total += chunk.len();
                    if total > MAX_AUDIO_BATCH_SAMPLES {
                        return Err(PianoError::Wire(format!(
                            "audio batch of {total}+ samples exceeds the \
                             {MAX_AUDIO_BATCH_SAMPLES} cap"
                        )));
                    }
                    chunks.push(chunk);
                }
                Message::AudioBatchI16 {
                    session,
                    start_seq,
                    chunks: chunks.finish(),
                }
            }
            TAG_HELLO => {
                let n = r.u8()? as usize;
                if n > MAX_HELLO_CODECS {
                    return Err(PianoError::Wire(format!(
                        "hello offers {n} codecs, cap {MAX_HELLO_CODECS}"
                    )));
                }
                Message::Hello {
                    codecs: r.take(n)?.to_vec(),
                }
            }
            TAG_ACCEPT => Message::Accept {
                session: r.u64()?,
                codec: r.u8()?,
            },
            TAG_STREAM_END => Message::StreamEnd { session: r.u64()? },
            TAG_DECISION => {
                let session = r.u64()?;
                let decision = decode_decision(&mut r)?;
                Message::Decision { session, decision }
            }
            TAG_RESUME => Message::Resume {
                session: r.u64()?,
                next_seq: r.u32()?,
            },
            TAG_RESUME_ACK => {
                let session = r.u64()?;
                let ack_seq = r.u32()?;
                let ended = match r.u8()? {
                    0 => false,
                    1 => true,
                    x => return Err(PianoError::Wire(format!("bad ended byte {x}"))),
                };
                Message::ResumeAck {
                    session,
                    ack_seq,
                    ended,
                }
            }
            TAG_RETRY => Message::Retry {
                retry_after_ms: r.u64()?,
            },
            TAG_RECHECK => {
                let session = r.u64()?;
                let round = r.u32()?;
                let sa = decode_spec(&mut r)?;
                let sv = decode_spec(&mut r)?;
                Message::Recheck {
                    session,
                    round,
                    sa,
                    sv,
                }
            }
            TAG_RECHECK_AUDIO => {
                let session = r.u64()?;
                let round = r.u32()?;
                let seq = r.u32()?;
                let done = match r.u8()? {
                    0 => false,
                    1 => true,
                    x => return Err(PianoError::Wire(format!("bad done byte {x}"))),
                };
                let n = r.u32()? as usize;
                if n > MAX_AUDIO_CHUNK_SAMPLES {
                    return Err(PianoError::Wire(format!(
                        "recheck audio chunk of {n} samples exceeds the \
                         {MAX_AUDIO_CHUNK_SAMPLES} cap"
                    )));
                }
                let mut samples = Vec::new();
                decode_f64_samples_into(&mut r, n, &mut samples)?;
                Message::RecheckAudio {
                    session,
                    round,
                    seq,
                    done,
                    samples,
                }
            }
            TAG_RECHECK_VERDICT => {
                let session = r.u64()?;
                let round = r.u32()?;
                let decision = decode_decision(&mut r)?;
                Message::RecheckVerdict {
                    session,
                    round,
                    decision,
                }
            }
            x => return Err(PianoError::Wire(format!("unknown message tag {x}"))),
        };
        if r.pos != bytes.len() {
            return Err(PianoError::Wire(format!(
                "{} trailing bytes after message",
                bytes.len() - r.pos
            )));
        }
        Ok(msg)
    }
}

/// Encodes a decision's kind byte + payload — shared by
/// [`Message::Decision`] and [`Message::RecheckVerdict`] so one-shot and
/// re-check verdicts carry byte-identical decision payloads.
fn encode_decision(out: &mut Vec<u8>, decision: &AuthDecision) {
    match decision {
        AuthDecision::Granted { distance_m } => {
            out.push(0);
            out.extend_from_slice(&distance_m.to_le_bytes());
        }
        AuthDecision::Denied { reason } => match reason {
            DenialReason::TooFar { distance_m } => {
                out.push(1);
                out.extend_from_slice(&distance_m.to_le_bytes());
            }
            DenialReason::SignalAbsent => out.push(2),
            DenialReason::NotPaired => out.push(3),
            DenialReason::BluetoothUnreachable => out.push(4),
            DenialReason::ProtocolFailure(why) => {
                out.push(5);
                let mut cut = why.len().min(MAX_REASON_BYTES);
                while !why.is_char_boundary(cut) {
                    cut -= 1;
                }
                let bytes = &why.as_bytes()[..cut];
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
        },
    }
}

/// Decodes a decision's kind byte + payload (inverse of
/// [`encode_decision`]).
fn decode_decision(r: &mut Reader<'_>) -> Result<AuthDecision, PianoError> {
    Ok(match r.u8()? {
        0 => AuthDecision::Granted {
            distance_m: r.f64()?,
        },
        1 => AuthDecision::Denied {
            reason: DenialReason::TooFar {
                distance_m: r.f64()?,
            },
        },
        2 => AuthDecision::Denied {
            reason: DenialReason::SignalAbsent,
        },
        3 => AuthDecision::Denied {
            reason: DenialReason::NotPaired,
        },
        4 => AuthDecision::Denied {
            reason: DenialReason::BluetoothUnreachable,
        },
        5 => {
            let n = r.u32()? as usize;
            if n > MAX_REASON_BYTES {
                return Err(PianoError::Wire(format!(
                    "failure reason of {n} bytes exceeds the {MAX_REASON_BYTES} cap"
                )));
            }
            let why = std::str::from_utf8(r.take(n)?)
                .map_err(|_| PianoError::Wire("failure reason is not UTF-8".into()))?
                .to_string();
            AuthDecision::Denied {
                reason: DenialReason::ProtocolFailure(why),
            }
        }
        x => return Err(PianoError::Wire(format!("bad decision kind {x}"))),
    })
}

fn encode_spec(out: &mut Vec<u8>, spec: &SignalSpec) {
    out.extend_from_slice(&(spec.indices.len() as u16).to_le_bytes());
    for &i in &spec.indices {
        out.extend_from_slice(&i.to_le_bytes());
    }
    for &p in &spec.phases {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out.extend_from_slice(&spec.amplitude.to_le_bytes());
}

fn decode_spec(r: &mut Reader<'_>) -> Result<SignalSpec, PianoError> {
    let n = r.u16()? as usize;
    if n == 0 || n > 4096 {
        return Err(PianoError::Wire(format!("implausible tone count {n}")));
    }
    let mut indices = Vec::with_capacity(n);
    for _ in 0..n {
        indices.push(r.u16()?);
    }
    let mut phases = Vec::with_capacity(n);
    for _ in 0..n {
        phases.push(r.f64()?);
    }
    let amplitude = r.f64()?;
    Ok(SignalSpec {
        indices,
        phases,
        amplitude,
    })
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], PianoError> {
        if self.pos + n > self.bytes.len() {
            return Err(PianoError::Wire("truncated message".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    /// Takes exactly `N` bytes as a fixed array — the panic-free bridge
    /// between [`take`](Self::take) and the `from_le_bytes` family.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], PianoError> {
        match <[u8; N]>::try_from(self.take(N)?) {
            Ok(a) => Ok(a),
            Err(_) => Err(PianoError::Wire("truncated message".into())),
        }
    }
    fn u8(&mut self) -> Result<u8, PianoError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, PianoError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, PianoError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, PianoError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn f64(&mut self) -> Result<f64, PianoError> {
        Ok(f64::from_le_bytes(self.array()?))
    }
    /// LEB128 u32: at most five bytes, final byte ≤ 0x0F.
    fn varint32(&mut self) -> Result<u32, PianoError> {
        let mut value: u32 = 0;
        for shift in (0..35).step_by(7) {
            let byte = self.u8()?;
            let low = (byte & 0x7F) as u32;
            if shift == 28 && low > 0x0F {
                return Err(PianoError::Wire("varint overflows u32".into()));
            }
            value |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(PianoError::Wire("varint longer than five bytes".into()))
    }
}

/// Reassembles length-prefixed [`Message`] frames from an arbitrarily
/// segmented byte stream.
///
/// Push bytes as they arrive (any slicing — TCP reads, BLE notifications,
/// byte-at-a-time) with [`push`](Self::push), then drain complete messages
/// with [`next_frame`](Self::next_frame). The reader enforces
/// [`MAX_FRAME_BYTES`] on the length prefix *before* buffering the
/// payload, so a malicious 4-byte header cannot make it allocate
/// unboundedly. A framing error (oversized prefix, malformed payload)
/// poisons the reader — a byte stream that has lost framing cannot be
/// trusted to resynchronize.
#[derive(Debug, Default)]
pub struct FrameReader {
    /// Contiguous stream buffer; `buf[pos..]` is the unconsumed tail
    /// (compacted once the consumed prefix amortizes — the same pattern
    /// as the streaming detector's ring).
    buf: Vec<u8>,
    pos: usize,
    /// The first framing error, kept so a connection supervisor can log
    /// *why* a stream lost framing before dropping it.
    poison: Option<PianoError>,
    /// Total bytes of completed frames (length prefixes included).
    consumed: u64,
    /// When set, audio payloads decode into recycled slabs
    /// ([`Message::decode_pooled`]) instead of fresh heap vectors.
    pool: Option<FramePool>,
}

/// Consumed-prefix slack a [`FrameReader`] tolerates before compacting.
const FRAME_COMPACT_SLACK: usize = 64 * 1024;

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        FrameReader::default()
    }

    /// An empty reader whose audio payloads decode into `pool`'s
    /// recycled slabs — the zero-copy ingest configuration servers use
    /// (one shared pool, one reader per connection).
    pub fn with_pool(pool: FramePool) -> Self {
        FrameReader {
            pool: Some(pool),
            ..FrameReader::default()
        }
    }

    /// Routes subsequent audio decodes through `pool` (see
    /// [`with_pool`](Self::with_pool)).
    pub fn set_pool(&mut self, pool: FramePool) {
        self.pool = Some(pool);
    }

    /// Appends raw stream bytes. Accepts anything byte-slice-like,
    /// including the vendored `bytes::Bytes`.
    pub fn push(&mut self, data: impl AsRef<[u8]>) {
        self.buf.extend_from_slice(data.as_ref());
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether a framing error has poisoned the reader.
    pub fn is_poisoned(&self) -> bool {
        self.poison.is_some()
    }

    /// The framing error that poisoned the reader, if any — the cause a
    /// connection supervisor should log before dropping the stream.
    pub fn poison_cause(&self) -> Option<&PianoError> {
        self.poison.as_ref()
    }

    /// Total bytes consumed as completed frames (4-byte length prefixes
    /// included). The difference across a [`next_frame`](Self::next_frame)
    /// call is that frame's exact wire size — what byte-accounting layers
    /// (codec stats, billing) use instead of re-encoding the message.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Capacity (in bytes) of the internal stream buffer — the reader's
    /// actual heap footprint, which per-connection memory accounting
    /// (e.g. the reactor bench) sums across live connections.
    pub fn buffer_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Decodes the next complete message, or `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] on an oversized length prefix or a
    /// payload [`Message::decode`] rejects; every later call then fails
    /// with the same cause (the reader is poisoned — a byte stream that
    /// has lost framing cannot be trusted to resynchronize, so the owning
    /// connection should be dropped, not retried).
    pub fn next_frame(&mut self) -> Result<Option<Message>, PianoError> {
        if let Some(cause) = &self.poison {
            return Err(cause.clone());
        }
        let Some(header) = self
            .buf
            .get(self.pos..self.pos + 4)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
        else {
            return Ok(None); // length prefix not fully buffered yet
        };
        let len = u32::from_le_bytes(header) as usize;
        if len > MAX_FRAME_BYTES {
            let e = PianoError::Wire(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_BYTES} cap"
            ));
            self.poison = Some(e.clone());
            return Err(e);
        }
        let Some(body) = self.buf.get(self.pos + 4..self.pos + 4 + len) else {
            return Ok(None); // body not fully buffered yet
        };
        match Message::decode_with(body, self.pool.as_ref()) {
            Ok(msg) => {
                self.pos += 4 + len;
                self.consumed += 4 + len as u64;
                if self.pos > FRAME_COMPACT_SLACK {
                    self.buf.drain(..self.pos);
                    self.pos = 0;
                }
                Ok(Some(msg))
            }
            Err(e) => {
                self.poison = Some(e.clone());
                Err(e)
            }
        }
    }
}

/// Per-feed ingestion accounting: sequence tracking, a bounded pending
/// buffer, and watermark-based flow control.
///
/// One `IngestFeed` fronts one remote audio feed on an ingest node. Wire
/// audio goes in via [`accept`](Self::accept) (which verifies session id
/// and sequence contiguity), the scan drains samples out via
/// [`take_pending`](Self::take_pending), and the feed queues flow-control
/// replies for the sender:
///
/// * crossing the **high-water mark** queues one [`Message::Busy`] — the
///   sender should pause (in-flight audio is still accepted; dropping
///   sequenced audio would corrupt the stream);
/// * draining back under the **low-water mark** (half the high-water
///   mark) queues one [`Message::Credit`] with the regained headroom;
/// * the **hard limit** ([`hard_limit`](Self::hard_limit): the
///   high-water mark plus one maximal batch of post-`Busy` in-flight
///   slack) is where cooperation ends — a sender that ignores `Busy`
///   past it gets its audio *rejected* (feed state unchanged), so one
///   misbehaving feed can never buffer without bound; the caller should
///   drop the feed.
///
/// Drain replies with [`poll_reply`](Self::poll_reply).
/// [`peak_buffered`](Self::peak_buffered) records the observed
/// high-water mark for capacity planning.
#[derive(Debug)]
pub struct IngestFeed {
    session: u64,
    high_water: usize,
    low_water: usize,
    next_seq: u32,
    /// Accepted-but-unscanned audio as a list of sample-run segments.
    /// Pooled runs are held *by reference* (a clone of the decoder's
    /// refcounted handle — no copy); the front segment drains through
    /// its `lo` cursor. Steady state touches no heap: segments are
    /// recycled slabs and the deque's capacity is bounded by the
    /// high-water mark.
    pending: VecDeque<PendingSeg>,
    /// Total samples across `pending` (each segment past its cursor).
    buffered: usize,
    peak_buffered: usize,
    awaiting_credit: bool,
    replies: VecDeque<Message>,
    /// When set, i16 batches widen into recycled slabs instead of fresh
    /// vectors (the f64 representations are pooled by the decoder).
    pool: Option<FramePool>,
}

/// One buffered run of samples: `buf[lo..]` is still pending.
#[derive(Debug)]
struct PendingSeg {
    buf: Samples,
    lo: usize,
}

impl IngestFeed {
    /// A feed for wire session `session` that tolerates up to
    /// `high_water` buffered-but-unscanned samples before pushing back.
    ///
    /// # Panics
    ///
    /// Panics if `high_water` is zero.
    pub fn new(session: u64, high_water: usize) -> Self {
        assert!(high_water > 0, "high-water mark must be positive");
        IngestFeed {
            session,
            high_water,
            low_water: high_water / 2,
            next_seq: 0,
            pending: VecDeque::new(),
            buffered: 0,
            peak_buffered: 0,
            awaiting_credit: false,
            replies: VecDeque::new(),
            pool: None,
        }
    }

    /// Widens i16 batches into recycled slabs from `pool` instead of
    /// fresh vectors. Pooled *f64* runs need no pool here — they arrive
    /// already pooled from the decoder and are buffered by reference.
    pub fn set_pool(&mut self, pool: FramePool) {
        self.pool = Some(pool);
    }

    /// The wire session id this feed accepts audio for.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Samples accepted but not yet taken by the scan.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// The largest backlog ever observed, in samples.
    pub fn peak_buffered(&self) -> usize {
        self.peak_buffered
    }

    /// Whether a [`Message::Busy`] is outstanding (no credit granted yet).
    pub fn is_busy(&self) -> bool {
        self.awaiting_credit
    }

    /// The enforced backlog ceiling: high-water mark plus one maximal
    /// batch of in-flight slack. [`accept`](Self::accept) rejects audio
    /// that would exceed it.
    pub fn hard_limit(&self) -> usize {
        self.high_water + MAX_AUDIO_BATCH_SAMPLES
    }

    /// The next expected chunk sequence number.
    pub fn next_seq(&self) -> u32 {
        self.next_seq
    }

    /// Accepts one wire audio message ([`Message::AudioChunk`],
    /// [`Message::AudioBatch`], or the compressed
    /// [`Message::AudioBatchI16`], whose quantized samples are widened
    /// back to `f64`) for this feed, buffering its samples.
    /// Returns the number of samples buffered.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] for non-audio messages, a session-id
    /// mismatch, a sequence gap, or audio that would push the backlog
    /// past [`hard_limit`](Self::hard_limit) (a sender ignoring `Busy`);
    /// the feed state is unchanged on error.
    pub fn accept(&mut self, msg: &Message) -> Result<usize, PianoError> {
        let (session, start_seq, seq_span, samples): (u64, u32, u32, usize) = match msg {
            Message::AudioChunk {
                session,
                seq,
                samples,
            } => (*session, *seq, 1, samples.len()),
            Message::AudioBatch {
                session,
                start_seq,
                chunks,
            } => (
                *session,
                *start_seq,
                chunks.len() as u32,
                chunks.total_samples(),
            ),
            Message::AudioBatchI16 {
                session,
                start_seq,
                chunks,
            } => (
                *session,
                *start_seq,
                chunks.len() as u32,
                chunks.total_samples(),
            ),
            other => {
                return Err(PianoError::Wire(format!(
                    "ingest feed expects audio, got {other:?}"
                )))
            }
        };
        if session != self.session {
            return Err(PianoError::Wire(format!(
                "audio for session {session:#x}, expected {:#x}",
                self.session
            )));
        }
        if start_seq != self.next_seq {
            return Err(PianoError::Wire(format!(
                "audio gap: got seq {start_seq}, expected {}",
                self.next_seq
            )));
        }
        if self.buffered + samples > self.hard_limit() {
            return Err(PianoError::Wire(format!(
                "feed backlog of {} + {samples} samples exceeds the {} hard limit \
                 (sender ignored Busy); drop the feed",
                self.buffered,
                self.hard_limit()
            )));
        }
        self.next_seq += seq_span;
        match msg {
            Message::AudioChunk { samples, .. } => self.push_seg(samples.clone()),
            Message::AudioBatch { chunks, .. } => {
                for chunk in chunks.iter() {
                    self.push_seg(chunk.clone());
                }
            }
            Message::AudioBatchI16 { chunks, .. } => {
                // Quantized audio must widen to f64 exactly once; a pool
                // makes that one copy land in a recycled slab.
                let widened = match &self.pool {
                    Some(pool) => {
                        let mut buf = pool.acquire_f64();
                        let v = buf.as_mut_vec();
                        v.reserve(samples);
                        for chunk in chunks.iter() {
                            v.extend(chunk.iter().map(|&q| q as f64));
                        }
                        Samples::Pooled(buf.freeze())
                    }
                    None => {
                        let mut v = Vec::with_capacity(samples);
                        for chunk in chunks.iter() {
                            v.extend(chunk.iter().map(|&q| q as f64));
                        }
                        Samples::Owned(v)
                    }
                };
                self.push_seg(widened);
            }
            // Non-audio messages were rejected by the first match above.
            _ => {}
        }
        self.peak_buffered = self.peak_buffered.max(self.buffered);
        if self.buffered > self.high_water && !self.awaiting_credit {
            self.awaiting_credit = true;
            self.replies.push_back(Message::Busy {
                session: self.session,
                buffered_samples: self.buffered as u64,
                high_water: self.high_water as u64,
            });
        }
        Ok(samples)
    }

    /// Buffers one sample run by reference (pooled runs: a refcount
    /// bump; owned runs: the clone the caller already paid for).
    fn push_seg(&mut self, buf: Samples) {
        if buf.is_empty() {
            return;
        }
        self.buffered += buf.len();
        self.pending.push_back(PendingSeg { buf, lo: 0 });
    }

    /// Streams up to `max` pending samples in stream order into `sink`,
    /// as one slice per buffered segment — the zero-copy form of
    /// [`take_pending`](Self::take_pending): samples go straight from
    /// the decoder's slabs to the scan without an intermediate vector.
    /// Decision equivalence is unaffected by the slice boundaries (the
    /// streaming scan is chunking-invariant; see
    /// `tests/streaming_equivalence.rs`). Returns the number of samples
    /// drained; flow-control credits are issued exactly as
    /// [`take_pending`](Self::take_pending) does.
    pub fn drain_pending(&mut self, max: usize, mut sink: impl FnMut(&[f64])) -> usize {
        let budget = max.min(self.buffered);
        let mut drained = 0usize;
        while drained < budget {
            let Some(seg) = self.pending.front_mut() else {
                break;
            };
            let avail = seg.buf.len().saturating_sub(seg.lo);
            if avail == 0 {
                self.pending.pop_front();
                continue;
            }
            let take = avail.min(budget - drained);
            if let Some(run) = seg.buf.get(seg.lo..seg.lo + take) {
                sink(run);
            }
            seg.lo += take;
            drained += take;
            if seg.lo >= seg.buf.len() {
                self.pending.pop_front();
            }
        }
        self.buffered -= drained;
        if self.awaiting_credit && self.buffered <= self.low_water {
            self.awaiting_credit = false;
            self.replies.push_back(Message::Credit {
                session: self.session,
                samples: (self.high_water - self.buffered) as u64,
            });
        }
        drained
    }

    /// Takes up to `max` pending samples in stream order for scanning.
    /// Crossing back under the low-water mark after a
    /// [`Message::Busy`] queues the sender's [`Message::Credit`].
    pub fn take_pending(&mut self, max: usize) -> Vec<f64> {
        let mut taken = Vec::with_capacity(max.min(self.buffered));
        self.drain_pending(max, |run| taken.extend_from_slice(run));
        taken
    }

    /// Pops the next queued flow-control reply for the sender.
    pub fn poll_reply(&mut self) -> Option<Message> {
        self.replies.pop_front()
    }

    /// Resynchronizes flow control after the feed's connection was
    /// replaced (reconnect-and-resume): drops replies queued for the dead
    /// connection and clears the outstanding `Busy` — if the backlog is
    /// still over the mark when the resumed stream lands, a fresh `Busy`
    /// is queued for the *new* connection. [`next_seq`](Self::next_seq) is
    /// untouched: it is the resume cursor the server acknowledges, and
    /// replaying from it reconstructs a byte-identical sample stream.
    pub fn resync_flow(&mut self) {
        self.replies.clear();
        self.awaiting_credit = false;
    }
}

/// Convenience: encodes the Step V report from detection output.
pub fn time_diff_report(session: u64, diffs: Option<&LocationDiffs>) -> Message {
    Message::TimeDiffReport {
        session,
        vouch_diff_samples: diffs.map(|d| d.vouch_diff_samples),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spec(indices: Vec<u16>) -> SignalSpec {
        let n = indices.len();
        SignalSpec {
            phases: indices.iter().map(|&i| i as f64 * 0.1).collect(),
            indices,
            amplitude: 32_000.0 / n as f64,
        }
    }

    #[test]
    fn reference_signals_roundtrip() {
        let msg = Message::ReferenceSignals {
            session: 0xDEADBEEF,
            sa: spec(vec![1, 5, 9]),
            sv: spec(vec![0, 2, 4, 6, 8]),
        };
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn time_diff_roundtrips_both_variants() {
        for v in [Some(1234.5), None] {
            let msg = Message::TimeDiffReport {
                session: 7,
                vouch_diff_samples: v,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn audio_chunk_roundtrips() {
        for samples in [
            Vec::new(),
            vec![0.0],
            (0..1024)
                .map(|i| (i as f64 * 0.37).sin() * 12_000.0)
                .collect(),
        ] {
            let msg = Message::AudioChunk {
                session: 0xFEED_F00D,
                seq: 41,
                samples: samples.into(),
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn non_finite_audio_samples_are_rejected_at_decode() {
        // A NaN or ∞ accepted off the wire would flow straight into a
        // session's sliding-DFT scan and poison every later fine window;
        // the decoder is the remote ingest boundary, so it refuses them.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let chunk = Message::AudioChunk {
                session: 9,
                seq: 3,
                samples: vec![0.25, bad, -0.5].into(),
            };
            let err = Message::decode(&chunk.encode()).unwrap_err().to_string();
            assert!(err.contains("non-finite"), "unhelpful message: {err}");
            let batch = Message::AudioBatch {
                session: 9,
                start_seq: 3,
                chunks: vec![vec![1.0; 4], vec![0.0, bad]].into(),
            };
            let err = Message::decode(&batch.encode()).unwrap_err().to_string();
            assert!(err.contains("non-finite"), "unhelpful message: {err}");
        }
        // Finite extremes still pass: only NaN/∞ are malformed.
        let msg = Message::AudioChunk {
            session: 9,
            seq: 3,
            samples: vec![f64::MAX, f64::MIN, 0.0].into(),
        };
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn audio_chunk_truncation_and_trailing_garbage_error() {
        let msg = Message::AudioChunk {
            session: 5,
            seq: 1,
            samples: vec![1.0, -2.0, 3.5].into(),
        };
        let bytes = msg.encode();
        for cut in [1, 9, 13, 16, bytes.len() - 1] {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Message::decode(&padded).is_err());
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn audio_chunk_encode_rejects_oversized_chunks() {
        // The encoder enforces the same cap as the decoder: an oversized
        // chunk must fail at the sender, not stall at every receiver.
        let _ = Message::AudioChunk {
            session: 1,
            seq: 0,
            samples: vec![0.0; MAX_AUDIO_CHUNK_SAMPLES + 1].into(),
        }
        .encode();
    }

    #[test]
    fn audio_chunk_rejects_implausible_sample_count() {
        // Hand-craft a header claiming more samples than the cap; the
        // decoder must reject it before trying to allocate.
        let mut bytes = vec![3u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&((MAX_AUDIO_CHUNK_SAMPLES as u32 + 1).to_le_bytes()));
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
    }

    #[test]
    fn recheck_roundtrips() {
        let msg = Message::Recheck {
            session: 0x0FAC_E0FF,
            round: 3,
            sa: spec(vec![2, 7, 11]),
            sv: spec(vec![1, 3, 5, 9]),
        };
        assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
    }

    #[test]
    fn recheck_audio_roundtrips_including_empty_final_chunk() {
        for (done, samples) in [
            (
                false,
                (0..512)
                    .map(|i| (i as f64 * 0.11).cos() * 9_000.0)
                    .collect(),
            ),
            (true, vec![1.0, -2.0, 3.5]),
            (true, Vec::new()),
        ] {
            let msg = Message::RecheckAudio {
                session: 21,
                round: 2,
                seq: 17,
                done,
                samples,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn recheck_verdict_roundtrips_every_decision_kind() {
        // The verdict shares the decision codec with Message::Decision;
        // every kind byte must survive the round trip.
        let decisions = [
            AuthDecision::Granted { distance_m: 0.51 },
            AuthDecision::Denied {
                reason: DenialReason::TooFar { distance_m: 2.75 },
            },
            AuthDecision::Denied {
                reason: DenialReason::SignalAbsent,
            },
            AuthDecision::Denied {
                reason: DenialReason::NotPaired,
            },
            AuthDecision::Denied {
                reason: DenialReason::BluetoothUnreachable,
            },
            AuthDecision::Denied {
                reason: DenialReason::ProtocolFailure("scan stalled".into()),
            },
        ];
        for decision in decisions {
            let msg = Message::RecheckVerdict {
                session: 8,
                round: 5,
                decision,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn recheck_verdict_and_decision_share_one_decision_encoding() {
        let decision = AuthDecision::Granted { distance_m: 0.777 };
        let d = Message::Decision {
            session: 4,
            decision: decision.clone(),
        }
        .encode();
        let v = Message::RecheckVerdict {
            session: 4,
            round: 1,
            decision,
        }
        .encode();
        // Skip tag + session (+ round for the verdict): the decision
        // payloads must be byte-identical.
        assert_eq!(d[9..], v[13..]);
    }

    #[test]
    fn recheck_audio_enforces_caps_and_done_byte() {
        // Oversized claimed count is rejected before allocation.
        let mut bytes = vec![16u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&((MAX_AUDIO_CHUNK_SAMPLES as u32 + 1).to_le_bytes()));
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
        // A done byte outside {0, 1} is malformed.
        let good = Message::RecheckAudio {
            session: 7,
            round: 1,
            seq: 0,
            done: true,
            samples: vec![1.0],
        }
        .encode();
        let mut bad = good.clone();
        bad[17] = 2;
        assert!(Message::decode(&bad).is_err(), "done byte 2 must fail");
        // Truncations fail cleanly.
        for cut in [1, 9, 13, 17, good.len() - 1] {
            assert!(Message::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn recheck_audio_encode_rejects_oversized_chunks() {
        let _ = Message::RecheckAudio {
            session: 1,
            round: 1,
            seq: 0,
            done: false,
            samples: vec![0.0; MAX_AUDIO_CHUNK_SAMPLES + 1],
        }
        .encode();
    }

    #[test]
    fn audio_batch_roundtrips() {
        for chunks in [
            vec![],
            vec![vec![1.0, -2.0]],
            vec![vec![0.5; 7], vec![], vec![-1.25; 3]],
        ] {
            let msg = Message::AudioBatch {
                session: 0xBEEF,
                start_seq: 17,
                chunks: chunks.into(),
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn audio_batch_truncation_and_trailing_garbage_error() {
        let msg = Message::AudioBatch {
            session: 9,
            start_seq: 3,
            chunks: vec![vec![1.0], vec![2.0, 3.0]].into(),
        };
        let bytes = msg.encode();
        for cut in [1, 8, 12, 14, 18, bytes.len() - 1] {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut padded = bytes.clone();
        padded.push(7);
        assert!(Message::decode(&padded).is_err());
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn audio_batch_encode_rejects_too_many_chunks() {
        let _ = Message::AudioBatch {
            session: 1,
            start_seq: 0,
            chunks: vec![Vec::new(); MAX_AUDIO_BATCH_CHUNKS + 1].into(),
        }
        .encode();
    }

    #[test]
    #[should_panic(expected = "wire cap")]
    fn audio_batch_encode_rejects_oversized_totals() {
        // Each chunk is legal on its own; the batch total is not.
        let chunk = vec![0.0; MAX_AUDIO_CHUNK_SAMPLES];
        let n = MAX_AUDIO_BATCH_SAMPLES / MAX_AUDIO_CHUNK_SAMPLES + 1;
        let _ = Message::AudioBatch {
            session: 1,
            start_seq: 0,
            chunks: vec![chunk; n].into(),
        }
        .encode();
    }

    #[test]
    fn audio_batch_decode_rejects_implausible_headers() {
        // Chunk count over the cap.
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&((MAX_AUDIO_BATCH_CHUNKS as u16 + 1).to_le_bytes()));
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
        // Per-chunk sample count over the cap.
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&((MAX_AUDIO_CHUNK_SAMPLES as u32 + 1).to_le_bytes()));
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
        // Total over the batch cap, every chunk individually legal. The
        // decoder must reject at the running total, before allocating.
        let mut bytes = vec![4u8];
        bytes.extend_from_slice(&7u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let n = MAX_AUDIO_BATCH_SAMPLES / MAX_AUDIO_CHUNK_SAMPLES + 1;
        bytes.extend_from_slice(&(n as u16).to_le_bytes());
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        bytes.extend_from_slice(&vec![0u8; MAX_AUDIO_CHUNK_SAMPLES * 8]);
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        bytes.extend_from_slice(&vec![0u8; MAX_AUDIO_CHUNK_SAMPLES * 8]);
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        bytes.extend_from_slice(&vec![0u8; MAX_AUDIO_CHUNK_SAMPLES * 8]);
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        bytes.extend_from_slice(&vec![0u8; MAX_AUDIO_CHUNK_SAMPLES * 8]);
        bytes.extend_from_slice(&(MAX_AUDIO_CHUNK_SAMPLES as u32).to_le_bytes());
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "unhelpful message: {err}");
    }

    #[test]
    fn audio_batch_i16_roundtrips_exactly() {
        for chunks in [
            vec![],
            vec![vec![0i16]],
            vec![vec![i16::MIN, i16::MAX, 0, -1, 1]],
            // Alternating extremes: worst-case deltas for every predictor.
            vec![(0..512)
                .map(|i| if i % 2 == 0 { i16::MIN } else { i16::MAX })
                .collect::<Vec<i16>>()],
            // A smooth ramp (order 2 wins) next to noise (order 0 wins).
            vec![
                (0..1000).map(|i| (i * 13 % 29_000) as i16).collect(),
                vec![],
                (0..64).map(|i| (i as i16).wrapping_mul(-9177)).collect(),
            ],
        ] {
            let msg = Message::AudioBatchI16 {
                session: 0xC0DEC,
                start_seq: 3,
                chunks: chunks.into(),
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn audio_batch_i16_truncation_and_garbage_error() {
        let msg = Message::AudioBatchI16 {
            session: 9,
            start_seq: 0,
            chunks: vec![vec![100, -200, 30_000], vec![-30_000]].into(),
        };
        let bytes = msg.encode();
        for cut in 0..bytes.len() {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(Message::decode(&padded).is_err());
    }

    #[test]
    fn audio_batch_i16_rejects_malformed_codec_streams() {
        // Unknown predictor order.
        let mut bytes = vec![7u8];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(3); // order 3 does not exist
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("predictor order"), "{err}");
        // A residual that reconstructs outside the i16 range.
        let mut bytes = vec![7u8];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(0); // order 0
        bytes.extend_from_slice(&1u32.to_le_bytes());
        push_varint(&mut bytes, zigzag(40_000)); // > i16::MAX
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("i16 range"), "{err}");
        // Sample count over the cap, rejected before allocation.
        let mut bytes = vec![7u8];
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&((MAX_AUDIO_CHUNK_SAMPLES as u32 + 1).to_le_bytes()));
        let err = Message::decode(&bytes).unwrap_err().to_string();
        assert!(err.contains("cap"), "{err}");
    }

    #[test]
    fn varints_and_zigzag_cover_the_residual_range() {
        for v in [
            0,
            1,
            -1,
            63,
            -64,
            i16::MAX as i32,
            i16::MIN as i32,
            4 * 32_768,
            -4 * 32_768,
            i32::MAX,
            i32::MIN,
        ] {
            assert_eq!(unzigzag(zigzag(v)), v, "zigzag({v})");
            let mut buf = Vec::new();
            push_varint(&mut buf, zigzag(v));
            assert_eq!(buf.len(), varint_len(zigzag(v)), "varint_len({v})");
            let mut r = Reader {
                bytes: &buf,
                pos: 0,
            };
            assert_eq!(r.varint32().unwrap(), zigzag(v));
        }
        // Over-long and overflowing varints are rejected.
        let mut r = Reader {
            bytes: &[0x80, 0x80, 0x80, 0x80, 0x80, 0x01],
            pos: 0,
        };
        assert!(r.varint32().is_err());
        let mut r = Reader {
            bytes: &[0xFF, 0xFF, 0xFF, 0xFF, 0x1F],
            pos: 0,
        };
        assert!(r.varint32().is_err());
    }

    #[test]
    fn i16_codec_compresses_silence_and_tones() {
        // Silence: one byte per sample regardless of predictor.
        let silence = Message::AudioBatchI16 {
            session: 1,
            start_seq: 0,
            chunks: vec![vec![0i16; 4096]].into(),
        };
        assert!(silence.encode().len() < 4096 + 64);
        // A band-limited tone mixture (what recordings actually carry)
        // beats the 8-byte raw encoding by well over 3.5×.
        let tone: Vec<i16> = (0..4096)
            .map(|i| {
                let t = i as f64;
                ((t * 0.9).sin() * 3_000.0 + (t * 1.4).sin() * 2_000.0) as i16
            })
            .collect();
        let n = tone.len();
        let msg = Message::AudioBatchI16 {
            session: 1,
            start_seq: 0,
            chunks: vec![tone].into(),
        };
        let compressed = msg.encode().len();
        let raw = 8 * n;
        assert!(
            (raw as f64) / (compressed as f64) > 3.5,
            "tone ratio {:.2}",
            raw as f64 / compressed as f64
        );
    }

    #[test]
    fn transport_handshake_messages_roundtrip() {
        for msg in [
            Message::Hello {
                codecs: vec![WireCodec::I16Delta.id(), WireCodec::Raw.id(), 77],
            },
            Message::Hello { codecs: vec![] },
            Message::Accept {
                session: 0xAB,
                codec: WireCodec::I16Delta.id(),
            },
            Message::StreamEnd { session: 19 },
            Message::Resume {
                session: 0xFACE,
                next_seq: 4_000_000_001,
            },
            Message::ResumeAck {
                session: 0xFACE,
                ack_seq: 17,
                ended: false,
            },
            Message::ResumeAck {
                session: 1,
                ack_seq: 0,
                ended: true,
            },
            Message::Retry { retry_after_ms: 75 },
        ] {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
            for cut in 0..msg.encode().len() {
                assert!(Message::decode(&msg.encode()[..cut]).is_err());
            }
        }
        // The ended flag is a strict boolean on the wire.
        let mut bytes = Message::ResumeAck {
            session: 2,
            ack_seq: 3,
            ended: true,
        }
        .encode();
        *bytes.last_mut().unwrap() = 2;
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn resync_flow_clears_stale_backpressure_but_keeps_the_cursor() {
        let mut feed = IngestFeed::new(5, 100);
        feed.accept(&Message::AudioChunk {
            session: 5,
            seq: 0,
            samples: vec![1.0; 150].into(),
        })
        .unwrap();
        assert!(feed.is_busy(), "over the mark");
        feed.resync_flow();
        assert!(!feed.is_busy());
        assert!(feed.poll_reply().is_none(), "stale Busy discarded");
        assert_eq!(feed.next_seq(), 1, "resume cursor untouched");
        assert_eq!(feed.buffered(), 150, "accepted audio untouched");
        // Still over the mark: the next accepted audio re-raises Busy on
        // the new connection.
        feed.accept(&Message::AudioChunk {
            session: 5,
            seq: 1,
            samples: vec![1.0; 10].into(),
        })
        .unwrap();
        assert!(matches!(feed.poll_reply(), Some(Message::Busy { .. })));
    }

    #[test]
    fn decision_messages_roundtrip_every_variant() {
        use crate::piano::{AuthDecision, DenialReason};
        for decision in [
            AuthDecision::Granted { distance_m: 0.52 },
            AuthDecision::Denied {
                reason: DenialReason::TooFar { distance_m: 3.7 },
            },
            AuthDecision::Denied {
                reason: DenialReason::SignalAbsent,
            },
            AuthDecision::Denied {
                reason: DenialReason::NotPaired,
            },
            AuthDecision::Denied {
                reason: DenialReason::BluetoothUnreachable,
            },
            AuthDecision::Denied {
                reason: DenialReason::ProtocolFailure("bad frame µ".into()),
            },
        ] {
            let msg = Message::Decision {
                session: 5,
                decision,
            };
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
        }
        // Over-long failure reasons are truncated at a char boundary.
        let long = Message::Decision {
            session: 5,
            decision: AuthDecision::Denied {
                reason: DenialReason::ProtocolFailure("é".repeat(2 * MAX_REASON_BYTES)),
            },
        };
        let decoded = Message::decode(&long.encode()).unwrap();
        let Message::Decision {
            decision:
                AuthDecision::Denied {
                    reason: DenialReason::ProtocolFailure(why),
                },
            ..
        } = decoded
        else {
            panic!("wrong variant");
        };
        assert!(why.len() <= MAX_REASON_BYTES);
        assert!(why.chars().all(|c| c == 'é'));
    }

    #[test]
    fn codec_negotiation_prefers_the_client_order() {
        let both = [WireCodec::Raw, WireCodec::I16Delta];
        assert_eq!(
            WireCodec::negotiate(&[WireCodec::I16Delta.id(), WireCodec::Raw.id()], &both),
            WireCodec::I16Delta
        );
        assert_eq!(
            WireCodec::negotiate(&[WireCodec::Raw.id(), WireCodec::I16Delta.id()], &both),
            WireCodec::Raw
        );
        // Unknown ids are skipped, not fatal.
        assert_eq!(
            WireCodec::negotiate(&[200, WireCodec::I16Delta.id()], &both),
            WireCodec::I16Delta
        );
        // No overlap (or nothing offered) falls back to Raw.
        assert_eq!(
            WireCodec::negotiate(&[WireCodec::I16Delta.id()], &[WireCodec::Raw]),
            WireCodec::Raw
        );
        assert_eq!(WireCodec::negotiate(&[], &both), WireCodec::Raw);
        // Env-style names parse; junk does not.
        assert_eq!(WireCodec::parse("off"), Some(WireCodec::Raw));
        assert_eq!(WireCodec::parse("raw"), Some(WireCodec::Raw));
        assert_eq!(WireCodec::parse(" i16-delta "), Some(WireCodec::I16Delta));
        assert_eq!(WireCodec::parse("zstd"), None);
        assert_eq!(WireCodec::from_id(0), Some(WireCodec::Raw));
        assert_eq!(WireCodec::from_id(1), Some(WireCodec::I16Delta));
        assert_eq!(WireCodec::from_id(9), None);
    }

    #[test]
    fn ingest_feed_accepts_compressed_batches() {
        let mut feed = IngestFeed::new(3, 10_000);
        feed.accept(&Message::AudioBatchI16 {
            session: 3,
            start_seq: 0,
            chunks: vec![vec![5, -6, 7], vec![-32_768]].into(),
        })
        .unwrap();
        assert_eq!(feed.next_seq(), 2);
        assert_eq!(feed.buffered(), 4);
        assert_eq!(feed.take_pending(4), vec![5.0, -6.0, 7.0, -32_768.0]);
    }

    #[test]
    fn frame_reader_reports_poison_cause_and_consumed_bytes() {
        let mut reader = FrameReader::new();
        let frame = Message::StreamEnd { session: 1 }.encode_framed();
        reader.push(&frame);
        assert!(matches!(reader.next_frame(), Ok(Some(_))));
        assert_eq!(reader.consumed(), frame.len() as u64);
        assert!(reader.poison_cause().is_none());
        // A malformed payload records its cause; later calls repeat it.
        reader.push(3u32.to_le_bytes());
        reader.push([99, 0, 0]);
        let first = reader.next_frame().unwrap_err();
        assert!(first.to_string().contains("unknown message tag"), "{first}");
        let cause = reader.poison_cause().expect("cause recorded");
        assert_eq!(cause, &first);
        assert_eq!(reader.next_frame().unwrap_err(), first);
        // Consumed counts only completed frames.
        assert_eq!(reader.consumed(), frame.len() as u64);
    }

    #[test]
    fn flow_control_messages_roundtrip() {
        for msg in [
            Message::Busy {
                session: 3,
                buffered_samples: 99_000,
                high_water: 88_200,
            },
            Message::Credit {
                session: 3,
                samples: 44_100,
            },
        ] {
            assert_eq!(Message::decode(&msg.encode()).unwrap(), msg);
            for cut in 0..msg.encode().len() {
                assert!(Message::decode(&msg.encode()[..cut]).is_err());
            }
        }
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let msgs = vec![
            Message::TimeDiffReport {
                session: 1,
                vouch_diff_samples: Some(12.5),
            },
            Message::AudioChunk {
                session: 1,
                seq: 0,
                samples: vec![1.0, 2.0, 3.0].into(),
            },
            Message::Credit {
                session: 1,
                samples: 100,
            },
        ];
        let stream: Vec<u8> = msgs.iter().flat_map(|m| m.encode_framed()).collect();
        // Byte-at-a-time delivery.
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for &b in &stream {
            reader.push([b]);
            while let Some(m) = reader.next_frame().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert_eq!(reader.buffered(), 0);
        // One shot delivery, via the vendored Bytes buffer.
        let mut reader = FrameReader::new();
        reader.push(bytes::Bytes::from(stream));
        let mut got = Vec::new();
        while let Some(m) = reader.next_frame().unwrap() {
            got.push(m);
        }
        assert_eq!(got, msgs);
    }

    #[test]
    fn frame_reader_rejects_oversized_prefixes_and_poisons() {
        let mut reader = FrameReader::new();
        reader.push(((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
        assert!(reader.next_frame().is_err());
        assert!(reader.is_poisoned());
        // Poisoned: even a valid frame is refused afterwards.
        reader.push(
            Message::Credit {
                session: 1,
                samples: 1,
            }
            .encode_framed(),
        );
        assert!(reader.next_frame().is_err());
    }

    #[test]
    fn frame_reader_poisons_on_malformed_payload() {
        let mut reader = FrameReader::new();
        reader.push(3u32.to_le_bytes());
        reader.push([99, 0, 0]); // unknown tag
        assert!(reader.next_frame().is_err());
        assert!(reader.is_poisoned());
    }

    #[test]
    fn ingest_feed_accounts_sequences_and_watermarks() {
        let mut feed = IngestFeed::new(7, 1000);
        assert_eq!(feed.session(), 7);
        // Chunks and batches advance the sequence together.
        feed.accept(&Message::AudioChunk {
            session: 7,
            seq: 0,
            samples: vec![0.0; 300].into(),
        })
        .unwrap();
        feed.accept(&Message::AudioBatch {
            session: 7,
            start_seq: 1,
            chunks: vec![vec![0.0; 300], vec![0.0; 300]].into(),
        })
        .unwrap();
        assert_eq!(feed.next_seq(), 3);
        assert_eq!(feed.buffered(), 900);
        assert!(!feed.is_busy(), "below the high-water mark");
        assert!(feed.poll_reply().is_none());
        // Crossing the mark queues exactly one Busy.
        feed.accept(&Message::AudioChunk {
            session: 7,
            seq: 3,
            samples: vec![0.0; 200].into(),
        })
        .unwrap();
        assert!(feed.is_busy());
        assert_eq!(
            feed.poll_reply(),
            Some(Message::Busy {
                session: 7,
                buffered_samples: 1100,
                high_water: 1000,
            })
        );
        assert!(feed.poll_reply().is_none(), "one Busy per overrun");
        // In-flight audio is still accepted while busy, without new Busy.
        feed.accept(&Message::AudioChunk {
            session: 7,
            seq: 4,
            samples: vec![0.0; 100].into(),
        })
        .unwrap();
        assert!(feed.poll_reply().is_none());
        assert_eq!(feed.peak_buffered(), 1200);
        // Draining to the low-water mark (half) grants credit once.
        let taken = feed.take_pending(600);
        assert_eq!(taken.len(), 600);
        // 1200 − 600 = 600 remaining > 500: still busy, no credit yet.
        assert!(feed.is_busy());
        assert!(feed.poll_reply().is_none());
        let _ = feed.take_pending(200);
        assert_eq!(
            feed.poll_reply(),
            Some(Message::Credit {
                session: 7,
                samples: 600,
            })
        );
        assert!(!feed.is_busy());
        // Errors leave the feed untouched.
        assert!(feed
            .accept(&Message::AudioChunk {
                session: 8,
                seq: 5,
                samples: vec![].into(),
            })
            .is_err());
        assert!(feed
            .accept(&Message::AudioChunk {
                session: 7,
                seq: 99,
                samples: vec![].into(),
            })
            .is_err());
        assert!(feed
            .accept(&Message::Credit {
                session: 7,
                samples: 0,
            })
            .is_err());
        assert_eq!(feed.next_seq(), 5);
        assert_eq!(feed.buffered(), 400);
    }

    #[test]
    fn ingest_feed_hard_limit_rejects_senders_that_ignore_busy() {
        let mut feed = IngestFeed::new(1, 100);
        assert_eq!(feed.hard_limit(), 100 + MAX_AUDIO_BATCH_SAMPLES);
        // A sender blasting max-size chunks past Busy fills the slack…
        let mut seq = 0u32;
        while (feed.buffered() + MAX_AUDIO_CHUNK_SAMPLES) <= feed.hard_limit() {
            feed.accept(&Message::AudioChunk {
                session: 1,
                seq,
                samples: vec![0.0; MAX_AUDIO_CHUNK_SAMPLES].into(),
            })
            .unwrap();
            seq += 1;
        }
        assert!(feed.is_busy());
        let buffered = feed.buffered();
        // …and the first chunk past the hard limit is rejected whole,
        // with the feed state untouched (memory stays bounded).
        let err = feed
            .accept(&Message::AudioChunk {
                session: 1,
                seq,
                samples: vec![0.0; MAX_AUDIO_CHUNK_SAMPLES].into(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("hard limit"), "{err}");
        assert_eq!(feed.buffered(), buffered);
        assert_eq!(feed.next_seq(), seq);
        // Draining restores service for a re-synchronized feed.
        let _ = feed.take_pending(buffered);
        assert!(feed
            .accept(&Message::AudioChunk {
                session: 1,
                seq,
                samples: vec![0.0; 8].into(),
            })
            .is_ok());
    }

    #[test]
    fn frame_reader_compacts_its_consumed_prefix() {
        let mut reader = FrameReader::new();
        let frame = Message::AudioChunk {
            session: 1,
            seq: 0,
            samples: vec![0.5; 8_192].into(),
        }
        .encode_framed();
        // Several frames past the compaction slack: the consumed prefix
        // must be reclaimed rather than grow with the stream.
        for _ in 0..4 {
            reader.push(&frame);
            assert!(matches!(reader.next_frame(), Ok(Some(_))));
        }
        assert_eq!(reader.buffered(), 0);
        assert!(
            reader.buf.len() <= FRAME_COMPACT_SLACK + frame.len(),
            "stale prefix kept: {} bytes",
            reader.buf.len()
        );
    }

    #[test]
    fn truncated_messages_error() {
        let msg = Message::ReferenceSignals {
            session: 1,
            sa: spec(vec![1, 2]),
            sv: spec(vec![3]),
        };
        let bytes = msg.encode();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert!(
                Message::decode(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut bytes = Message::TimeDiffReport {
            session: 1,
            vouch_diff_samples: None,
        }
        .encode();
        bytes.push(0xFF);
        assert!(Message::decode(&bytes).is_err());
    }

    #[test]
    fn unknown_tag_errors() {
        assert!(Message::decode(&[99, 0, 0]).is_err());
    }

    #[test]
    fn spec_roundtrips_through_reference_signal() {
        let config = ActionConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let original = ReferenceSignal::random(&config, &mut rng);
        let spec = SignalSpec::of(&original);
        let rebuilt = spec.reconstruct(&config).unwrap();
        assert_eq!(rebuilt, original);
        // Crucially the waveforms are identical: V plays exactly S_V.
        assert_eq!(rebuilt.waveform(), original.waveform());
    }

    #[test]
    fn reconstruct_validates() {
        let config = ActionConfig::default();
        // Empty.
        assert!(spec_err(
            SignalSpec {
                indices: vec![],
                phases: vec![],
                amplitude: 1.0
            },
            &config
        ));
        // Length mismatch.
        assert!(spec_err(
            SignalSpec {
                indices: vec![1, 2],
                phases: vec![0.0],
                amplitude: 16_000.0
            },
            &config
        ));
        // Unsorted.
        assert!(spec_err(
            SignalSpec {
                indices: vec![2, 1],
                phases: vec![0.0, 0.0],
                amplitude: 16_000.0
            },
            &config
        ));
        // Out of grid.
        assert!(spec_err(
            SignalSpec {
                indices: vec![40],
                phases: vec![0.0],
                amplitude: 32_000.0
            },
            &config
        ));
        // Wrong amplitude (power rule).
        assert!(spec_err(
            SignalSpec {
                indices: vec![1, 2],
                phases: vec![0.0, 0.0],
                amplitude: 99.0
            },
            &config
        ));
    }

    fn spec_err(s: SignalSpec, c: &ActionConfig) -> bool {
        s.reconstruct(c).is_err()
    }

    #[test]
    fn wire_size_is_compact() {
        // The Step II payload must be O(100) bytes, not PCM-sized: this is
        // what the Bluetooth timing budget in E8 assumes.
        let msg = Message::ReferenceSignals {
            session: 1,
            sa: spec((0..15).collect()),
            sv: spec((15..29).collect()),
        };
        let len = msg.encode().len();
        assert!(len < 600, "wire size {len} bytes");
    }
}
