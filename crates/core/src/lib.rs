//! # piano-core
//!
//! The primary contribution of *PIANO: Proximity-based User Authentication
//! on Voice-Powered Internet-of-Things Devices* (Gong et al., ICDCS 2017),
//! implemented in full on top of the simulated substrates
//! [`piano_acoustics`] and [`piano_bluetooth`]:
//!
//! * [`freqgrid`] — the candidate frequency grid (Sec. VI-A: the 25–35 kHz
//!   band split into 30 bins).
//! * [`signal`] — Step I: frequency-domain randomized reference signals,
//!   with both the paper-literal two-stage sampler and a uniform-subset
//!   sampler (see `DESIGN.md` §5 for why they differ against guessing).
//! * [`detect`] — Step IV: the frequency-based signal detection algorithm
//!   (paper Algorithms 1 and 2), including the adapted coarse→fine step
//!   sizes and single-scan detection of both reference signals.
//! * [`ranging`] — Step VI: the BeepBeep-style two-way combination (Eq. 3)
//!   that cancels clock offsets and processing delays.
//! * [`device`] — a simulated voice-powered device: speaker, microphone,
//!   skewed clock, audio-stack latency.
//! * [`action`] — the ACTION protocol end to end (Steps I–VI) over the
//!   acoustic field and the Bluetooth secure channel.
//! * [`piano`] — the PIANO authenticator: registration, the Bluetooth
//!   presence gate, threshold comparison, and the final decision.
//! * [`stream`] — the streaming session API: the sans-IO
//!   [`stream::AuthSession`] state machine, the incremental
//!   [`stream::StreamingDetector`] (detect *while* recording), and the
//!   multi-tenant [`stream::AuthService`] multiplexer.
//! * [`metrics`] — the paper's Gaussian FRR/FAR model (Sec. VI-C).
//!
//! # Performance architecture
//!
//! Detection (Algorithm 1) dominates the authentication latency budget;
//! the scan stack is built to serve many users at hardware speed:
//!
//! * [`Detector`] is **immutable and `Send + Sync`** — one detector per
//!   configuration serves any number of concurrent sessions; scratch
//!   buffers live per call, not per detector.
//! * Dense window spectra run on the **real-input FFT**
//!   ([`piano_dsp::fft::RealFftPlan`], ≈2× fewer butterflies), behind the
//!   process-wide plan cache.
//! * The fine scan uses a **sparse sliding DFT** over only the `2θ+1`
//!   bins around each candidate ([`piano_dsp::sparse::SlidingDft`]):
//!   shifting by `fine_step` samples costs `O(bins × step)` instead of an
//!   `O(N log N)` transform per window.
//! * [`detect::Detector::detect_many_parallel`] shards the coarse scan
//!   across `std::thread::scope` workers with a deterministic merge —
//!   results are bit-identical to the serial scan for every worker count.
//! * [`stream::ScanDriver`] brings the same sharding to *streaming* scans:
//!   each audio tick's coarse windows fan out across a configurable
//!   worker pool (sized by `PIANO_SCAN_WORKERS` fleet-wide), with the
//!   identical bit-for-bit guarantee; [`stream::AuthService`] drives all
//!   of its scan groups through one.
//! * [`wire`] scales ingestion: framed [`wire::Message::AudioBatch`]
//!   decoding ([`wire::FrameReader`]) plus watermark backpressure
//!   ([`wire::IngestFeed`]) let one service meter thousands of remote
//!   feeds, and the **i16 delta PCM codec**
//!   ([`wire::Message::AudioBatchI16`], negotiated per connection via
//!   [`wire::WireCodec`]) cuts wire bytes ≈4–5× with exact quantized
//!   round-trip; [`continuous::ContinuousScheduler`] re-verifies fleets
//!   of continuous sessions earliest-deadline-first, and [`continuum`]
//!   scales that to millions of standing sessions: a hierarchical timer
//!   wheel with O(1) arm/cancel/advance, batched group re-checks through
//!   one shared coarse pass, and deterministic risk-adaptive periods.
//!   The `piano-net` crate binds this wire layer to real byte streams
//!   (in-memory duplex + loopback TCP server loop) and re-challenges
//!   standing feeds over their live connections.
//! * [`piano::PianoAuthenticator`] builds its detector once and reuses it
//!   for every attempt (and every continuous-session recheck), amortizing
//!   plan construction; [`action::run_action_with`] exposes the same reuse
//!   to custom protocol drivers.
//!
//! # Quickstart
//!
//! ```
//! use piano_core::piano::{AuthDecision, PianoConfig};
//! use piano_core::stream::AuthService;
//! use piano_core::device::Device;
//! use piano_acoustics::{AcousticField, Environment, Position};
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! let mut service = AuthService::new(PianoConfig::default());
//!
//! // Registration: pair the smartwatch (vouching) with the phone
//! // (authenticating) once.
//! let phone = Device::phone(1, Position::ORIGIN, 101);
//! let watch = Device::phone(2, Position::new(0.6, 0.0, 0.0), 202);
//! service.register(&phone, &watch, &mut rng);
//!
//! // Authentication: the user (wearing the watch) picks up the phone.
//! let mut field = AcousticField::new(Environment::office(), 42);
//! let decision = service.authenticate_pair(&mut field, &phone, &watch, 0.0, &mut rng);
//! assert!(matches!(decision, AuthDecision::Granted { .. }));
//! ```

#![forbid(unsafe_code)]

pub mod action;
pub mod config;
pub mod continuous;
pub mod continuum;
pub mod detect;
pub mod device;
pub mod error;
pub mod freqgrid;
pub mod metrics;
pub mod piano;
pub mod pool;
pub mod ranging;
pub mod signal;
pub mod stream;
pub mod sync;
pub mod wire;

pub use action::{run_action, run_session_pair, ActionOutcome, DistanceEstimate};
pub use config::ActionConfig;
pub use continuum::{Continuum, RiskPolicy, StandingKey, StandingState, TickWheel};
pub use detect::{Detection, Detector};
pub use device::Device;
pub use error::PianoError;
pub use freqgrid::FrequencyGrid;
pub use piano::{AuthDecision, PianoAuthenticator, PianoConfig};
pub use signal::{ReferenceSignal, SignalSampler};
pub use stream::{
    AuthService, AuthSession, ScanDriver, SessionEvent, SessionId, StreamingDetector,
};
pub use sync::{OrderedGuard, OrderedMutex};
