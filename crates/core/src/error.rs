//! Error types for the PIANO core.

use std::error::Error;
use std::fmt;

use piano_bluetooth::BluetoothError;

/// Errors surfaced by the ACTION protocol and the PIANO authenticator.
///
/// Note that *authentication denials are not errors*: a denied access is a
/// successful protocol outcome (see
/// [`AuthDecision`](crate::piano::AuthDecision)). Errors are conditions
/// that prevent the protocol from producing an outcome at all.
#[derive(Clone, Debug, PartialEq)]
pub enum PianoError {
    /// The Bluetooth layer failed (out of range, not paired, bad frame).
    Bluetooth(BluetoothError),
    /// A configuration parameter is invalid; the string names it.
    InvalidConfig(String),
    /// A wire message could not be decoded; the string says why.
    Wire(String),
    /// A byte-stream transport failed underneath the protocol (peer
    /// closed, connection reset, write refused). Distinct from
    /// [`PianoError::Wire`]: the protocol state was fine, the pipe died —
    /// which is exactly the class of failure a reconnect-and-resume layer
    /// may retry.
    Transport(String),
    /// A deadline elapsed before the awaited event (bytes, a decision, a
    /// quorum of reports) arrived; the string names what timed out.
    Timeout(String),
    /// The server shed this connection at admission because its active
    /// backlog exceeded the configured limit; retry after roughly
    /// `retry_after_ms` milliseconds.
    Overloaded {
        /// Server-suggested wait before re-dialing, in milliseconds.
        retry_after_ms: u64,
    },
    /// A re-verification scheduler operation failed: a stale or removed
    /// key, a callback that did not advance its deadline, or a recheck
    /// batch that could not conclude. Distinct from
    /// [`PianoError::InvalidConfig`]: the configuration was fine, the
    /// *schedule* state and the request disagreed.
    Schedule(String),
}

impl fmt::Display for PianoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PianoError::Bluetooth(e) => write!(f, "bluetooth layer failure: {e}"),
            PianoError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            PianoError::Wire(what) => write!(f, "malformed wire message: {what}"),
            PianoError::Transport(what) => write!(f, "transport failure: {what}"),
            PianoError::Timeout(what) => write!(f, "deadline elapsed: {what}"),
            PianoError::Overloaded { retry_after_ms } => {
                write!(f, "server overloaded; retry after {retry_after_ms} ms")
            }
            PianoError::Schedule(what) => write!(f, "re-verification schedule error: {what}"),
        }
    }
}

impl Error for PianoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PianoError::Bluetooth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BluetoothError> for PianoError {
    fn from(e: BluetoothError) -> Self {
        PianoError::Bluetooth(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_bluetooth::DeviceId;

    #[test]
    fn conversion_from_bluetooth_error() {
        let be = BluetoothError::NotPaired(DeviceId::new(1), DeviceId::new(2));
        let pe: PianoError = be.clone().into();
        assert_eq!(pe, PianoError::Bluetooth(be));
        assert!(pe.source().is_some());
    }

    #[test]
    fn displays_are_informative() {
        assert!(PianoError::InvalidConfig("theta".into())
            .to_string()
            .contains("theta"));
        assert!(PianoError::Wire("truncated".into())
            .to_string()
            .contains("truncated"));
        assert!(PianoError::Transport("reset".into())
            .to_string()
            .contains("reset"));
        assert!(PianoError::Timeout("decision".into())
            .to_string()
            .contains("decision"));
        assert!(PianoError::Overloaded { retry_after_ms: 40 }
            .to_string()
            .contains("40"));
        assert!(PianoError::Schedule("stale key".into())
            .to_string()
            .contains("stale key"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<PianoError>();
    }
}
