//! Protocol configuration.
//!
//! Defaults mirror Sec. VI-A of the paper exactly; every field documents
//! its paper counterpart. `ActionConfig::validate` enforces the internal
//! consistency constraints the paper's security argument relies on
//! (notably `α·R_f > β`, Sec. V).

use piano_dsp::window::WindowKind;
use serde::{Deserialize, Serialize};

use crate::error::PianoError;
use crate::freqgrid::FrequencyGrid;
use crate::signal::SignalSampler;

/// Configuration of the ACTION distance-estimation protocol.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ActionConfig {
    /// Nominal sampling frequency (Hz). Paper: 44.1 kHz.
    pub sample_rate: f64,
    /// Candidate frequency grid. Paper: [25 kHz, 35 kHz] × 30 bins.
    pub grid: FrequencyGrid,
    /// Reference signal length in samples. Paper: 4096 (93 ms).
    pub signal_len: usize,
    /// Frequency-smoothing half-width θ in FFT bins. Paper: 5.
    pub theta: usize,
    /// Per-frequency attenuation floor α: a window passes only if
    /// `P_f > α·R_f` for every chosen frequency. Paper: 1 %.
    pub alpha: f64,
    /// Out-of-signal ceiling as a fraction of `R_f`: the paper sets
    /// `β = 0.5 %·R_f`.
    pub beta_fraction: f64,
    /// Presence threshold ε: the maximum normalized power must reach
    /// `ε·R_S` or the signal is declared absent. Paper: ε = α = 1 %
    /// (see DESIGN.md §4 for the `P_max < R_S` literalism this resolves).
    pub epsilon: f64,
    /// Coarse scan step in samples. Paper: 1000.
    pub coarse_step: usize,
    /// Fine scan step in samples. Paper: 10.
    pub fine_step: usize,
    /// Fine scan radius around the coarse maximum, in samples.
    pub fine_radius: usize,
    /// How reference-signal frequency subsets are sampled (DESIGN.md §5).
    pub sampler: SignalSampler,
    /// Peak construction amplitude. Paper: 32000 (16-bit headroom).
    pub max_amplitude: f64,
    /// Length of each device's recording window in seconds.
    pub recording_duration_s: f64,
    /// Scheduled playback offset of the authenticating device's signal,
    /// relative to its record command (seconds).
    pub play_offset_auth_s: f64,
    /// Scheduled playback offset of the vouching device's signal (seconds).
    /// Must leave a gap after the authenticating signal so the two never
    /// overlap in either recording.
    pub play_offset_vouch_s: f64,
    /// Speed of sound the devices *assume* when evaluating Eq. 3 (m/s).
    /// The true value in the simulated environment depends on temperature,
    /// so the assumption contributes a small, realistic bias. Paper:
    /// "speed of sound is around 340 m/s".
    pub assumed_speed_of_sound: f64,
    /// Whether Algorithm 2 enforces the β sanity check on unchosen
    /// candidates. Always `true` in PIANO; the ablation harness disables it
    /// to reproduce the paper's claim that without it, an all-frequency
    /// spoofing signal "will have a high normalized power … making the
    /// corresponding replay attack succeed with a high probability".
    pub enforce_beta_check: bool,
    /// Analysis window applied inside Algorithm 2's `PowerSpectrum`.
    ///
    /// The paper does not specify one; the default is rectangular (a raw
    /// FFT of the slice), and the window ablation (A6) shows that is not an
    /// oversight but a requirement: a tapered window (Hann) flattens the
    /// top of the normalized-power-vs-offset curve, destroying the time
    /// localization Algorithm 1's argmax depends on (errors grow by an
    /// order of magnitude). The rectangular window's sidelobe leakage into
    /// unchosen candidate clusters (≈0.6 % of *received* power) stays below
    /// β = 0.5 %·R_f as long as received signals remain in the far field —
    /// which the paper's geometry (≥0.5 m, attenuated self-coupling)
    /// guarantees.
    pub analysis_window: WindowKind,
}

impl Default for ActionConfig {
    fn default() -> Self {
        ActionConfig {
            sample_rate: 44_100.0,
            grid: FrequencyGrid::paper_default(),
            signal_len: 4096,
            theta: 5,
            alpha: 0.01,
            beta_fraction: 0.005,
            epsilon: 0.01,
            coarse_step: 1000,
            fine_step: 10,
            fine_radius: 1500,
            sampler: SignalSampler::UniformSubset,
            max_amplitude: 32_000.0,
            recording_duration_s: 2.0,
            play_offset_auth_s: 0.35,
            play_offset_vouch_s: 1.15,
            assumed_speed_of_sound: 343.0,
            enforce_beta_check: true,
            analysis_window: WindowKind::Rectangular,
        }
    }
}

impl ActionConfig {
    /// Per-tone reference power `R_f = (max_amplitude/n)²` for `n` tones.
    pub fn reference_power(&self, n_tones: usize) -> f64 {
        assert!(n_tones > 0, "a reference signal has at least one tone");
        (self.max_amplitude / n_tones as f64).powi(2)
    }

    /// Recording length in samples.
    pub fn recording_len(&self) -> usize {
        (self.recording_duration_s * self.sample_rate).round() as usize
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::InvalidConfig`] describing the first violated
    /// constraint:
    ///
    /// * FFT sizes must be powers of two;
    /// * scan steps must be nonzero and coarse ≥ fine;
    /// * `α > β` fraction-wise — the Sec. V defense against all-frequency
    ///   spoofing requires `α·R_f > β`;
    /// * thresholds must be in (0, 1);
    /// * playback slots must fit in the recording without overlapping.
    pub fn validate(&self) -> Result<(), PianoError> {
        let err = |m: String| Err(PianoError::InvalidConfig(m));
        if !self.signal_len.is_power_of_two() || self.signal_len < 64 {
            return err(format!(
                "signal_len {} must be a power of two ≥ 64",
                self.signal_len
            ));
        }
        if self.sample_rate <= 0.0 || !self.sample_rate.is_finite() {
            return err("sample_rate must be positive".into());
        }
        if self.coarse_step == 0 || self.fine_step == 0 {
            return err("scan steps must be nonzero".into());
        }
        if self.fine_step > self.coarse_step {
            return err("fine_step must not exceed coarse_step".into());
        }
        if self.fine_radius < self.coarse_step {
            return err("fine_radius must cover at least one coarse step".into());
        }
        for (name, v) in [
            ("alpha", self.alpha),
            ("beta_fraction", self.beta_fraction),
            ("epsilon", self.epsilon),
        ] {
            if !(0.0..1.0).contains(&v) || v <= 0.0 {
                return err(format!("{name} = {v} must lie in (0, 1)"));
            }
        }
        if self.beta_fraction >= self.alpha {
            return err(format!(
                "beta_fraction {} must be < alpha {} (required for the all-frequency \
                 spoofing defense, paper Sec. V)",
                self.beta_fraction, self.alpha
            ));
        }
        if self.max_amplitude <= 0.0 || self.max_amplitude > 32_767.0 {
            return err("max_amplitude must be in (0, 32767]".into());
        }
        if self.theta == 0 {
            return err("theta must be at least 1 bin".into());
        }
        if !(100.0..1000.0).contains(&self.assumed_speed_of_sound) {
            return err(format!(
                "assumed_speed_of_sound {} is not a plausible speed of sound",
                self.assumed_speed_of_sound
            ));
        }
        // Candidate clusters must not overlap (θ bins each side).
        let min_gap_hz = self.grid.bin_width_hz();
        let fft_bin_hz = self.sample_rate / self.signal_len as f64;
        if min_gap_hz <= 2.0 * self.theta as f64 * fft_bin_hz {
            return err(format!(
                "candidate spacing {min_gap_hz:.1} Hz too small for θ = {} clusters",
                self.theta
            ));
        }
        let signal_s = self.signal_len as f64 / self.sample_rate;
        if self.play_offset_vouch_s < self.play_offset_auth_s + signal_s {
            return err("vouching playback would overlap the authenticating signal".into());
        }
        // Leave headroom for latency jitter, propagation, and a full window.
        if self.recording_duration_s < self.play_offset_vouch_s + signal_s + 0.3 {
            return err(format!(
                "recording_duration_s {} too short for the playback schedule",
                self.recording_duration_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_faithful() {
        let c = ActionConfig::default();
        c.validate().unwrap();
        assert_eq!(c.signal_len, 4096);
        assert_eq!(c.theta, 5);
        assert!((c.alpha - 0.01).abs() < 1e-12);
        assert!((c.beta_fraction - 0.005).abs() < 1e-12);
        assert!((c.epsilon - 0.01).abs() < 1e-12);
        assert_eq!(c.coarse_step, 1000);
        assert_eq!(c.fine_step, 10);
        assert_eq!(c.grid.len(), 30);
        // 4096 samples at 44.1 kHz last 92.9 ms, the paper's "93 ms".
        assert!((c.signal_len as f64 / c.sample_rate - 0.0929).abs() < 1e-3);
    }

    #[test]
    fn reference_power_matches_paper_formula() {
        let c = ActionConfig::default();
        assert!((c.reference_power(1) - 32_000.0f64.powi(2)).abs() < 1e-6);
        assert!((c.reference_power(16) - 2_000.0f64.powi(2)).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one tone")]
    fn reference_power_rejects_zero_tones() {
        let _ = ActionConfig::default().reference_power(0);
    }

    #[test]
    fn recording_len_is_rate_times_duration() {
        let c = ActionConfig::default();
        assert_eq!(c.recording_len(), 88_200);
    }

    #[test]
    fn validation_catches_each_violation() {
        let base = ActionConfig::default;

        let mut c = base();
        c.signal_len = 4000;
        assert!(c.validate().is_err());

        let mut c = base();
        c.fine_step = 2000;
        assert!(c.validate().is_err());

        let mut c = base();
        c.fine_radius = 10;
        assert!(c.validate().is_err());

        let mut c = base();
        c.beta_fraction = 0.02; // β ≥ α breaks the spoofing defense
        assert!(c.validate().is_err());

        let mut c = base();
        c.alpha = 0.0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.max_amplitude = 100_000.0;
        assert!(c.validate().is_err());

        let mut c = base();
        c.theta = 40; // clusters would swallow neighbouring candidates
        assert!(c.validate().is_err());

        let mut c = base();
        c.play_offset_vouch_s = c.play_offset_auth_s + 0.01; // overlap
        assert!(c.validate().is_err());

        let mut c = base();
        c.recording_duration_s = 1.0; // too short for the schedule
        assert!(c.validate().is_err());
    }

    #[test]
    fn error_messages_name_the_field() {
        let c = ActionConfig {
            beta_fraction: 0.5,
            ..ActionConfig::default()
        };
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("beta_fraction"), "unhelpful message: {msg}");
    }
}
