//! Step I: constructing randomized reference signals.
//!
//! Paper, Sec. IV-B: "we first sample an integer n (0 < n < N) and then
//! select n frequencies from F_R uniformly at random. For each sampled
//! frequency, we synthesize a sine wave with the frequency, and then we
//! construct a reference signal by adding these sine waves." Per-tone power
//! is `R_f = (32000/n)²` (Sec. VI-A), i.e. tone amplitude `32000/n` — which
//! also guarantees the mixed signal never exceeds 32000 and cannot clip the
//! 16-bit DAC.
//!
//! ## Two samplers
//!
//! The paper's *two-stage* sampler (uniform `n`, then uniform `n`-subset)
//! does **not** make all subsets equally likely: singletons and
//! near-complete sets are hugely over-weighted, so a mimicking attacker
//! guesses a signal with probability `Σ_n 1/((N−1)²·C(N,n))` ≈ 7.7·10⁻⁵
//! for N = 30 — far above the paper's claimed `1/(2^N−2)` ≈ 9.3·10⁻¹⁰,
//! which holds only if subsets are uniform. Both samplers are provided;
//! [`SignalSampler::UniformSubset`] is the default (and what the security
//! claim needs); the experiment suite quantifies the gap (experiment E10).

use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use piano_dsp::tone::{multi_tone, ToneSpec};

use crate::config::ActionConfig;
use crate::freqgrid::FrequencyGrid;

/// Strategy for sampling the random frequency subset of a reference signal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SignalSampler {
    /// The paper's literal construction: `n ~ Uniform{1..N−1}`, then an
    /// `n`-subset uniformly at random. Biased toward extreme subset sizes
    /// in guessing probability (see module docs).
    TwoStage,
    /// Uniform over all subsets with `1 ≤ |F| ≤ N−1`, matching the paper's
    /// `1/(2^N−2)` guessing analysis. Default.
    #[default]
    UniformSubset,
}

impl SignalSampler {
    /// Samples a sorted frequency-index subset from a grid of `n` candidates.
    ///
    /// # Panics
    ///
    /// Panics if the grid has fewer than 2 candidates (no valid subset with
    /// `0 < |F| < N` exists).
    pub fn sample(&self, grid_len: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
        assert!(grid_len >= 2, "grid must have at least 2 candidates");
        let mut indices: Vec<usize> = match self {
            SignalSampler::TwoStage => {
                let n = rng.gen_range(1..grid_len);
                let mut all: Vec<usize> = (0..grid_len).collect();
                all.shuffle(rng);
                all.truncate(n);
                all
            }
            SignalSampler::UniformSubset => loop {
                let picked: Vec<usize> = (0..grid_len).filter(|_| rng.gen_bool(0.5)).collect();
                if !picked.is_empty() && picked.len() < grid_len {
                    break picked;
                }
            },
        };
        indices.sort_unstable();
        indices
    }
}

/// A fully specified reference signal (the paper's `S`).
///
/// Carries the construction parameters rather than PCM: the waveform is
/// synthesized on demand with [`ReferenceSignal::waveform`], and the
/// parameters are what travels over the Bluetooth secure channel in Step II
/// (they are equivalent information and three orders of magnitude smaller).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReferenceSignal {
    grid: FrequencyGrid,
    /// Sorted candidate indices — the paper's frequency set `F`.
    indices: Vec<usize>,
    /// Per-tone amplitude (`max_amplitude / n`).
    amplitude: f64,
    /// Initial phase per tone, aligned with `indices`.
    phases: Vec<f64>,
    /// Signal length in samples.
    length: usize,
    /// Nominal sample rate in Hz.
    sample_rate: f64,
}

impl ReferenceSignal {
    /// Constructs a fresh randomized reference signal per the protocol
    /// configuration (Step I).
    pub fn random(config: &ActionConfig, rng: &mut ChaCha8Rng) -> Self {
        let indices = config.sampler.sample(config.grid.len(), rng);
        Self::from_indices(config, indices, rng)
    }

    /// Constructs a signal from a caller-chosen frequency set. Used by the
    /// guessing-attack model (which synthesizes its guesses with the same
    /// machinery) and by deterministic tests.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty, unsorted, contains duplicates, or
    /// references candidates outside the grid.
    pub fn from_indices(config: &ActionConfig, indices: Vec<usize>, rng: &mut ChaCha8Rng) -> Self {
        assert!(
            !indices.is_empty(),
            "a reference signal needs at least one tone"
        );
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be sorted and unique"
        );
        assert!(
            *indices.last().expect("nonempty") < config.grid.len(),
            "index out of grid range"
        );
        let amplitude = config.max_amplitude / indices.len() as f64;
        let phases = indices
            .iter()
            .map(|_| rng.gen_range(0.0..std::f64::consts::TAU))
            .collect();
        ReferenceSignal {
            grid: config.grid,
            indices,
            amplitude,
            phases,
            length: config.signal_len,
            sample_rate: config.sample_rate,
        }
    }

    /// Reassembles a signal from raw parts — the receiving side of the wire
    /// codec ([`crate::wire::SignalSpec::reconstruct`]).
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency (empty set,
    /// unsorted indices, index out of grid, phase-count mismatch,
    /// non-positive amplitude or length).
    pub fn from_parts(
        grid: FrequencyGrid,
        indices: Vec<usize>,
        amplitude: f64,
        phases: Vec<f64>,
        length: usize,
        sample_rate: f64,
    ) -> Result<Self, String> {
        if indices.is_empty() {
            return Err("frequency set is empty".into());
        }
        if !indices.windows(2).all(|w| w[0] < w[1]) {
            return Err("indices are not sorted/unique".into());
        }
        if *indices.last().expect("nonempty") >= grid.len() {
            return Err("index out of grid range".into());
        }
        if phases.len() != indices.len() {
            return Err("phase count does not match tone count".into());
        }
        if amplitude <= 0.0 || !amplitude.is_finite() {
            return Err("amplitude must be positive".into());
        }
        if length == 0 || sample_rate <= 0.0 {
            return Err("length and sample rate must be positive".into());
        }
        Ok(ReferenceSignal {
            grid,
            indices,
            amplitude,
            phases,
            length,
            sample_rate,
        })
    }

    /// The frequency set `F` as sorted candidate indices.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Number of tones `n`.
    pub fn n_tones(&self) -> usize {
        self.indices.len()
    }

    /// Per-tone amplitude.
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Per-tone phases.
    pub fn phases(&self) -> &[f64] {
        &self.phases
    }

    /// Signal length in samples.
    pub fn len(&self) -> usize {
        self.length
    }

    /// Whether the signal has zero length (never true for valid configs).
    pub fn is_empty(&self) -> bool {
        self.length == 0
    }

    /// Nominal sample rate.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The grid this signal draws from.
    pub fn grid(&self) -> &FrequencyGrid {
        &self.grid
    }

    /// Per-tone reference power `R_f` (amplitude squared).
    pub fn tone_power(&self) -> f64 {
        self.amplitude * self.amplitude
    }

    /// Total reference power `R_S = Σ_f R_f = n·R_f`.
    pub fn total_power(&self) -> f64 {
        self.n_tones() as f64 * self.tone_power()
    }

    /// Synthesizes the PCM waveform (what Step III plays).
    pub fn waveform(&self) -> Vec<f64> {
        let tones: Vec<ToneSpec> = self
            .indices
            .iter()
            .zip(&self.phases)
            .map(|(&i, &ph)| {
                ToneSpec::new(self.grid.candidate_hz(i), self.amplitude).with_phase(ph)
            })
            .collect();
        multi_tone(&tones, self.sample_rate, self.length)
    }

    /// Whether another signal uses exactly the same frequency set — the
    /// success condition for a guessing-based replay attack.
    pub fn same_frequency_set(&self, other: &ReferenceSignal) -> bool {
        self.indices == other.indices
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piano_dsp::spectrum::{band_power, power_spectrum};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use std::collections::HashMap;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn two_stage_respects_paper_bounds() {
        let mut r = rng(1);
        for _ in 0..500 {
            let s = SignalSampler::TwoStage.sample(30, &mut r);
            assert!(
                !s.is_empty() && s.len() < 30,
                "0 < n < N violated: {}",
                s.len()
            );
            assert!(s.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn uniform_subset_respects_bounds() {
        let mut r = rng(2);
        for _ in 0..500 {
            let s = SignalSampler::UniformSubset.sample(30, &mut r);
            assert!(!s.is_empty() && s.len() < 30);
        }
    }

    #[test]
    fn two_stage_sizes_are_roughly_uniform() {
        let mut r = rng(3);
        let mut counts = HashMap::new();
        let trials = 29_000;
        for _ in 0..trials {
            let n = SignalSampler::TwoStage.sample(30, &mut r).len();
            *counts.entry(n).or_insert(0usize) += 1;
        }
        // 29 possible sizes, so expect ~1000 each; allow generous slack.
        for n in 1..30 {
            let c = *counts.get(&n).unwrap_or(&0);
            assert!((700..1300).contains(&c), "size {n} count {c}");
        }
    }

    #[test]
    fn uniform_subset_sizes_concentrate_near_half() {
        let mut r = rng(4);
        let mut acc = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            acc += SignalSampler::UniformSubset.sample(30, &mut r).len();
        }
        let mean = acc as f64 / trials as f64;
        assert!((mean - 15.0).abs() < 0.5, "mean subset size {mean}");
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn sampler_rejects_degenerate_grid() {
        let _ = SignalSampler::TwoStage.sample(1, &mut rng(5));
    }

    #[test]
    fn amplitude_follows_paper_power_rule() {
        let config = ActionConfig::default();
        let sig = ReferenceSignal::from_indices(&config, vec![0, 5, 7, 20], &mut rng(6));
        assert!((sig.amplitude() - 8_000.0).abs() < 1e-9);
        assert!((sig.tone_power() - config.reference_power(4)).abs() < 1e-6);
        assert!((sig.total_power() - 4.0 * sig.tone_power()).abs() < 1e-6);
    }

    #[test]
    fn waveform_never_clips_sixteen_bit() {
        let config = ActionConfig::default();
        for seed in 0..20 {
            let sig = ReferenceSignal::random(&config, &mut rng(seed));
            let peak = piano_dsp::tone::peak(&sig.waveform());
            assert!(peak <= config.max_amplitude + 1e-9, "peak {peak}");
        }
    }

    #[test]
    fn waveform_concentrates_power_on_chosen_candidates() {
        let config = ActionConfig::default();
        let sig = ReferenceSignal::from_indices(&config, vec![2, 9, 17], &mut rng(8));
        let wave = sig.waveform();
        let ps = power_spectrum(&wave);
        for &i in sig.indices() {
            let bin = config
                .grid
                .fft_bin(i, config.sample_rate, config.signal_len);
            let p = band_power(&ps, bin, config.theta);
            assert!(
                p > 0.5 * sig.tone_power(),
                "candidate {i} power {p} vs R_f {}",
                sig.tone_power()
            );
        }
        // Complement candidates carry (almost) nothing.
        for &i in &config.grid.complement(sig.indices()) {
            let bin = config
                .grid
                .fft_bin(i, config.sample_rate, config.signal_len);
            let p = band_power(&ps, bin, config.theta);
            // Rectangular-window sidelobes of off-bin tones leak ~0.1 % of
            // R_f into neighbouring clusters — inherent to the paper's
            // analysis window and safely below the β = 0.5 % ceiling.
            assert!(
                p < 0.003 * sig.tone_power(),
                "leakage at candidate {i}: {p}"
            );
        }
    }

    #[test]
    fn random_signals_differ_between_sessions() {
        let config = ActionConfig::default();
        let mut r = rng(9);
        let a = ReferenceSignal::random(&config, &mut r);
        let b = ReferenceSignal::random(&config, &mut r);
        assert!(!a.same_frequency_set(&b) || a.phases() != b.phases());
    }

    #[test]
    fn same_frequency_set_compares_indices_only() {
        let config = ActionConfig::default();
        let a = ReferenceSignal::from_indices(&config, vec![1, 2], &mut rng(10));
        let b = ReferenceSignal::from_indices(&config, vec![1, 2], &mut rng(11));
        let c = ReferenceSignal::from_indices(&config, vec![1, 3], &mut rng(12));
        assert!(a.same_frequency_set(&b));
        assert!(!a.same_frequency_set(&c));
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn from_indices_rejects_unsorted() {
        let config = ActionConfig::default();
        let _ = ReferenceSignal::from_indices(&config, vec![3, 1], &mut rng(13));
    }

    #[test]
    #[should_panic(expected = "out of grid")]
    fn from_indices_rejects_out_of_range() {
        let config = ActionConfig::default();
        let _ = ReferenceSignal::from_indices(&config, vec![30], &mut rng(14));
    }

    proptest! {
        #[test]
        fn sampled_signals_are_always_valid(seed in 0u64..500) {
            let config = ActionConfig::default();
            let sig = ReferenceSignal::random(&config, &mut rng(seed));
            prop_assert!(sig.n_tones() >= 1 && sig.n_tones() < 30);
            prop_assert_eq!(sig.phases().len(), sig.n_tones());
            prop_assert_eq!(sig.waveform().len(), 4096);
            prop_assert!((sig.amplitude() * sig.n_tones() as f64 - 32_000.0).abs() < 1e-9);
        }
    }
}
