//! Streaming session API: sans-IO incremental detection, the
//! authentication state machine, and the multi-tenant service.
//!
//! The paper's protocol is inherently incremental — device B records
//! *while* A emits the signal, and Algorithm 1 can conclude as soon as the
//! scan covers the signal's location — yet the classic entry points
//! ([`crate::detect::Detector::detect`], `PianoAuthenticator::authenticate`)
//! force callers to buffer the full ~2 s recording first. This module
//! redesigns the surface around three layers:
//!
//! * [`StreamingDetector`] — Algorithm 1 as an *incremental* computation.
//!   It owns a ring buffer plus per-candidate capture segments, consumes
//!   audio in arbitrary-size chunks, evaluates coarse windows as soon as
//!   the stream covers them, and emits provisional [`StreamEvent`]s the
//!   moment a refined candidate clears the presence threshold — typically
//!   long before `recording_len()` samples have arrived. Calling
//!   [`StreamingDetector::finish`] yields a [`ScanResult`] **bit-identical**
//!   to [`Detector::detect_many`] on the concatenated buffer, for every
//!   chunking (property-tested): the coarse pass evaluates exactly the
//!   offline offsets in the offline order, and the fine pass runs the
//!   shared view-based refinement on the captured neighborhood of the
//!   coarse maximum.
//! * [`AuthSession`] — one authentication attempt as a **sans-IO** typed
//!   state machine ([`SessionPhase::Idle`] → `Challenged` → `Listening` →
//!   `Decided`). The session never touches radios, microphones, or clocks:
//!   callers feed it audio via [`AuthSession::push_audio`] and wire-format
//!   [`Message`]s via [`AuthSession::handle_message`], and drain outgoing
//!   messages via [`AuthSession::poll_transmit`] — directly compatible
//!   with sealing frames over the existing
//!   [`piano_bluetooth::BluetoothLink`]. Both protocol roles are
//!   supported: [`AuthSession::authenticator`] (device A: draws the
//!   signals, receives the Step V report, decides) and
//!   [`AuthSession::voucher`] (device V: reconstructs the signals from the
//!   challenge, reports its local time difference).
//! * [`AuthService`] — many concurrent sessions multiplexed on one host.
//!   Sessions sharing an [`ActionConfig`] share one cached [`Detector`]
//!   (plans and window tables built once) and one coarse scan pass per
//!   audio tick: the service concatenates the member sessions' signatures
//!   into a single group [`StreamingDetector`], generalizing the
//!   single-pass `detect_many` trick across tenants. The service also
//!   hosts the whole-protocol convenience driver
//!   ([`AuthService::authenticate_pair`]) that `PianoAuthenticator` now
//!   shims to.
//! * [`ScanDriver`] — the thread-pool scan driver. Each audio tick's
//!   newly covered coarse windows are an embarrassingly parallel batch;
//!   the driver shards them across a configurable pool of
//!   `std::thread::scope` workers and merges per-signature maxima with
//!   the deterministic (max power, earliest offset) rule shared with
//!   [`Detector::detect_many_parallel`]. **Determinism guarantee:** for
//!   every worker count the events, provisional detections, and
//!   `finish()` results are bit-identical to the serial path — the pool
//!   width is a pure throughput knob (`PIANO_SCAN_WORKERS` sizes it
//!   fleet-wide; `tests/scan_driver_equivalence.rs` pins the contract).
//!   [`AuthService::push_audio`] drives every scan group through its
//!   driver, taking group scans off the pushing thread's critical path.
//!
//! Wire-level ingestion (framed batches, per-feed backpressure, the i16
//! delta PCM codec) lives in [`crate::wire`]: `Message::AudioBatch` /
//! `Message::AudioBatchI16` + `FrameReader` feed sessions from a byte
//! stream, and `IngestFeed` meters each feed against a buffered-sample
//! high-water mark with `Busy`/`Credit` replies. The `piano-net` crate
//! binds all of it to real byte streams (in-memory duplex, loopback
//! TCP): its `ServerLoop` runs one reader/feed/voucher per connection
//! into one shared [`AuthService`] and fills a [`ServiceStats`] snapshot
//! — `examples/fleet_ingest.rs` drives hundreds of concurrent feeds
//! through the full stack as real endpoints. Continuous re-verification
//! at fleet scale is scheduled by
//! [`crate::continuous::ContinuousScheduler`], a priority queue on
//! `next_check_s` over one shared service.
//!
//! # Why sans-IO?
//!
//! Feng et al.'s continuous-authentication work (PAPERS.md) argues the
//! natural surface for voice authentication is a session fed incrementally
//! by the host; Sound-Proof's server multiplexes many verifications per
//! machine. Both demand that the protocol logic own *no* I/O: the state
//! machine here consumes bytes and samples and produces bytes and events,
//! so the same code runs against the simulated acoustics in this repo, a
//! real audio callback, or a network socket — and it is trivially
//! deterministic and testable.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use rand_chacha::ChaCha8Rng;

use piano_acoustics::AcousticField;
use piano_bluetooth::{BluetoothLink, LinkKey, PairingRegistry};
use piano_dsp::spectrum::SpectrumScratch;

use crate::action::{draw_session_signals, ActionOutcome, DistanceEstimate};
use crate::config::ActionConfig;
use crate::detect::{Detection, Detector, ScanMode, ScanResult, SignalSignature};
use crate::device::Device;
use crate::error::PianoError;
use crate::piano::{AuthDecision, DenialReason, PianoConfig};
use crate::ranging::{estimate_distance, LocationDiffs};
use crate::signal::ReferenceSignal;
use crate::sync::OrderedMutex;
use crate::wire::{Message, SignalSpec};

/// Slack (in samples) the ring buffer keeps beyond the retention floor
/// before compacting, so the `O(len)` front-drain amortizes.
const COMPACT_SLACK: usize = 16_384;

/// Minimum coarse-offset batch worth sharding across worker threads. A
/// coarse window evaluation is one spectrum (tens of microseconds) —
/// comparable to spawning a scoped thread — so small audio-callback ticks
/// run serially on the pushing thread regardless of the configured pool
/// width. Has no observable effect besides speed: results are worker-count
/// invariant by construction.
const MIN_SHARD_OFFSETS: usize = 8;

/// The PIANO threshold rule: maps ACTION's distance verdict to the final
/// decision under threshold τ. Shared by [`AuthSession`] and
/// [`AuthService::authenticate_pair`] so the two paths cannot diverge.
pub fn decision_from_estimate(estimate: DistanceEstimate, threshold_m: f64) -> AuthDecision {
    match estimate {
        DistanceEstimate::SignalAbsent => AuthDecision::Denied {
            reason: DenialReason::SignalAbsent,
        },
        DistanceEstimate::Measured(d) if d <= threshold_m => {
            AuthDecision::Granted { distance_m: d }
        }
        DistanceEstimate::Measured(d) => AuthDecision::Denied {
            reason: DenialReason::TooFar { distance_m: d },
        },
    }
}

/// A provisional detection emitted mid-stream, before the recording ends.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EarlyDetection {
    /// The refined detection (always [`Detection::Found`]).
    pub detection: Detection,
    /// Stream position (samples consumed) when the detection fired.
    pub samples_consumed: usize,
}

/// Events emitted by [`StreamingDetector::push`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StreamEvent {
    /// A signature's coarse maximum cleared the presence threshold and its
    /// fine-scan neighborhood is fully buffered: the refined detection is
    /// available now, `samples_consumed` samples into the stream.
    ///
    /// The event is *provisional*: the offline-equivalent
    /// [`StreamingDetector::finish`] result can still move to a later,
    /// stronger window. In practice (one reference signal per recording)
    /// the early and final locations coincide.
    EarlyDetection {
        /// Index of the signature (construction order).
        signature: usize,
        /// The provisional detection.
        detection: Detection,
        /// Samples consumed when it fired.
        samples_consumed: usize,
    },
}

/// Captured neighborhood of one signature's running coarse maximum: the
/// samples the final fine scan will need, copied out of the ring before
/// the ring drops them.
#[derive(Clone, Debug, Default)]
struct Capture {
    valid: bool,
    /// Absolute sample index of `data[0]`.
    start: usize,
    /// Absolute end (exclusive) the capture wants to cover.
    want_end: usize,
    data: Vec<f64>,
}

impl Capture {
    fn covered_end(&self) -> usize {
        self.start + self.data.len()
    }
    fn complete(&self) -> bool {
        self.valid && self.covered_end() >= self.want_end
    }
}

/// The shared sample ring under the streaming scan: a flat buffer whose
/// element `buf[i]` holds absolute stream sample `base + i`, with
/// `total − base` samples resident. Compaction drops samples no future
/// window can touch, keeping memory `O(signal_len + fine_radius)` for
/// unbounded streams.
///
/// Coarse windows are read in place via [`window`](Self::window); fine
/// neighborhoods are copied out via [`capture_into`](Self::capture_into)
/// before compaction can reclaim them. The compaction floor is rounded
/// down to a multiple of [`RING_ALIGN`] samples so every retained coarse
/// window keeps its phase relative to the buffer start — the layout
/// invariant a vectorized two-windows-per-pass coarse kernel needs to
/// process co-phased window pairs from one contiguous ring.
#[derive(Debug, Default)]
struct SampleRing {
    /// Ring storage: `buf[i]` is absolute sample `base + i`.
    buf: Vec<f64>,
    /// Absolute index of `buf[0]`.
    base: usize,
    /// Total samples consumed (the stream frontier).
    total: usize,
}

/// Compaction alignment (samples): the ring base always stays a multiple
/// of this, so window phase modulo the SIMD lane count is preserved
/// across compactions.
const RING_ALIGN: usize = 8;

impl SampleRing {
    /// Appends one chunk, containing non-finite samples at this boundary:
    /// NaN/±∞ enter the ring as silence (`0.0`), sanitized inline during
    /// the copy — no staging allocation even when a chunk is poisoned.
    fn append(&mut self, samples: &[f64]) {
        self.buf.reserve(samples.len());
        self.buf
            .extend(samples.iter().map(|&s| if s.is_finite() { s } else { 0.0 }));
        self.total += samples.len();
    }

    /// The resident view of absolute range `[start, end)`, or `None` if
    /// any part has been compacted away or not yet arrived.
    fn window(&self, start: usize, end: usize) -> Option<&[f64]> {
        if start < self.base || end > self.total {
            return None;
        }
        self.buf.get(start - self.base..end - self.base)
    }

    /// Appends the resident part of absolute range `[start, end)` onto
    /// `out` and returns the (possibly clamped) absolute index of the
    /// first copied sample. `start` is clamped up to the ring base and
    /// `end` down to the stream frontier, so a requested neighborhood
    /// whose left edge fell behind a compaction yields the samples that
    /// still exist instead of sliding out of range.
    fn capture_into(&self, start: usize, end: usize, out: &mut Vec<f64>) -> usize {
        let lo = start.max(self.base);
        let hi = end.min(self.total).max(lo);
        if let Some(run) = self.buf.get(lo - self.base..hi - self.base) {
            out.extend_from_slice(run);
        }
        lo
    }

    /// Drops samples below `floor` (rounded down to [`RING_ALIGN`]) once
    /// enough have accumulated for the `O(len)` front-drain to amortize.
    fn compact_to(&mut self, floor: usize) {
        let floor = floor & !(RING_ALIGN - 1);
        if floor > self.base + COMPACT_SLACK {
            self.buf.drain(..floor - self.base);
            self.base = floor;
        }
    }
}

/// Algorithm 1 as an incremental, bounded-memory computation.
///
/// Feed samples with [`push`](Self::push) in chunks of any size; read
/// provisional results from the returned [`StreamEvent`]s; call
/// [`finish`](Self::finish) at end-of-stream for the exact offline result.
/// Memory is `O(signal_len + fine_radius)` per tracked signature plus one
/// shared ring of the same order — independent of stream length.
#[derive(Debug)]
pub struct StreamingDetector {
    detector: Arc<Detector>,
    sigs: Vec<SignalSignature>,
    mode: ScanMode,
    /// The shared sample ring all coarse windows and captures read from.
    ring: SampleRing,
    /// Next coarse offset (multiple of `coarse_step`) to evaluate.
    next_coarse: usize,
    coarse_evals: usize,
    /// Running coarse maximum power per signature (structure-of-arrays
    /// with [`best_at`](Self::best_at): the coarse fold updates powers
    /// densely while offsets change only on a new maximum).
    best_power: Vec<f64>,
    /// Earliest offset achieving [`best_power`](Self::best_power), per
    /// signature.
    best_at: Vec<usize>,
    captures: Vec<Capture>,
    /// Reused scratch for each tick's batch of coarse offsets.
    coarse_offsets: Vec<usize>,
    early: Vec<Option<EarlyDetection>>,
    /// Coarse location already early-attempted per signature, to avoid
    /// re-running the fine scan on an unchanged maximum.
    early_attempted: Vec<Option<usize>>,
    early_fine_evals: usize,
    /// Confidence multiplier on the provisional `ε·R_S` gate (≥ 1).
    early_margin: f64,
    scratch: SpectrumScratch,
    spectrum: Vec<f64>,
    result: Option<ScanResult>,
}

impl StreamingDetector {
    /// Builds a streaming scan for `sigs` under `detector`'s configuration.
    ///
    /// The spectral path is chosen exactly as [`Detector::detect_many`]
    /// does ([`ScanMode::Auto`]).
    pub fn new(detector: Arc<Detector>, sigs: Vec<SignalSignature>) -> Self {
        let mode = detector.resolve_mode(ScanMode::Auto);
        let n = sigs.len();
        StreamingDetector {
            detector,
            sigs,
            mode,
            ring: SampleRing::default(),
            next_coarse: 0,
            coarse_evals: 0,
            best_power: vec![f64::NEG_INFINITY; n],
            best_at: vec![0; n],
            captures: vec![Capture::default(); n],
            coarse_offsets: Vec::new(),
            early: vec![None; n],
            early_attempted: vec![None; n],
            early_fine_evals: 0,
            early_margin: 1.0,
            scratch: SpectrumScratch::default(),
            spectrum: Vec::new(),
            result: None,
        }
    }

    /// The signatures this scan tracks, in construction order.
    pub fn signatures(&self) -> &[SignalSignature] {
        &self.sigs
    }

    /// Total samples consumed so far.
    pub fn samples_consumed(&self) -> usize {
        self.ring.total
    }

    /// The provisional detection for signature `i`, if one has fired.
    pub fn early_detection(&self, i: usize) -> Option<&EarlyDetection> {
        self.early[i].as_ref()
    }

    /// Window evaluations spent on provisional (early) fine scans. These
    /// are *excluded* from [`ScanResult::ffts_used`], which matches the
    /// offline count exactly.
    pub fn early_fine_evals(&self) -> usize {
        self.early_fine_evals
    }

    /// Whether [`finish`](Self::finish) has run.
    pub fn is_finished(&self) -> bool {
        self.result.is_some()
    }

    /// Tightens the provisional-detection gate by `margin` (≥ 1): an early
    /// detection fires only once the running coarse maximum clears
    /// `margin · ε·R_S` instead of the bare presence threshold (the
    /// refined power then clears it too — the fine scan only ever raises
    /// the coarse power, never lowers it). Higher
    /// margins trade later (or suppressed) provisional events for a lower
    /// provisional-vs-final disagreement rate; `finish()` is unaffected —
    /// exact results never depend on the margin.
    ///
    /// # Panics
    ///
    /// Panics unless `margin` is finite and ≥ 1.
    pub fn set_early_margin(&mut self, margin: f64) {
        assert!(
            margin.is_finite() && margin >= 1.0,
            "early margin must be a finite multiplier ≥ 1, got {margin}"
        );
        self.early_margin = margin;
    }

    /// The provisional-detection confidence margin (default 1).
    pub fn early_margin(&self) -> f64 {
        self.early_margin
    }

    /// Consumes one chunk of audio, returning any provisional detections
    /// that became available.
    ///
    /// Non-finite samples (NaN/±∞) are **contained at this boundary**:
    /// they enter the ring as silence (`0.0`), because one poisoned
    /// sample would otherwise corrupt the sliding-DFT state of every
    /// subsequent fine window. For finite input, [`finish`](Self::finish)
    /// remains bit-identical to the offline scan of the same samples.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finish`](Self::finish).
    pub fn push(&mut self, samples: &[f64]) -> Vec<StreamEvent> {
        self.push_with_workers(samples, 1)
    }

    /// [`push`](Self::push) with this tick's coarse windows sharded across
    /// `workers` scoped threads ([`ScanDriver`] calls this). Events,
    /// provisional detections, and [`finish`](Self::finish) results are
    /// **bit-identical** to the serial path for every worker count: shards
    /// are contiguous offset ranges evaluated in offline order, and the
    /// per-signature merge keeps (max power, earliest offset) — the serial
    /// first-maximum rule (see
    /// [`Detector::detect_many_parallel`]).
    ///
    /// Ticks covering only a few coarse offsets run inline regardless of
    /// `workers` (the sharding overhead would exceed the work); this is
    /// invisible in the results.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or the stream already finished.
    pub fn push_with_workers(&mut self, samples: &[f64], workers: usize) -> Vec<StreamEvent> {
        assert!(workers > 0, "at least one worker is required");
        assert!(self.result.is_none(), "stream already finished");
        if samples.is_empty() {
            return Vec::new();
        }
        // Non-finite samples are contained at the ingest boundary, inside
        // `SampleRing::append`: a NaN or ∞ entering the ring would poison
        // the sliding-DFT state of every later fine window in its scan
        // (the incremental correction subtracts the sample back out, and
        // NaN − NaN ≠ 0) and survive ring compaction inside captured
        // neighborhoods. A dead ADC sample therefore contributes silence
        // instead; `finish()` matches the offline scan of the sanitized
        // stream. Remote feeds are rejected earlier, at wire decode.
        let prev_total = self.ring.total;
        self.ring.append(samples);

        // Extend incomplete captures with the newly arrived samples.
        for cap in &mut self.captures {
            if cap.valid && !cap.complete() {
                let from = cap.covered_end().max(prev_total);
                let to = cap.want_end.min(self.ring.total);
                if to > from {
                    match self.ring.window(from, to) {
                        Some(run) => cap.data.extend_from_slice(run),
                        // The tail fell behind a compaction before the
                        // capture could cover it — the neighborhood can
                        // no longer be completed; drop it rather than
                        // splice discontiguous samples.
                        None => cap.valid = false,
                    }
                }
            }
        }

        // Coarse pass over every newly covered offset, in offline order.
        let w = self.detector.config().signal_len;
        let step = self.detector.config().coarse_step.max(1);
        let mut offsets = std::mem::take(&mut self.coarse_offsets);
        offsets.clear();
        while self.next_coarse + w <= self.ring.total {
            offsets.push(self.next_coarse);
            self.next_coarse += step;
        }
        self.eval_coarse_batch(&offsets, workers);
        self.coarse_offsets = offsets;

        // Early refinement: a cleared threshold plus a fully buffered
        // neighborhood yields a provisional detection now.
        let mut events = Vec::new();
        for i in 0..self.sigs.len() {
            if let Some(ev) = self.try_early(i) {
                events.push(ev);
            }
        }

        // Drop ring samples no future coarse window, capture, or
        // finish-time fine scan can need.
        let radius = self.detector.config().fine_radius;
        self.ring
            .compact_to(self.ring.total.saturating_sub(w + radius));
        events
    }

    /// Evaluates one tick's batch of coarse offsets, optionally sharded
    /// across scoped worker threads.
    ///
    /// Every offset in the batch sees the same ring state (the coarse walk
    /// runs after the buffer extension, exactly like the serial per-offset
    /// path), so evaluating shards concurrently and merging per-signature
    /// maxima in shard order reproduces the serial running maximum — and
    /// therefore the serial captures — bit for bit.
    fn eval_coarse_batch(&mut self, offsets: &[usize], workers: usize) {
        if offsets.is_empty() {
            return;
        }
        // Tiny batches (a typical audio-callback tick covers a handful of
        // offsets) aren't worth the spawn/join overhead: run them inline.
        let workers = if offsets.len() < MIN_SHARD_OFFSETS {
            1
        } else {
            workers.min(offsets.len())
        };
        if workers == 1 {
            for &offset in offsets {
                self.eval_coarse(offset);
            }
            return;
        }
        let detector = &self.detector;
        let buf = &self.ring.buf;
        let base = self.ring.base;
        let sigs = &self.sigs;
        let chunk_len = offsets.len().div_ceil(workers);
        let shard_results: Vec<(Vec<(f64, usize)>, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = offsets
                .chunks(chunk_len)
                .map(|chunk| {
                    scope.spawn(move || detector.coarse_chunk_view(buf, base, sigs, chunk))
                })
                .collect();
            handles
                .into_iter()
                // piano-lint: allow(wire-no-panic, reason = "deliberate panic propagation: a poisoned scan worker must fail the scan, not silently drop a shard of the coarse walk")
                .map(|h| h.join().expect("coarse scan worker panicked"))
                .collect()
        });
        let mut batch_best = vec![(f64::NEG_INFINITY, 0usize); self.sigs.len()];
        for (shard_best, shard_evals) in shard_results {
            crate::detect::merge_coarse(&mut batch_best, &shard_best);
            self.coarse_evals += shard_evals;
        }
        // Fold the batch maxima into the running state and refresh the
        // captures of signatures whose maximum moved — the data matches
        // what the serial path would have captured at eval time, because
        // the whole batch shares this tick's ring contents.
        let w = self.detector.config().signal_len;
        let radius = self.detector.config().fine_radius;
        for (i, &(p, offset)) in batch_best.iter().enumerate() {
            if p > self.best_power[i] {
                self.best_power[i] = p;
                self.best_at[i] = offset;
                Self::recapture(&self.ring, &mut self.captures[i], offset, w, radius);
            }
        }
    }

    /// Refreshes one signature's capture around a new running maximum at
    /// `offset`, reusing the capture's existing allocation. The requested
    /// left edge is `offset − radius`; if that has already been compacted
    /// away the capture starts at the ring base instead (the clamp lives
    /// in [`SampleRing::capture_into`]), never indexing out of range.
    fn recapture(ring: &SampleRing, cap: &mut Capture, offset: usize, w: usize, radius: usize) {
        let want_end = offset + radius + w;
        cap.data.clear();
        cap.start = ring.capture_into(offset.saturating_sub(radius), want_end, &mut cap.data);
        cap.want_end = want_end;
        cap.valid = true;
    }

    /// Evaluates one coarse window (shared across signatures, exactly like
    /// the offline coarse pass) and refreshes running maxima and captures.
    fn eval_coarse(&mut self, offset: usize) {
        let w = self.detector.config().signal_len;
        let radius = self.detector.config().fine_radius;
        let Some(win) = self.ring.window(offset, offset + w) else {
            // A coarse offset is only ever evaluated while its window is
            // resident (compaction retains `signal_len + fine_radius`
            // past the frontier); a miss means the caller's arithmetic is
            // off, and skipping is strictly safer than slicing blind.
            return;
        };
        self.detector
            .analyzer()
            .compute(win, &mut self.scratch, &mut self.spectrum);
        self.coarse_evals += 1;
        for (i, sig) in self.sigs.iter().enumerate() {
            let p = self.detector.norm_power(&self.spectrum, sig);
            if p > self.best_power[i] {
                self.best_power[i] = p;
                self.best_at[i] = offset;
                Self::recapture(&self.ring, &mut self.captures[i], offset, w, radius);
            }
        }
    }

    /// Runs the provisional fine scan for signature `i` if its running
    /// maximum newly clears the threshold with a complete neighborhood.
    fn try_early(&mut self, i: usize) -> Option<StreamEvent> {
        if self.early[i].is_some() {
            return None;
        }
        let (p, loc) = (self.best_power[i], self.best_at[i]);
        let gate = self.early_margin * self.detector.config().epsilon * self.sigs[i].rs();
        if !p.is_finite() || p < gate {
            return None;
        }
        if !self.captures[i].complete() || self.early_attempted[i] == Some(loc) {
            return None;
        }
        self.early_attempted[i] = Some(loc);
        let radius = self.detector.config().fine_radius;
        let cap = &self.captures[i];
        // The neighborhood is fully buffered, so the fine window range is
        // not clamped by the (still unknown) end of stream.
        let (fine_p, fine_loc, evals) = self.detector.fine_scan_view(
            &cap.data,
            cap.start,
            loc + radius,
            &self.sigs[i],
            (p, loc),
            self.mode,
        );
        self.early_fine_evals += evals;
        match self
            .detector
            .threshold_detection(fine_p, fine_loc, &self.sigs[i])
        {
            d @ Detection::Found { .. } => {
                let early = EarlyDetection {
                    detection: d,
                    samples_consumed: self.ring.total,
                };
                self.early[i] = Some(early);
                Some(StreamEvent::EarlyDetection {
                    signature: i,
                    detection: d,
                    samples_consumed: self.ring.total,
                })
            }
            Detection::NotPresent => None,
        }
    }

    /// Ends the stream and returns the scan result — bit-identical to
    /// [`Detector::detect_many`] over the full concatenated buffer,
    /// including [`ScanResult::ffts_used`]. Idempotent: repeated calls
    /// return the cached result.
    pub fn finish(&mut self) -> ScanResult {
        if let Some(result) = &self.result {
            return result.clone();
        }
        let w = self.detector.config().signal_len;
        let step = self.detector.config().coarse_step.max(1);
        if self.ring.total < w || self.sigs.is_empty() {
            let result = ScanResult {
                detections: vec![Detection::NotPresent; self.sigs.len()],
                ffts_used: 0,
            };
            self.result = Some(result.clone());
            return result;
        }
        let last = self.ring.total - w;
        // The offline scan ends its coarse walk exactly at `last`; every
        // multiple of `step` up to `last` has already been evaluated.
        if !last.is_multiple_of(step) {
            self.eval_coarse(last);
        }
        let mut ffts = self.coarse_evals;
        let mut detections = Vec::with_capacity(self.sigs.len());
        for i in 0..self.sigs.len() {
            let coarse = (self.best_power[i], self.best_at[i]);
            let cap = &self.captures[i];
            let (samples, base): (&[f64], usize) = if cap.valid {
                (&cap.data, cap.start)
            } else {
                (&[], 0)
            };
            let (p, loc, evals) =
                self.detector
                    .fine_scan_view(samples, base, last, &self.sigs[i], coarse, self.mode);
            ffts += evals;
            detections.push(self.detector.threshold_detection(p, loc, &self.sigs[i]));
        }
        let result = ScanResult {
            detections,
            ffts_used: ffts,
        };
        self.result = Some(result.clone());
        result
    }
}

/// Environment variable overriding the default scan worker count.
pub const SCAN_WORKERS_ENV: &str = "PIANO_SCAN_WORKERS";

/// The scan worker count in force: `PIANO_SCAN_WORKERS` when set to a
/// positive integer, otherwise the machine's available parallelism.
///
/// [`ScanDriver::from_env`], [`AuthService`], and the eval trial runner all
/// derive their pool width from this, so one environment knob pins the
/// whole workspace to a worker count (the CI matrix runs the suite at 1
/// and 4).
pub fn scan_workers_from_env() -> usize {
    if let Ok(raw) = std::env::var(SCAN_WORKERS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// The thread-pool scan driver: shards each audio tick's coarse windows
/// across a configurable pool of `std::thread::scope` workers.
///
/// Algorithm 1's coarse pass is embarrassingly parallel across window
/// offsets, and the (max power, earliest offset) merge rule makes the
/// shard order irrelevant to the result: for **every** worker count the
/// driver's detections, early-decision events, and `finish()` outputs are
/// bit-identical to the serial [`StreamingDetector::push`] path
/// (property-tested in `tests/scan_driver_equivalence.rs`). The driver is
/// therefore a pure throughput knob — [`AuthService`] uses one to take
/// group scans off the pushing thread's critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanDriver {
    workers: usize,
}

impl ScanDriver {
    /// A driver with a fixed worker-pool width.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "at least one worker is required");
        ScanDriver { workers }
    }

    /// The single-worker driver: every scan runs on the pushing thread.
    pub fn serial() -> Self {
        ScanDriver::new(1)
    }

    /// A driver sized by [`scan_workers_from_env`].
    pub fn from_env() -> Self {
        ScanDriver::new(scan_workers_from_env())
    }

    /// The pool width.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Feeds one chunk through `scanner` with this driver's pool:
    /// equivalent to [`StreamingDetector::push`], bit for bit, with the
    /// coarse windows sharded across the workers.
    pub fn drive(&self, scanner: &mut StreamingDetector, samples: &[f64]) -> Vec<StreamEvent> {
        scanner.push_with_workers(samples, self.workers)
    }
}

impl Default for ScanDriver {
    /// [`ScanDriver::from_env`].
    fn default() -> Self {
        ScanDriver::from_env()
    }
}

/// Which reference signal an event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalRole {
    /// `S_A`, played by the authenticating device.
    Auth,
    /// `S_V`, played by the vouching device.
    Vouch,
}

/// The typed phases of an [`AuthSession`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionPhase {
    /// Created; the challenge has not crossed the wire yet.
    Idle,
    /// Challenge sent (authenticator) or accepted (voucher); audio may
    /// begin.
    Challenged,
    /// Audio is streaming through the detector.
    Listening,
    /// Terminal: the authenticator has decided, or the voucher has queued
    /// its report.
    Decided,
}

/// Events returned by the session's input methods.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionEvent {
    /// A reference signal was located in the session's own audio.
    SignalLocated {
        /// Which signal.
        role: SignalRole,
        /// Where (or that it is absent — final results only).
        detection: Detection,
        /// Samples consumed when the location became known.
        samples_consumed: usize,
        /// `true` for early (mid-stream) locations, `false` for the exact
        /// end-of-stream result.
        provisional: bool,
    },
    /// The voucher's Step V report is queued; drain it with
    /// [`AuthSession::poll_transmit`].
    ReportReady,
    /// The authenticator reached a decision.
    Decided(AuthDecision),
}

/// One authentication attempt as a sans-IO state machine.
///
/// See the [module docs](self) for the design; in short: wire messages in
/// via [`handle_message`](Self::handle_message), audio in via
/// [`push_audio`](Self::push_audio) (or wire-framed
/// [`Message::AudioChunk`]s), messages out via
/// [`poll_transmit`](Self::poll_transmit), and the verdict from
/// [`decision`](Self::decision) once the phase reaches
/// [`SessionPhase::Decided`].
#[derive(Debug)]
pub struct AuthSession {
    phase: SessionPhase,
    is_authenticator: bool,
    threshold_m: f64,
    early_decision: bool,
    early_margin: f64,
    session_id: u64,
    detector: Arc<Detector>,
    sa: Option<ReferenceSignal>,
    sv: Option<ReferenceSignal>,
    sig_a: Option<SignalSignature>,
    sig_v: Option<SignalSignature>,
    scanner: Option<StreamingDetector>,
    outbox: VecDeque<Message>,
    next_audio_seq: u32,
    samples_consumed: usize,
    early_a: Option<Detection>,
    early_v: Option<Detection>,
    final_a: Option<Detection>,
    final_v: Option<Detection>,
    scan_ffts: usize,
    scan_done: bool,
    vouch_diff: Option<Option<f64>>,
    estimate: Option<DistanceEstimate>,
    decision: Option<AuthDecision>,
}

impl AuthSession {
    /// Creates the authenticating-device (A) side of a session: draws the
    /// session id and both reference signals (in the exact RNG order of
    /// [`draw_session_signals`]) and queues the Step II challenge.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::InvalidConfig`] if `config` fails validation.
    pub fn authenticator(
        config: &ActionConfig,
        threshold_m: f64,
        rng: &mut ChaCha8Rng,
    ) -> Result<Self, PianoError> {
        config.validate()?;
        Ok(Self::authenticator_with(
            Arc::new(Detector::new(config)),
            threshold_m,
            rng,
        ))
    }

    /// [`Self::authenticator`] with a shared, pre-built detector (the
    /// plan-reuse path services take).
    pub fn authenticator_with(
        detector: Arc<Detector>,
        threshold_m: f64,
        rng: &mut ChaCha8Rng,
    ) -> Self {
        let (session_id, sa, sv) = draw_session_signals(detector.config(), rng);
        let config = detector.config();
        let sig_a = SignalSignature::of(&sa, config);
        let sig_v = SignalSignature::of(&sv, config);
        let mut outbox = VecDeque::new();
        outbox.push_back(Message::ReferenceSignals {
            session: session_id,
            sa: SignalSpec::of(&sa),
            sv: SignalSpec::of(&sv),
        });
        AuthSession {
            phase: SessionPhase::Idle,
            is_authenticator: true,
            threshold_m,
            early_decision: false,
            early_margin: 1.0,
            session_id,
            detector,
            sa: Some(sa),
            sv: Some(sv),
            sig_a: Some(sig_a),
            sig_v: Some(sig_v),
            scanner: None,
            outbox,
            next_audio_seq: 0,
            samples_consumed: 0,
            early_a: None,
            early_v: None,
            final_a: None,
            final_v: None,
            scan_ffts: 0,
            scan_done: false,
            vouch_diff: None,
            estimate: None,
            decision: None,
        }
    }

    /// Creates the vouching-device (V) side: idle until the Step II
    /// challenge arrives via [`handle_message`](Self::handle_message).
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::InvalidConfig`] if `config` fails validation.
    pub fn voucher(config: &ActionConfig) -> Result<Self, PianoError> {
        config.validate()?;
        Ok(Self::voucher_with(Arc::new(Detector::new(config))))
    }

    /// [`Self::voucher`] with a shared, pre-built detector.
    pub fn voucher_with(detector: Arc<Detector>) -> Self {
        AuthSession {
            phase: SessionPhase::Idle,
            is_authenticator: false,
            threshold_m: f64::INFINITY,
            early_decision: false,
            early_margin: 1.0,
            session_id: 0,
            detector,
            sa: None,
            sv: None,
            sig_a: None,
            sig_v: None,
            scanner: None,
            outbox: VecDeque::new(),
            next_audio_seq: 0,
            samples_consumed: 0,
            early_a: None,
            early_v: None,
            final_a: None,
            final_v: None,
            scan_ffts: 0,
            scan_done: false,
            vouch_diff: None,
            estimate: None,
            decision: None,
        }
    }

    /// Opts this session into *early* conclusion: once both reference
    /// signals are provisionally located mid-stream (and, for the
    /// authenticator, the Step V report has arrived), the session decides
    /// immediately instead of waiting for [`finish_audio`](Self::finish_audio).
    ///
    /// Early locations are provisional (see [`StreamEvent`]); sessions that
    /// need exact offline-equivalent results leave this off (the default).
    ///
    /// Equivalent to
    /// [`enable_early_decision_with_confidence`](Self::enable_early_decision_with_confidence)
    /// at confidence 1 (the bare `ε·R_S` presence gate).
    pub fn enable_early_decision(&mut self) {
        self.enable_early_decision_with_confidence(1.0);
    }

    /// Opts into early conclusion with a confidence margin: provisional
    /// locations only fire once the coarse maximum clears
    /// `confidence · ε·R_S` (see [`StreamingDetector::set_early_margin`]).
    /// Raising the confidence lowers the provisional-vs-final disagreement
    /// rate at the cost of later (or, on weak signals, suppressed)
    /// early decisions; `tests/early_decision_calibration.rs` quantifies
    /// the trade-off under noise sweeps.
    ///
    /// # Panics
    ///
    /// Panics unless `confidence` is finite and ≥ 1.
    pub fn enable_early_decision_with_confidence(&mut self, confidence: f64) {
        assert!(
            confidence.is_finite() && confidence >= 1.0,
            "early-decision confidence must be a finite multiplier ≥ 1, got {confidence}"
        );
        self.early_decision = true;
        self.early_margin = confidence;
        if let Some(scanner) = &mut self.scanner {
            scanner.set_early_margin(confidence);
        }
    }

    /// The early-decision confidence margin, if early decision is enabled.
    pub fn early_confidence(&self) -> Option<f64> {
        self.early_decision.then_some(self.early_margin)
    }

    /// Current phase.
    pub fn phase(&self) -> SessionPhase {
        self.phase
    }

    /// Whether this is the authenticating-device side.
    pub fn is_authenticator(&self) -> bool {
        self.is_authenticator
    }

    /// The wire session id (authenticator: drawn at construction; voucher:
    /// learned from the challenge).
    pub fn session_id(&self) -> u64 {
        self.session_id
    }

    /// The waveform this device must play in Step III: `S_A` for the
    /// authenticator, `S_V` for the voucher. `None` until the signals are
    /// known (voucher before the challenge).
    pub fn playback_waveform(&self) -> Option<Vec<f64>> {
        let role = if self.is_authenticator {
            SignalRole::Auth
        } else {
            SignalRole::Vouch
        };
        self.waveform_of(role)
    }

    /// The waveform of either reference signal, once the signals are
    /// known. A simulation host embedding *both* signals into a shared
    /// microphone recording (the fleet examples) reads them here instead
    /// of re-deriving the signals from the wire challenge.
    pub fn waveform_of(&self, role: SignalRole) -> Option<Vec<f64>> {
        match role {
            SignalRole::Auth => self.sa.as_ref().map(|s| s.waveform()),
            SignalRole::Vouch => self.sv.as_ref().map(|s| s.waveform()),
        }
    }

    /// Tone counts `(S_A, S_V)` once the signals are known.
    pub fn tone_counts(&self) -> Option<(usize, usize)> {
        Some((self.sa.as_ref()?.n_tones(), self.sv.as_ref()?.n_tones()))
    }

    /// Exact end-of-stream detections `(S_A, S_V)` in this device's own
    /// recording, once [`finish_audio`](Self::finish_audio) has run.
    pub fn locations(&self) -> Option<(Detection, Detection)> {
        if self.scan_done {
            Some((self.final_a?, self.final_v?))
        } else {
            None
        }
    }

    /// Window evaluations of the scan that produced this session's
    /// locations. For a standalone session this equals the offline
    /// [`ScanResult::ffts_used`] of its own recording; for a session
    /// managed by an [`AuthService`] scan group it is the *shared* group
    /// scan's count — one pass served every member, so summing
    /// `scan_ffts` across a group's sessions over-counts the shared work.
    pub fn scan_ffts(&self) -> usize {
        self.scan_ffts
    }

    /// Total audio samples consumed.
    pub fn samples_consumed(&self) -> usize {
        self.samples_consumed
    }

    /// The distance verdict (authenticator only), once decided.
    pub fn estimate(&self) -> Option<DistanceEstimate> {
        self.estimate
    }

    /// The final decision (authenticator only), once decided.
    pub fn decision(&self) -> Option<&AuthDecision> {
        self.decision.as_ref()
    }

    /// Pops the next outgoing wire message.
    ///
    /// The authenticator's Step II challenge is queued at construction;
    /// popping it transitions [`SessionPhase::Idle`] →
    /// [`SessionPhase::Challenged`]. The voucher's Step V report appears
    /// after its scan concludes.
    pub fn poll_transmit(&mut self) -> Option<Message> {
        let msg = self.outbox.pop_front()?;
        if self.is_authenticator
            && self.phase == SessionPhase::Idle
            && matches!(msg, Message::ReferenceSignals { .. })
        {
            self.phase = SessionPhase::Challenged;
        }
        Some(msg)
    }

    /// Feeds one incoming wire message to the state machine.
    ///
    /// * Voucher + [`Message::ReferenceSignals`]: accepts the challenge
    ///   (reconstructing `S_V` then `S_A`, exactly like the classic
    ///   protocol) and becomes [`SessionPhase::Challenged`].
    /// * Authenticator + [`Message::TimeDiffReport`]: records the report
    ///   and decides if its own locations are ready.
    /// * Either role + [`Message::AudioChunk`] /
    ///   [`Message::AudioBatch`]: verifies session and sequence (a batch
    ///   covers `start_seq .. start_seq + chunks.len()`), then feeds the
    ///   samples as [`push_audio`](Self::push_audio) would.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::Wire`] for messages that do not fit the
    /// session's role, phase, id, or audio sequence, and for flow-control
    /// replies ([`Message::Busy`] / [`Message::Credit`]) — those address
    /// the audio *sender*, not the session state machine.
    pub fn handle_message(&mut self, msg: Message) -> Result<Vec<SessionEvent>, PianoError> {
        match msg {
            Message::ReferenceSignals { session, sa, sv } => {
                if self.is_authenticator {
                    return Err(PianoError::Wire(
                        "authenticator received a ReferenceSignals challenge".into(),
                    ));
                }
                if self.phase != SessionPhase::Idle {
                    return Err(PianoError::Wire(format!(
                        "challenge in phase {:?}",
                        self.phase
                    )));
                }
                let config = self.detector.config();
                // Reconstruct S_V first, then S_A — the classic Step II
                // order, preserved so error precedence is unchanged.
                let sv_rx = sv.reconstruct(config)?;
                let sa_rx = sa.reconstruct(config)?;
                self.sig_a = Some(SignalSignature::of(&sa_rx, config));
                self.sig_v = Some(SignalSignature::of(&sv_rx, config));
                self.sa = Some(sa_rx);
                self.sv = Some(sv_rx);
                self.session_id = session;
                self.phase = SessionPhase::Challenged;
                Ok(Vec::new())
            }
            Message::TimeDiffReport {
                session,
                vouch_diff_samples,
            } => {
                if !self.is_authenticator {
                    return Err(PianoError::Wire("voucher received a TimeDiffReport".into()));
                }
                if session != self.session_id {
                    return Err(PianoError::Wire(format!(
                        "report for session {session:#x}, expected {:#x}",
                        self.session_id
                    )));
                }
                if self.vouch_diff.is_some() {
                    return Err(PianoError::Wire("duplicate TimeDiffReport".into()));
                }
                self.vouch_diff = Some(vouch_diff_samples);
                let mut events = Vec::new();
                self.try_conclude(&mut events);
                Ok(events)
            }
            Message::AudioChunk {
                session,
                seq,
                samples,
            } => {
                self.check_wire_audio(session, seq)?;
                self.next_audio_seq += 1;
                Ok(self.push_audio(&samples))
            }
            Message::AudioBatch {
                session,
                start_seq,
                chunks,
            } => {
                self.check_wire_audio(session, start_seq)?;
                self.next_audio_seq += chunks.len() as u32;
                let mut events = Vec::new();
                for chunk in chunks.iter() {
                    events.extend(self.push_audio(chunk));
                }
                Ok(events)
            }
            Message::AudioBatchI16 {
                session,
                start_seq,
                chunks,
            } => {
                self.check_wire_audio(session, start_seq)?;
                self.next_audio_seq += chunks.len() as u32;
                let mut events = Vec::new();
                for chunk in chunks.iter() {
                    let widened: Vec<f64> = chunk.iter().map(|&q| q as f64).collect();
                    events.extend(self.push_audio(&widened));
                }
                Ok(events)
            }
            Message::Busy { .. } | Message::Credit { .. } => Err(PianoError::Wire(
                "flow-control reply addressed to a session state machine".into(),
            )),
            Message::Hello { .. }
            | Message::Accept { .. }
            | Message::StreamEnd { .. }
            | Message::Decision { .. }
            | Message::Resume { .. }
            | Message::ResumeAck { .. }
            | Message::Retry { .. } => Err(PianoError::Wire(
                "transport-layer message addressed to a session state machine".into(),
            )),
            Message::Recheck { .. }
            | Message::RecheckAudio { .. }
            | Message::RecheckVerdict { .. } => Err(PianoError::Wire(
                "re-challenge message addressed to a session state machine; \
                 standing-session hosts route re-checks through fresh sessions"
                    .into(),
            )),
        }
    }

    /// Validates the phase, session id, and sequence of wire-framed audio.
    fn check_wire_audio(&self, session: u64, seq: u32) -> Result<(), PianoError> {
        if self.phase == SessionPhase::Idle {
            return Err(PianoError::Wire("audio before the challenge".into()));
        }
        if session != self.session_id {
            return Err(PianoError::Wire(format!(
                "audio for session {session:#x}, expected {:#x}",
                self.session_id
            )));
        }
        if seq != self.next_audio_seq {
            return Err(PianoError::Wire(format!(
                "audio gap: got seq {seq}, expected {}",
                self.next_audio_seq
            )));
        }
        Ok(())
    }

    /// Feeds one chunk of this device's own recording.
    ///
    /// The first chunk transitions [`SessionPhase::Challenged`] →
    /// [`SessionPhase::Listening`]. Chunks arriving after the session's
    /// scan has concluded — [`SessionPhase::Decided`], or
    /// [`finish_audio`](Self::finish_audio) already ran while the
    /// authenticator still awaits the Step V report — are ignored (audio
    /// in flight when the session concluded).
    ///
    /// # Panics
    ///
    /// Panics in [`SessionPhase::Idle`]: recording before the challenge has
    /// crossed the wire is a protocol bug.
    pub fn push_audio(&mut self, samples: &[f64]) -> Vec<SessionEvent> {
        assert!(
            self.phase != SessionPhase::Idle,
            "push_audio before the challenge was sent/received"
        );
        if self.phase == SessionPhase::Decided || self.scan_done {
            return Vec::new();
        }
        if self.phase == SessionPhase::Challenged {
            self.scanner = self.make_scanner();
            self.phase = SessionPhase::Listening;
        }
        self.samples_consumed += samples.len();
        // Listening implies a scanner; without one (signals never fixed —
        // a protocol-order bug) the audio is ignored rather than panicking
        // a wire-reachable path.
        let Some(scanner) = self.scanner.as_mut() else {
            return Vec::new();
        };
        let stream_events = scanner.push(samples);
        let mut events = Vec::new();
        for ev in stream_events {
            let StreamEvent::EarlyDetection {
                signature,
                detection,
                samples_consumed,
            } = ev;
            let role = if signature == 0 {
                self.early_a = Some(detection);
                SignalRole::Auth
            } else {
                self.early_v = Some(detection);
                SignalRole::Vouch
            };
            events.push(SessionEvent::SignalLocated {
                role,
                detection,
                samples_consumed,
                provisional: true,
            });
        }
        if self.early_decision {
            self.try_conclude(&mut events);
        }
        events
    }

    /// Signals end-of-recording: runs the exact offline-equivalent
    /// conclusion of the scan, emits the final locations, and (voucher)
    /// queues the Step V report or (authenticator) decides if the report
    /// has already arrived. Idempotent once decided.
    ///
    /// # Panics
    ///
    /// Panics in [`SessionPhase::Idle`], like
    /// [`push_audio`](Self::push_audio).
    pub fn finish_audio(&mut self) -> Vec<SessionEvent> {
        assert!(
            self.phase != SessionPhase::Idle,
            "finish_audio before the challenge was sent/received"
        );
        if self.phase == SessionPhase::Decided || self.scan_done {
            return Vec::new();
        }
        if self.phase == SessionPhase::Challenged {
            // No audio at all: an empty scan declares both signals absent.
            self.scanner = self.make_scanner();
            self.phase = SessionPhase::Listening;
        }
        let Some(scanner) = self.scanner.as_mut() else {
            return Vec::new();
        };
        let result = scanner.finish();
        self.final_a = Some(result.detections[0]);
        self.final_v = Some(result.detections[1]);
        self.scan_ffts = result.ffts_used;
        self.scan_done = true;
        let mut events = vec![
            SessionEvent::SignalLocated {
                role: SignalRole::Auth,
                detection: result.detections[0],
                samples_consumed: self.samples_consumed,
                provisional: false,
            },
            SessionEvent::SignalLocated {
                role: SignalRole::Vouch,
                detection: result.detections[1],
                samples_consumed: self.samples_consumed,
                provisional: false,
            },
        ];
        self.try_conclude(&mut events);
        events
    }

    /// Accepts externally computed early locations — the entry point a
    /// multiplexer ([`AuthService`]) uses when it runs the scan on the
    /// sessions' behalf.
    pub fn accept_early(
        &mut self,
        role: SignalRole,
        detection: Detection,
        samples_consumed: usize,
    ) -> Vec<SessionEvent> {
        if self.phase == SessionPhase::Decided {
            return Vec::new();
        }
        if self.phase == SessionPhase::Challenged {
            self.phase = SessionPhase::Listening;
        }
        match role {
            SignalRole::Auth => self.early_a = Some(detection),
            SignalRole::Vouch => self.early_v = Some(detection),
        }
        self.samples_consumed = samples_consumed;
        let mut events = vec![SessionEvent::SignalLocated {
            role,
            detection,
            samples_consumed,
            provisional: true,
        }];
        if self.early_decision {
            self.try_conclude(&mut events);
        }
        events
    }

    /// Accepts an externally computed exact scan result (multiplexer entry
    /// point, the end-of-stream counterpart of
    /// [`accept_early`](Self::accept_early)).
    pub fn accept_scan(
        &mut self,
        sa: Detection,
        sv: Detection,
        ffts_used: usize,
    ) -> Vec<SessionEvent> {
        if self.phase == SessionPhase::Decided || self.scan_done {
            return Vec::new();
        }
        if self.phase == SessionPhase::Challenged {
            self.phase = SessionPhase::Listening;
        }
        self.final_a = Some(sa);
        self.final_v = Some(sv);
        self.scan_ffts = ffts_used;
        self.scan_done = true;
        let mut events = vec![
            SessionEvent::SignalLocated {
                role: SignalRole::Auth,
                detection: sa,
                samples_consumed: self.samples_consumed,
                provisional: false,
            },
            SessionEvent::SignalLocated {
                role: SignalRole::Vouch,
                detection: sv,
                samples_consumed: self.samples_consumed,
                provisional: false,
            },
        ];
        self.try_conclude(&mut events);
        events
    }

    /// Builds the session's two-signature scanner, or `None` when the
    /// signals are not yet known (the challenge never crossed the wire).
    fn make_scanner(&self) -> Option<StreamingDetector> {
        let (Some(sig_a), Some(sig_v)) = (&self.sig_a, &self.sig_v) else {
            return None;
        };
        let mut scanner = StreamingDetector::new(
            Arc::clone(&self.detector),
            vec![sig_a.clone(), sig_v.clone()],
        );
        scanner.set_early_margin(self.early_margin);
        Some(scanner)
    }

    /// The locations to conclude from: exact results when the scan is
    /// done, provisional ones when early decision is enabled.
    fn conclusion_locations(&self) -> Option<(Detection, Detection)> {
        if self.scan_done {
            Some((self.final_a?, self.final_v?))
        } else if self.early_decision {
            Some((self.early_a?, self.early_v?))
        } else {
            None
        }
    }

    /// Concludes the session if every input it needs is present.
    fn try_conclude(&mut self, events: &mut Vec<SessionEvent>) {
        if self.phase == SessionPhase::Decided {
            return;
        }
        if self.is_authenticator {
            let Some(vouch_diff) = self.vouch_diff else {
                return;
            };
            let Some((det_a, det_v)) = self.conclusion_locations() else {
                return;
            };
            let config = self.detector.config();
            let estimate = match (det_a.location(), det_v.location(), vouch_diff) {
                (Some(aa), Some(av), Some(vd)) => {
                    let diffs = LocationDiffs {
                        auth_diff_samples: av as f64 - aa as f64,
                        vouch_diff_samples: vd,
                    };
                    DistanceEstimate::Measured(estimate_distance(
                        &diffs,
                        config.sample_rate,
                        config.sample_rate,
                        config.assumed_speed_of_sound,
                    ))
                }
                _ => DistanceEstimate::SignalAbsent,
            };
            let decision = decision_from_estimate(estimate, self.threshold_m);
            self.estimate = Some(estimate);
            self.decision = Some(decision.clone());
            self.phase = SessionPhase::Decided;
            events.push(SessionEvent::Decided(decision));
        } else {
            let Some((det_a, det_v)) = self.conclusion_locations() else {
                return;
            };
            let vouch_diff_samples = match (det_a.location(), det_v.location()) {
                (Some(va), Some(vv)) => Some(vv as f64 - va as f64),
                _ => None,
            };
            self.outbox.push_back(Message::TimeDiffReport {
                session: self.session_id,
                vouch_diff_samples,
            });
            self.phase = SessionPhase::Decided;
            events.push(SessionEvent::ReportReady);
        }
    }
}

/// Why a transport loop dropped a connection — the structured form of
/// the failure causes a connection supervisor logs and counts.
///
/// Shedding is *not* a drop cause: a shed `Hello` is refused at
/// admission (the client is told to retry), whereas a drop terminates a
/// feed that was already accepted. Shed connections are counted in
/// [`ServiceStats::connections_shed`] instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DropCause {
    /// The byte stream lost framing
    /// ([`crate::wire::FrameReader::poison_cause`]): oversized length
    /// prefix or a payload the decoder rejects.
    Framing,
    /// A well-framed message violated the protocol: wrong message kind
    /// for the phase, session-id mismatch, or a sequence gap.
    Protocol,
    /// The sender ignored `Busy` past the feed's
    /// [`crate::wire::IngestFeed::hard_limit`].
    Overrun,
    /// A per-connection deadline (handshake, idle, or whole-stream
    /// budget) elapsed — the slow-feed watchdog fired.
    Timeout,
    /// The transport died (EOF before `StreamEnd`, reset, broken pipe)
    /// and resume was not enabled, so the feed could not be suspended.
    Disconnect,
    /// A suspended feed's resume window elapsed before the client
    /// reconnected.
    ResumeExpired,
}

impl std::fmt::Display for DropCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DropCause::Framing => "framing",
            DropCause::Protocol => "protocol",
            DropCause::Overrun => "overrun",
            DropCause::Timeout => "timeout",
            DropCause::Disconnect => "disconnect",
            DropCause::ResumeExpired => "resume-expired",
        })
    }
}

/// Dropped-connection counts broken down by [`DropCause`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DropCounts {
    /// Drops for [`DropCause::Framing`].
    pub framing: u64,
    /// Drops for [`DropCause::Protocol`].
    pub protocol: u64,
    /// Drops for [`DropCause::Overrun`].
    pub overrun: u64,
    /// Drops for [`DropCause::Timeout`].
    pub timeout: u64,
    /// Drops for [`DropCause::Disconnect`].
    pub disconnect: u64,
    /// Drops for [`DropCause::ResumeExpired`].
    pub resume_expired: u64,
}

impl DropCounts {
    /// Records one drop.
    pub fn count(&mut self, cause: DropCause) {
        *self.slot(cause) += 1;
    }

    /// The counter for one cause.
    pub fn get(&self, cause: DropCause) -> u64 {
        let mut copy = *self;
        *copy.slot(cause)
    }

    /// Total drops across every cause.
    pub fn total(&self) -> u64 {
        self.framing
            + self.protocol
            + self.overrun
            + self.timeout
            + self.disconnect
            + self.resume_expired
    }

    /// Adds another breakdown into this one.
    pub fn absorb(&mut self, other: &DropCounts) {
        self.framing += other.framing;
        self.protocol += other.protocol;
        self.overrun += other.overrun;
        self.timeout += other.timeout;
        self.disconnect += other.disconnect;
        self.resume_expired += other.resume_expired;
    }

    fn slot(&mut self, cause: DropCause) -> &mut u64 {
        match cause {
            DropCause::Framing => &mut self.framing,
            DropCause::Protocol => &mut self.protocol,
            DropCause::Overrun => &mut self.overrun,
            DropCause::Timeout => &mut self.timeout,
            DropCause::Disconnect => &mut self.disconnect,
            DropCause::ResumeExpired => &mut self.resume_expired,
        }
    }
}

impl std::fmt::Display for DropCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "framing {}, protocol {}, overrun {}, timeout {}, disconnect {}, resume-expired {}",
            self.framing,
            self.protocol,
            self.overrun,
            self.timeout,
            self.disconnect,
            self.resume_expired
        )
    }
}

/// A point-in-time snapshot of ingestion/service counters — what an
/// operator watches to size a fleet deployment.
///
/// The streaming stack is sans-IO, so no single layer sees every number:
/// the transport loop (the `piano-net` crate's `ServerLoop`) counts
/// connections, frames, and wire bytes; [`crate::wire::IngestFeed`]s
/// report backlog peaks and `Busy`/`Credit` traffic; the [`AuthService`]
/// knows how many sessions decided. Layers fill in what they observe and
/// combine snapshots with [`absorb`](Self::absorb); `Display` renders the
/// operator summary the examples print.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Connections accepted by the transport loop.
    pub connections: u64,
    /// Connections dropped for framing/protocol violations (only the
    /// offending connection is dropped; the service keeps running).
    pub connections_dropped: u64,
    /// Wire frames decoded (audio frames only).
    pub frames_decoded: u64,
    /// Audio bytes as they crossed the wire (post-codec, frame prefixes
    /// included).
    pub wire_audio_bytes: u64,
    /// What the same audio would have cost as raw `f64` batches
    /// (pre-codec); `wire_audio_bytes / raw_audio_bytes` is the codec's
    /// wire saving.
    pub raw_audio_bytes: u64,
    /// Largest buffered-but-unscanned backlog any feed reached
    /// ([`crate::wire::IngestFeed::peak_buffered`]), in samples.
    pub peak_feed_backlog: u64,
    /// [`Message::Busy`] replies sent (overruns).
    pub busy_replies: u64,
    /// [`Message::Credit`] replies sent (drained backlogs).
    pub credit_replies: u64,
    /// Sessions that reached a decision.
    pub sessions_decided: u64,
    /// [`connections_dropped`](Self::connections_dropped) broken down by
    /// [`DropCause`]; `drops.total() == connections_dropped` when the
    /// transport loop classifies every drop.
    pub drops: DropCounts,
    /// `Hello`s refused with a retry-after at admission (overload
    /// shedding). Not drops: the client was told to come back.
    pub connections_shed: u64,
    /// Disconnected feeds parked for reconnect-and-resume (each later
    /// resolves into a resume, a report, or a resume-expired drop).
    pub connections_suspended: u64,
    /// Successful reconnect-and-resume reattaches.
    pub resumes: u64,
}

impl ServiceStats {
    /// The codec's wire compression: raw bytes ÷ wire bytes (1.0 when no
    /// audio flowed yet).
    pub fn compression_ratio(&self) -> f64 {
        if self.wire_audio_bytes == 0 {
            1.0
        } else {
            self.raw_audio_bytes as f64 / self.wire_audio_bytes as f64
        }
    }

    /// Folds another snapshot into this one: counters add, the backlog
    /// peak takes the maximum.
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.connections += other.connections;
        self.connections_dropped += other.connections_dropped;
        self.frames_decoded += other.frames_decoded;
        self.wire_audio_bytes += other.wire_audio_bytes;
        self.raw_audio_bytes += other.raw_audio_bytes;
        self.peak_feed_backlog = self.peak_feed_backlog.max(other.peak_feed_backlog);
        self.busy_replies += other.busy_replies;
        self.credit_replies += other.credit_replies;
        self.sessions_decided += other.sessions_decided;
        self.drops.absorb(&other.drops);
        self.connections_shed += other.connections_shed;
        self.connections_suspended += other.connections_suspended;
        self.resumes += other.resumes;
    }
}

impl std::fmt::Display for ServiceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "connections: {} accepted, {} dropped",
            self.connections, self.connections_dropped
        )?;
        writeln!(
            f,
            "audio frames: {} decoded, {:.2} MiB on the wire ({:.2} MiB raw, {:.2}x codec saving)",
            self.frames_decoded,
            self.wire_audio_bytes as f64 / (1024.0 * 1024.0),
            self.raw_audio_bytes as f64 / (1024.0 * 1024.0),
            self.compression_ratio()
        )?;
        writeln!(
            f,
            "backpressure: {} Busy / {} Credit replies, peak feed backlog {} samples",
            self.busy_replies, self.credit_replies, self.peak_feed_backlog
        )?;
        if self.connections_dropped > 0 {
            writeln!(f, "drop causes: {}", self.drops)?;
        }
        if self.connections_shed + self.connections_suspended + self.resumes > 0 {
            writeln!(
                f,
                "resilience: {} shed at admission, {} suspended, {} resumed",
                self.connections_shed, self.connections_suspended, self.resumes
            )?;
        }
        write!(f, "sessions decided: {}", self.sessions_decided)
    }
}

/// Handle to a session opened on an [`AuthService`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

/// A group of streaming sessions sharing one detector and one coarse scan
/// pass over a common audio stream.
#[derive(Debug)]
struct ScanGroup {
    detector: Arc<Detector>,
    members: Vec<SessionId>,
    scanner: Option<StreamingDetector>,
}

/// Multi-tenant authentication service: shared detectors, shared coarse
/// scans, many concurrent sessions.
///
/// Two layers:
///
/// * **Whole-protocol driver** — [`authenticate_pair`](Self::authenticate_pair)
///   runs a complete attempt between two simulated devices (registration
///   gates, ACTION over the Bluetooth link, threshold decision), reusing
///   one cached [`Detector`] per [`ActionConfig`] across every attempt and
///   every pair. `PianoAuthenticator` is now a single-pair shim over this.
/// * **Streaming multiplexer** — [`open_session`](Self::open_session) +
///   [`push_audio`](Self::push_audio) /
///   [`finish_audio`](Self::finish_audio) drive many sans-IO
///   [`AuthSession`]s from one chunked audio feed. Sessions opened under
///   the same configuration join one scan group: their signatures are
///   scanned by a single [`StreamingDetector`], so each audio tick costs
///   one coarse spectrum regardless of tenant count.
#[derive(Debug)]
pub struct AuthService {
    config: PianoConfig,
    detectors: Vec<Arc<Detector>>,
    registry: PairingRegistry,
    link: BluetoothLink,
    /// Keyed by a `BTreeMap` so any iteration over live sessions is in
    /// id order — decision-path code must never see map-randomized order.
    sessions: BTreeMap<SessionId, AuthSession>,
    groups: Vec<ScanGroup>,
    driver: ScanDriver,
    next_id: u64,
    /// Distance between consecutively assigned session ids. `1` for a
    /// standalone service; a [`ShardedAuthService`] gives shard `k` of
    /// `n` the allocation `(start = k, step = n)` so id → shard routing
    /// is pure arithmetic (`id % n`) and ids never collide across shards.
    id_step: u64,
    last_outcome: Option<ActionOutcome>,
}

impl AuthService {
    /// Creates a service with no bonds and one cached detector for the
    /// configured action parameters. Group scans run under the
    /// environment-sized [`ScanDriver::from_env`];
    /// [`set_scan_driver`](Self::set_scan_driver) overrides it.
    ///
    /// # Panics
    ///
    /// Panics if `config.action` fails [`ActionConfig::validate`] (the
    /// detector requires a valid configuration).
    pub fn new(config: PianoConfig) -> Self {
        let detector = Arc::new(Detector::new(&config.action));
        AuthService {
            config,
            detectors: vec![detector],
            registry: PairingRegistry::new(),
            link: BluetoothLink::new(),
            sessions: BTreeMap::new(),
            groups: Vec::new(),
            driver: ScanDriver::from_env(),
            next_id: 0,
            id_step: 1,
            last_outcome: None,
        }
    }

    /// Strided session-id allocation: the next opened session gets
    /// `start`, the one after `start + step`, and so on. Must be called
    /// before any session is opened; `step` must be non-zero.
    ///
    /// This is how a [`ShardedAuthService`] keeps shard-assigned ids
    /// globally unique while making the owning shard recoverable from an
    /// id alone (`id % step`).
    pub fn set_session_id_allocation(&mut self, start: u64, step: u64) {
        debug_assert!(step > 0, "id step must be non-zero");
        debug_assert!(
            self.sessions.is_empty(),
            "id allocation must be fixed before sessions open"
        );
        self.next_id = start;
        self.id_step = step.max(1);
    }

    /// The configuration in force.
    pub fn config(&self) -> &PianoConfig {
        &self.config
    }

    /// The scan driver sharding group coarse scans across workers.
    pub fn scan_driver(&self) -> ScanDriver {
        self.driver
    }

    /// Replaces the scan driver. Results never depend on the pool width
    /// (see [`ScanDriver`]); this is a pure throughput knob.
    pub fn set_scan_driver(&mut self, driver: ScanDriver) {
        self.driver = driver;
    }

    /// Updates the default authentication threshold.
    pub fn set_threshold_m(&mut self, threshold_m: f64) {
        self.config.threshold_m = threshold_m;
    }

    /// The cached detector for the service's default configuration.
    pub fn detector(&self) -> &Arc<Detector> {
        &self.detectors[0]
    }

    /// The cached shared detector for `action`, building (and caching) it
    /// on first use. Sessions and attempts with equal configurations share
    /// one instance — plans and window tables are built once.
    pub fn detector_for(&mut self, action: &ActionConfig) -> Arc<Detector> {
        if let Some(d) = self.detectors.iter().find(|d| d.config() == action) {
            return Arc::clone(d);
        }
        let d = Arc::new(Detector::new(action));
        self.detectors.push(Arc::clone(&d));
        d
    }

    /// Registration phase: pairs two devices and returns the minted key.
    pub fn register(&mut self, a: &Device, b: &Device, rng: &mut ChaCha8Rng) -> LinkKey {
        self.registry.pair(a.id, b.id, rng)
    }

    /// Whether two devices are bonded.
    pub fn is_registered(&self, a: &Device, b: &Device) -> bool {
        self.registry.is_paired(a.id, b.id)
    }

    /// The Bluetooth link (for transfer accounting).
    pub fn link(&self) -> &BluetoothLink {
        &self.link
    }

    /// Diagnostics of the most recent [`authenticate_pair`] run that
    /// reached Step III.
    ///
    /// [`authenticate_pair`]: Self::authenticate_pair
    pub fn last_outcome(&self) -> Option<&ActionOutcome> {
        self.last_outcome.as_ref()
    }

    /// Runs one complete authentication attempt between two simulated
    /// devices: the Bluetooth presence gates, the full ACTION exchange
    /// driven through a pair of [`AuthSession`]s, and the threshold
    /// decision.
    ///
    /// Behavior (gates, RNG order, wire traffic, decisions) is identical
    /// to the classic `PianoAuthenticator::authenticate`, which now
    /// delegates here.
    pub fn authenticate_pair(
        &mut self,
        field: &mut AcousticField,
        auth_device: &Device,
        vouch_device: &Device,
        now_world_s: f64,
        rng: &mut ChaCha8Rng,
    ) -> AuthDecision {
        if !self.registry.is_paired(auth_device.id, vouch_device.id) {
            return AuthDecision::Denied {
                reason: DenialReason::NotPaired,
            };
        }
        if !self
            .link
            .in_range(&auth_device.position, &vouch_device.position)
        {
            return AuthDecision::Denied {
                reason: DenialReason::BluetoothUnreachable,
            };
        }
        let detector = Arc::clone(&self.detectors[0]);
        let outcome = match crate::action::run_session_pair(
            &detector,
            field,
            &mut self.link,
            &self.registry,
            auth_device,
            vouch_device,
            now_world_s,
            rng,
        ) {
            Ok(o) => o,
            Err(PianoError::Bluetooth(_)) => {
                return AuthDecision::Denied {
                    reason: DenialReason::BluetoothUnreachable,
                }
            }
            Err(e) => {
                return AuthDecision::Denied {
                    reason: DenialReason::ProtocolFailure(e.to_string()),
                }
            }
        };
        let estimate = outcome.estimate;
        self.last_outcome = Some(outcome);
        decision_from_estimate(estimate, self.config.threshold_m)
    }

    /// Opens an authenticator-role streaming session under the service's
    /// default configuration and threshold. The session joins the scan
    /// group for that configuration; its Step II challenge is waiting in
    /// [`poll_transmit`](Self::poll_transmit).
    ///
    /// `early_decision` opts the session into provisional mid-stream
    /// conclusions (see [`AuthSession::enable_early_decision`]).
    ///
    /// # Panics
    ///
    /// Panics if the group's audio has already started: a scan group's
    /// signature set is fixed once samples flow. Open sessions first, then
    /// stream.
    pub fn open_session(&mut self, early_decision: bool, rng: &mut ChaCha8Rng) -> SessionId {
        let action = self.config.action.clone();
        let threshold = self.config.threshold_m;
        self.open_session_with(&action, threshold, early_decision, rng)
    }

    /// [`open_session`](Self::open_session) with an explicit configuration
    /// and threshold. Sessions with equal configurations share one
    /// detector and one coarse scan pass.
    pub fn open_session_with(
        &mut self,
        action: &ActionConfig,
        threshold_m: f64,
        early_decision: bool,
        rng: &mut ChaCha8Rng,
    ) -> SessionId {
        let detector = self.detector_for(action);
        let mut session = AuthSession::authenticator_with(Arc::clone(&detector), threshold_m, rng);
        if early_decision {
            session.enable_early_decision();
        }
        let id = SessionId(self.next_id);
        self.next_id = self.next_id.wrapping_add(self.id_step);
        let group = self
            .groups
            .iter_mut()
            .find(|g| Arc::ptr_eq(&g.detector, &detector));
        match group {
            Some(g) => {
                assert!(
                    g.scanner.is_none(),
                    "cannot join a scan group whose audio already started"
                );
                g.members.push(id);
            }
            None => self.groups.push(ScanGroup {
                detector,
                members: vec![id],
                scanner: None,
            }),
        }
        self.sessions.insert(id, session);
        id
    }

    /// Number of open sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of open sessions that have reached a decision.
    pub fn sessions_decided(&self) -> usize {
        self.sessions
            .values()
            .filter(|s| s.decision().is_some())
            .count()
    }

    /// Read access to a session (state, decision, diagnostics).
    pub fn session(&self, id: SessionId) -> Option<&AuthSession> {
        self.sessions.get(&id)
    }

    /// Pops the next outgoing message of one session.
    pub fn poll_transmit(&mut self, id: SessionId) -> Option<Message> {
        self.sessions.get_mut(&id)?.poll_transmit()
    }

    /// Feeds an incoming wire message to one session.
    ///
    /// # Errors
    ///
    /// [`PianoError::Wire`] for unknown sessions, audio chunks (feed the
    /// shared stream via [`push_audio`](Self::push_audio) instead), or
    /// messages the session rejects.
    pub fn handle_message(
        &mut self,
        id: SessionId,
        msg: Message,
    ) -> Result<Vec<SessionEvent>, PianoError> {
        if matches!(
            msg,
            Message::AudioChunk { .. } | Message::AudioBatch { .. } | Message::AudioBatchI16 { .. }
        ) {
            return Err(PianoError::Wire(
                "service sessions share one audio stream: use AuthService::push_audio".into(),
            ));
        }
        let session = self
            .sessions
            .get_mut(&id)
            .ok_or_else(|| PianoError::Wire(format!("unknown session {id:?}")))?;
        session.handle_message(msg)
    }

    /// Feeds one chunk of the host's shared recording to every scan group:
    /// one coarse pass per group per tick, regardless of how many sessions
    /// it carries, with each group's coarse windows sharded across the
    /// service's [`ScanDriver`] pool. Returns per-session events
    /// (provisional detections, early decisions).
    pub fn push_audio(&mut self, samples: &[f64]) -> Vec<(SessionId, SessionEvent)> {
        let mut out = Vec::new();
        let driver = self.driver;
        for group in &mut self.groups {
            if group.scanner.is_none() {
                let mut sigs = Vec::with_capacity(group.members.len() * 2);
                for id in &group.members {
                    // Members are open sessions whose signals were fixed
                    // at open. A group with any incomplete member cannot
                    // scan coherently (signature index i maps to member
                    // i/2), so rather than scan misaligned, skip it.
                    let Some((a, v)) = self
                        .sessions
                        .get(id)
                        .and_then(|s| Some((s.sig_a.clone()?, s.sig_v.clone()?)))
                    else {
                        sigs.clear();
                        break;
                    };
                    sigs.push(a);
                    sigs.push(v);
                }
                if sigs.len() == group.members.len() * 2 {
                    group.scanner = Some(StreamingDetector::new(Arc::clone(&group.detector), sigs));
                }
            }
            let Some(scanner) = group.scanner.as_mut() else {
                continue;
            };
            for ev in driver.drive(scanner, samples) {
                let StreamEvent::EarlyDetection {
                    signature,
                    detection,
                    samples_consumed,
                } = ev;
                let Some(&id) = group.members.get(signature / 2) else {
                    continue;
                };
                let role = if signature % 2 == 0 {
                    SignalRole::Auth
                } else {
                    SignalRole::Vouch
                };
                let Some(session) = self.sessions.get_mut(&id) else {
                    continue;
                };
                for sev in session.accept_early(role, detection, samples_consumed) {
                    out.push((id, sev));
                }
            }
        }
        out
    }

    /// Ends the shared recording: every group's scan concludes with the
    /// exact offline-equivalent result and each member session receives
    /// its detections. Groups reset so a later epoch can stream again.
    pub fn finish_audio(&mut self) -> Vec<(SessionId, SessionEvent)> {
        let mut out = Vec::new();
        for group in &mut self.groups {
            let Some(scanner) = group.scanner.as_mut() else {
                continue;
            };
            let result = scanner.finish();
            for (j, id) in group.members.iter().enumerate() {
                let Some(session) = self.sessions.get_mut(id) else {
                    continue;
                };
                let (Some(&det_a), Some(&det_v)) = (
                    result.detections.get(2 * j),
                    result.detections.get(2 * j + 1),
                ) else {
                    continue;
                };
                for sev in session.accept_scan(det_a, det_v, result.ffts_used) {
                    out.push((*id, sev));
                }
            }
            group.scanner = None;
            group.members.clear();
        }
        self.groups.retain(|g| !g.members.is_empty());
        out
    }

    /// The decision of a session, if it has one.
    pub fn decision(&self, id: SessionId) -> Option<&AuthDecision> {
        self.sessions.get(&id)?.decision()
    }

    /// Closes a session, returning it (for inspection) if it existed.
    pub fn close_session(&mut self, id: SessionId) -> Option<AuthSession> {
        for group in &mut self.groups {
            if let Some(pos) = group.members.iter().position(|m| *m == id) {
                assert!(
                    group.scanner.is_none(),
                    "cannot close a session while its scan group is streaming"
                );
                group.members.remove(pos);
            }
        }
        self.groups.retain(|g| !g.members.is_empty());
        self.sessions.remove(&id)
    }
}

// ---------------------------------------------------------------------------
// Sharded service
// ---------------------------------------------------------------------------

/// Lock rank of the route table: acquired (briefly) before a shard lock
/// when an open must pick a shard, never after one.
const ROUTE_RANK: u32 = 18;

/// Lock rank shared by every per-shard service lock. Equal ranks mean
/// the debug-build [`OrderedMutex`] checker panics if two shard locks
/// are ever nested — the sharded service never needs that, and banning
/// it keeps shard ticks free to run concurrently without deadlock risk.
const SHARD_RANK: u32 = 20;

/// An [`AuthService`] split into independently locked shards, one per
/// scan group (really: per distinct [`ActionConfig`], assigned round-robin
/// once the configs outnumber the shards), so audio ticks on different
/// configurations never contend on one service lock.
///
/// Session ids stay globally unique and self-routing: shard `k` of `n`
/// allocates ids `k, k+n, k+2n, …` (see
/// [`AuthService::set_session_id_allocation`]), so every per-session call
/// finds its shard with one modulo — no shared lookup table on the hot
/// path. Opening draws from the caller's single RNG in call order, so a
/// seeded run remains reproducible regardless of the shard count, and a
/// one-shard instance behaves exactly like a plain `AuthService` behind
/// a lock.
///
/// Scan groups never span shards (a group is keyed by detector identity
/// *within* one service), so per-shard scans are independent and their
/// results are bit-identical to an unsharded run over the same sessions.
#[derive(Debug)]
pub struct ShardedAuthService {
    shards: Vec<OrderedMutex<AuthService>>,
    /// Distinct configurations seen so far → owning shard, in first-seen
    /// order. Sessions with equal configs must land on the same shard
    /// (they share a scan group); the default config pre-routes to
    /// shard 0.
    routes: OrderedMutex<Vec<(ActionConfig, usize)>>,
}

impl ShardedAuthService {
    /// A service over `shard_count` shards (clamped to at least 1), each
    /// an [`AuthService::new`] of `config` with a strided id allocation.
    ///
    /// # Panics
    ///
    /// Panics if `config.action` fails validation, as [`AuthService::new`]
    /// does.
    pub fn new(config: PianoConfig, shard_count: usize) -> Self {
        let n = shard_count.max(1);
        let mut shards = Vec::with_capacity(n);
        for k in 0..n {
            let mut svc = AuthService::new(config.clone());
            svc.set_session_id_allocation(k as u64, n as u64);
            shards.push(OrderedMutex::new(SHARD_RANK, "service.shard", svc));
        }
        let default_route = vec![(config.action.clone(), 0)];
        ShardedAuthService {
            shards,
            routes: OrderedMutex::new(ROUTE_RANK, "service.routes", default_route),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `id`, by the strided-id arithmetic.
    pub fn shard_of(&self, id: SessionId) -> usize {
        (id.0 % self.shards.len().max(1) as u64) as usize
    }

    /// Runs `f` against shard `idx`'s service; `None` when out of range.
    pub fn with_shard<R>(&self, idx: usize, f: impl FnOnce(&mut AuthService) -> R) -> Option<R> {
        self.shards.get(idx).map(|s| f(&mut s.lock()))
    }

    /// Runs `f` against the default configuration's shard (shard 0).
    pub fn with_default<R>(&self, f: impl FnOnce(&mut AuthService) -> R) -> Option<R> {
        self.with_shard(0, f)
    }

    /// Runs `f` against the shard owning `id`.
    pub fn with_session_shard<R>(
        &self,
        id: SessionId,
        f: impl FnOnce(&mut AuthService) -> R,
    ) -> Option<R> {
        self.with_shard(self.shard_of(id), f)
    }

    /// Read access to one session, wherever it lives.
    pub fn with_session<R>(&self, id: SessionId, f: impl FnOnce(&AuthSession) -> R) -> Option<R> {
        self.shards
            .get(self.shard_of(id))
            .and_then(|s| s.lock().session(id).map(f))
    }

    /// The shard a session opened under `action` must join: the existing
    /// route for an equal config, else the next shard round-robin.
    fn route_for(&self, action: &ActionConfig) -> usize {
        let mut routes = self.routes.lock();
        if let Some(&(_, shard)) = routes.iter().find(|(a, _)| a == action) {
            return shard;
        }
        let shard = routes.len() % self.shards.len().max(1);
        routes.push((action.clone(), shard));
        shard
    }

    /// Opens a session under the default configuration on shard 0. See
    /// [`AuthService::open_session`].
    pub fn open_session(&self, early_decision: bool, rng: &mut ChaCha8Rng) -> SessionId {
        self.shards
            .first()
            .map(|s| s.lock().open_session(early_decision, rng))
            .unwrap_or(SessionId(0))
    }

    /// Opens a session with an explicit configuration on its routed
    /// shard. See [`AuthService::open_session_with`].
    pub fn open_session_with(
        &self,
        action: &ActionConfig,
        threshold_m: f64,
        early_decision: bool,
        rng: &mut ChaCha8Rng,
    ) -> SessionId {
        let shard = self.route_for(action);
        self.shards
            .get(shard)
            .or_else(|| self.shards.first())
            .map(|s| {
                s.lock()
                    .open_session_with(action, threshold_m, early_decision, rng)
            })
            .unwrap_or(SessionId(0))
    }

    /// Routes a wire message to the owning shard's session. See
    /// [`AuthService::handle_message`].
    ///
    /// # Errors
    ///
    /// As [`AuthService::handle_message`]; also [`PianoError::Wire`] when
    /// `id` routes to no shard.
    pub fn handle_message(
        &self,
        id: SessionId,
        msg: Message,
    ) -> Result<Vec<SessionEvent>, PianoError> {
        match self.with_session_shard(id, |svc| svc.handle_message(id, msg)) {
            Some(r) => r,
            None => Err(PianoError::Wire(format!("unknown session {id:?}"))),
        }
    }

    /// Pops the next outgoing message of one session.
    pub fn poll_transmit(&self, id: SessionId) -> Option<Message> {
        self.with_session_shard(id, |svc| svc.poll_transmit(id))?
    }

    /// The decision of a session, if it has one (cloned out of the lock).
    pub fn decision(&self, id: SessionId) -> Option<AuthDecision> {
        self.with_session_shard(id, |svc| svc.decision(id).cloned())?
    }

    /// Closes a session on its owning shard.
    pub fn close_session(&self, id: SessionId) -> Option<AuthSession> {
        self.with_session_shard(id, |svc| svc.close_session(id))?
    }

    /// Open sessions across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().session_count()).sum()
    }

    /// Decided sessions across all shards.
    pub fn sessions_decided(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().sessions_decided())
            .sum()
    }

    /// Feeds one shared-audio chunk to every shard, in shard order: one
    /// coarse pass per scan group per tick, exactly as the unsharded
    /// service, with each shard's lock held only for its own groups.
    pub fn push_audio(&self, samples: &[f64]) -> Vec<(SessionId, SessionEvent)> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().push_audio(samples));
        }
        out
    }

    /// Concludes the shared recording on every shard. See
    /// [`AuthService::finish_audio`].
    pub fn finish_audio(&self) -> Vec<(SessionId, SessionEvent)> {
        let mut out = Vec::new();
        for s in &self.shards {
            out.extend(s.lock().finish_audio());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn config() -> ActionConfig {
        ActionConfig::default()
    }

    /// Adds a scaled copy of `wave` at `offset` into `rec`.
    fn embed_into(rec: &mut [f64], wave: &[f64], offset: usize, gain: f64) {
        for (i, &v) in wave.iter().enumerate() {
            rec[offset + i] += v * gain;
        }
    }

    /// Feeds `rec` to a fresh streaming scan in chunks of `chunk` samples
    /// and returns (finish result, events seen).
    fn stream_scan(
        detector: &Arc<Detector>,
        sigs: &[&SignalSignature],
        rec: &[f64],
        chunk: usize,
    ) -> (ScanResult, Vec<StreamEvent>) {
        let mut s = StreamingDetector::new(
            Arc::clone(detector),
            sigs.iter().map(|&s| s.clone()).collect(),
        );
        let mut events = Vec::new();
        for c in rec.chunks(chunk.max(1)) {
            events.extend(s.push(c));
        }
        (s.finish(), events)
    }

    #[test]
    fn streaming_finish_is_bit_identical_to_offline_for_many_chunkings() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let sa = ReferenceSignal::from_indices(&cfg, vec![2, 9, 17], &mut rng(1));
        let sv = ReferenceSignal::from_indices(&cfg, vec![5, 13, 26], &mut rng(2));
        let sig_a = SignalSignature::of(&sa, &cfg);
        let sig_v = SignalSignature::of(&sv, &cfg);
        let mut rec = vec![0.0; 33_000];
        embed_into(&mut rec, &sa.waveform(), 7_321, 0.35);
        embed_into(&mut rec, &sv.waveform(), 21_007, 0.3);
        let offline = detector.detect_many(&rec, &[&sig_a, &sig_v]);
        assert!(offline.detections[0].is_found());
        assert!(offline.detections[1].is_found());
        for chunk in [37, 512, 1000, 4096, 5000, rec.len()] {
            let (streamed, _) = stream_scan(&detector, &[&sig_a, &sig_v], &rec, chunk);
            assert_eq!(streamed, offline, "chunk size {chunk}");
        }
    }

    #[test]
    fn non_finite_samples_are_contained_at_the_ingest_boundary() {
        // A NaN/∞ chunk early in the stream must not poison later
        // windows: the signal arrives long after the bad chunk (and
        // after ring compaction has run), and it must still be found,
        // with exactly the result the offline scan of the sanitized
        // stream produces.
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let signal = ReferenceSignal::from_indices(&cfg, vec![3, 12, 21], &mut rng(7));
        let sig = SignalSignature::of(&signal, &cfg);
        let mut rec = vec![0.0; 60_000];
        embed_into(&mut rec, &signal.waveform(), 41_000, 0.4);
        let mut poisoned = rec.clone();
        poisoned[100] = f64::NAN;
        poisoned[2_000] = f64::INFINITY;
        poisoned[17_999] = f64::NEG_INFINITY;

        let offline_clean = detector.detect_many(&rec, &[&sig]);
        assert!(offline_clean.detections[0].is_found());
        for chunk in [333, 1024, 16_384] {
            let (streamed, _) = stream_scan(&detector, &[&sig], &poisoned, chunk);
            assert_eq!(
                streamed, offline_clean,
                "poisoned stream (chunk {chunk}) must scan like the clean one"
            );
        }
    }

    #[test]
    fn streaming_matches_offline_on_absent_and_short_recordings() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let sig = SignalSignature::of(
            &ReferenceSignal::from_indices(&cfg, vec![4, 11], &mut rng(3)),
            &cfg,
        );
        // Absent signal over a long stream.
        let quiet = vec![0.0; 20_000];
        let offline = detector.detect_many(&quiet, &[&sig]);
        let (streamed, events) = stream_scan(&detector, &[&sig], &quiet, 1234);
        assert_eq!(streamed, offline);
        assert!(events.is_empty(), "no early events on silence");
        // Shorter than one window.
        let tiny = vec![0.0; 1_000];
        let offline = detector.detect_many(&tiny, &[&sig]);
        let (streamed, _) = stream_scan(&detector, &[&sig], &tiny, 100);
        assert_eq!(streamed, offline);
        assert_eq!(streamed.ffts_used, 0);
        // Exactly one window.
        let exact = vec![0.0; cfg.signal_len];
        let offline = detector.detect_many(&exact, &[&sig]);
        let (streamed, _) = stream_scan(&detector, &[&sig], &exact, 717);
        assert_eq!(streamed, offline);
    }

    #[test]
    fn early_detection_fires_before_end_of_stream_and_matches_final() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let sig_ref = ReferenceSignal::from_indices(&cfg, vec![3, 12, 24], &mut rng(4));
        let sig = SignalSignature::of(&sig_ref, &cfg);
        let total = 88_200; // the paper's full 2 s recording
        let mut rec = vec![0.0; total];
        embed_into(&mut rec, &sig_ref.waveform(), 9_000, 0.4);
        let mut s = StreamingDetector::new(Arc::clone(&detector), vec![sig.clone()]);
        let mut early_at = None;
        for c in rec.chunks(1000) {
            for ev in s.push(c) {
                let StreamEvent::EarlyDetection {
                    samples_consumed, ..
                } = ev;
                early_at.get_or_insert(samples_consumed);
            }
        }
        let early_at = early_at.expect("early detection must fire");
        assert!(
            early_at < total / 2,
            "decision at {early_at} of {total} samples — not early"
        );
        let early = s.early_detection(0).unwrap().detection;
        let final_result = s.finish();
        assert_eq!(final_result.detections[0], early);
        assert!(s.early_fine_evals() > 0);
    }

    #[test]
    fn ring_buffer_stays_bounded_on_long_streams() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let sig = SignalSignature::of(
            &ReferenceSignal::from_indices(&cfg, vec![1, 22], &mut rng(5)),
            &cfg,
        );
        let mut s = StreamingDetector::new(Arc::clone(&detector), vec![sig]);
        let chunk = vec![0.0; 2048];
        for _ in 0..200 {
            let _ = s.push(&chunk);
        }
        assert_eq!(s.samples_consumed(), 200 * 2048);
        let bound = cfg.signal_len + cfg.fine_radius + COMPACT_SLACK + RING_ALIGN + 2048;
        assert!(
            s.ring.buf.len() <= bound,
            "ring holds {} samples, bound {bound}",
            s.ring.buf.len()
        );
    }

    #[test]
    fn capture_start_clamps_to_the_ring_base() {
        // A capture whose requested left edge (`offset − fine_radius`)
        // falls behind the compaction floor must clamp to the ring base
        // instead of sliding the window (`start − base` underflowed and
        // panicked before the clamp existed).
        let mut ring = SampleRing::default();
        let rec: Vec<f64> = (0..40_000).map(|i| i as f64).collect();
        ring.append(&rec);
        ring.compact_to(20_000);
        assert_eq!(ring.base, 20_000 & !(RING_ALIGN - 1));
        assert!(ring.window(ring.base - 1, ring.base + 10).is_none());

        let mut out = Vec::new();
        let start = ring.capture_into(5_000, ring.base + 3, &mut out);
        assert_eq!(start, ring.base, "start clamps up to the ring base");
        assert_eq!(out, vec![ring.base as f64, ring.base as f64 + 1.0, ring.base as f64 + 2.0]);

        // The right edge clamps down to the stream frontier.
        out.clear();
        let start = ring.capture_into(39_998, 50_000, &mut out);
        assert_eq!(start, 39_998);
        assert_eq!(out, vec![39_998.0, 39_999.0]);

        // A fully compacted-away range copies nothing.
        out.clear();
        assert_eq!(ring.capture_into(0, 8, &mut out), ring.base);
        assert!(out.is_empty());
    }

    #[test]
    fn compaction_with_large_fine_radius_matches_offline() {
        // A fine radius comparable to the signal length stresses the
        // capture left-edge clamp: maxima found right after a compaction
        // ask for neighborhoods reaching behind the ring base. The
        // streamed result must still match the offline scan bit for bit.
        let mut cfg = config();
        cfg.fine_radius = cfg.signal_len + 1_500;
        let detector = Arc::new(Detector::new(&cfg));
        let signal = ReferenceSignal::from_indices(&cfg, vec![4, 11, 23], &mut rng(11));
        let sig = SignalSignature::of(&signal, &cfg);
        // Long enough that compaction runs several times before the
        // signal arrives, and again after.
        let mut rec = vec![0.0; 150_000];
        embed_into(&mut rec, &signal.waveform(), 120_000, 0.4);
        let offline = detector.detect_many(&rec, &[&sig]);
        assert!(offline.detections[0].is_found());
        for chunk in [701, 2048, 16_384] {
            let (streamed, _) = stream_scan(&detector, &[&sig], &rec, chunk);
            assert_eq!(streamed, offline, "chunk size {chunk}");
        }
    }

    /// Builds a decided authenticator/voucher pair from hand-placed
    /// recordings, exchanging messages sans-IO. Returns the
    /// authenticator's decision and both sessions.
    fn run_pure_sessions(
        l_aa: usize,
        l_av: usize,
        l_va: usize,
        l_vv: usize,
        threshold_m: f64,
    ) -> (AuthDecision, AuthSession, AuthSession) {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let mut r = rng(42);
        let mut session_a =
            AuthSession::authenticator_with(Arc::clone(&detector), threshold_m, &mut r);
        assert_eq!(session_a.phase(), SessionPhase::Idle);
        let challenge = session_a.poll_transmit().expect("challenge queued");
        assert_eq!(session_a.phase(), SessionPhase::Challenged);

        let mut session_v = AuthSession::voucher_with(Arc::clone(&detector));
        session_v.handle_message(challenge).unwrap();
        assert_eq!(session_v.phase(), SessionPhase::Challenged);
        assert_eq!(session_v.session_id(), session_a.session_id());

        let wave_a = session_a.playback_waveform().unwrap();
        let wave_v = session_v.playback_waveform().unwrap();
        let mut rec_a = vec![0.0; 30_000];
        embed_into(&mut rec_a, &wave_a, l_aa, 0.5);
        embed_into(&mut rec_a, &wave_v, l_av, 0.3);
        let mut rec_v = vec![0.0; 30_000];
        embed_into(&mut rec_v, &wave_a, l_va, 0.3);
        embed_into(&mut rec_v, &wave_v, l_vv, 0.5);

        for c in rec_a.chunks(777) {
            let _ = session_a.push_audio(c);
        }
        let _ = session_a.finish_audio();
        for c in rec_v.chunks(777) {
            let _ = session_v.push_audio(c);
        }
        let events = session_v.finish_audio();
        assert!(events.contains(&SessionEvent::ReportReady));
        assert_eq!(session_v.phase(), SessionPhase::Decided);

        let report = session_v.poll_transmit().expect("report queued");
        let events = session_a.handle_message(report).unwrap();
        assert!(matches!(events.last(), Some(SessionEvent::Decided(_))));
        assert_eq!(session_a.phase(), SessionPhase::Decided);
        let decision = session_a.decision().unwrap().clone();
        (decision, session_a, session_v)
    }

    #[test]
    fn sans_io_session_pair_measures_the_planted_distance() {
        // auth_diff = 10000, vouch_diff = 9871 ⇒ d ≈ ½·343·129/44100 ≈ 0.50 m.
        let (decision, session_a, session_v) = run_pure_sessions(5_000, 15_000, 5_000, 14_871, 1.0);
        match decision {
            AuthDecision::Granted { distance_m } => {
                assert!((distance_m - 0.502).abs() < 0.1, "distance {distance_m}")
            }
            other => panic!("expected grant, got {other:?}"),
        }
        assert!(session_a.scan_ffts() > 0);
        assert!(session_v.scan_ffts() > 0);
        assert!(matches!(
            session_a.estimate(),
            Some(DistanceEstimate::Measured(_))
        ));
    }

    #[test]
    fn sans_io_session_pair_denies_beyond_threshold() {
        // auth_diff − vouch_diff = 2000 samples ⇒ d ≈ 7.8 m ≫ 1 m.
        let (decision, _, _) = run_pure_sessions(5_000, 15_000, 7_000, 15_000, 1.0);
        assert!(matches!(
            decision,
            AuthDecision::Denied {
                reason: DenialReason::TooFar { .. }
            }
        ));
    }

    #[test]
    fn missing_signal_yields_signal_absent() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let mut r = rng(43);
        let mut session_a = AuthSession::authenticator_with(Arc::clone(&detector), 1.0, &mut r);
        let challenge = session_a.poll_transmit().unwrap();
        let mut session_v = AuthSession::voucher_with(Arc::clone(&detector));
        session_v.handle_message(challenge).unwrap();
        // The voucher hears nothing at all.
        let _ = session_v.push_audio(&vec![0.0; 20_000]);
        let _ = session_v.finish_audio();
        let report = session_v.poll_transmit().unwrap();
        assert!(matches!(
            report,
            Message::TimeDiffReport {
                vouch_diff_samples: None,
                ..
            }
        ));
        // A's own recording is also silent.
        let _ = session_a.push_audio(&vec![0.0; 20_000]);
        let _ = session_a.finish_audio();
        let _ = session_a.handle_message(report).unwrap();
        assert_eq!(session_a.estimate(), Some(DistanceEstimate::SignalAbsent));
        assert_eq!(
            session_a.decision(),
            Some(&AuthDecision::Denied {
                reason: DenialReason::SignalAbsent
            })
        );
    }

    #[test]
    fn early_decision_concludes_before_the_recording_ends() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let mut r = rng(44);
        let mut session_a = AuthSession::authenticator_with(Arc::clone(&detector), 2.0, &mut r);
        session_a.enable_early_decision();
        let challenge = session_a.poll_transmit().unwrap();
        let mut session_v = AuthSession::voucher_with(Arc::clone(&detector));
        session_v.enable_early_decision();
        session_v.handle_message(challenge).unwrap();

        let wave_a = session_a.playback_waveform().unwrap();
        let wave_v = session_v.playback_waveform().unwrap();
        let total = 88_200;
        let mut rec_a = vec![0.0; total];
        embed_into(&mut rec_a, &wave_a, 5_000, 0.5);
        embed_into(&mut rec_a, &wave_v, 12_000, 0.3);
        let mut rec_v = vec![0.0; total];
        embed_into(&mut rec_v, &wave_a, 5_050, 0.3);
        embed_into(&mut rec_v, &wave_v, 11_950, 0.5);

        // The voucher streams its recording and reports early…
        let mut report = None;
        let mut v_consumed = None;
        for c in rec_v.chunks(1000) {
            let events = session_v.push_audio(c);
            if events.contains(&SessionEvent::ReportReady) {
                report = session_v.poll_transmit();
                v_consumed = Some(session_v.samples_consumed());
                break;
            }
        }
        let report = report.expect("voucher reports before end of stream");
        assert!(v_consumed.unwrap() < total);

        // …A receives it mid-recording and decides without finish_audio.
        let _ = session_a.handle_message(report).unwrap();
        let mut decided_at = None;
        for c in rec_a.chunks(1000) {
            let events = session_a.push_audio(c);
            if events.iter().any(|e| matches!(e, SessionEvent::Decided(_))) {
                decided_at = Some(session_a.samples_consumed());
                break;
            }
        }
        let decided_at = decided_at.expect("early decision fires");
        assert!(
            decided_at < total,
            "decided at {decided_at} of {total} — not before the buffer filled"
        );
        assert!(session_a.decision().unwrap().is_granted());
    }

    #[test]
    fn audio_chunk_messages_drive_a_session() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let mut r = rng(45);
        let mut session_a = AuthSession::authenticator_with(Arc::clone(&detector), 1.0, &mut r);
        let challenge = session_a.poll_transmit().unwrap();
        let mut session_v = AuthSession::voucher_with(Arc::clone(&detector));
        session_v.handle_message(challenge).unwrap();
        let session = session_v.session_id();

        let wave_v = session_v.playback_waveform().unwrap();
        let mut rec = vec![0.0; 12_000];
        embed_into(&mut rec, &wave_v, 4_000, 0.5);
        for (seq, c) in rec.chunks(4096).enumerate() {
            session_v
                .handle_message(Message::AudioChunk {
                    session,
                    seq: seq as u32,
                    samples: c.to_vec().into(),
                })
                .unwrap();
        }
        // A sequence gap is rejected.
        let err = session_v
            .handle_message(Message::AudioChunk {
                session,
                seq: 99,
                samples: vec![0.0; 10].into(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("gap"), "{err}");
        // Wrong session id is rejected.
        let err = session_v
            .handle_message(Message::AudioChunk {
                session: session ^ 1,
                seq: 3,
                samples: vec![0.0; 10].into(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("session"), "{err}");
        let _ = session_v.finish_audio();
        assert_eq!(session_v.phase(), SessionPhase::Decided);
    }

    #[test]
    fn state_machine_rejects_misrouted_messages() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let mut r = rng(46);
        let mut session_a = AuthSession::authenticator_with(Arc::clone(&detector), 1.0, &mut r);
        // A challenge sent *to* an authenticator is a protocol violation.
        let mut other = rng(47);
        let mut peer = AuthSession::authenticator_with(Arc::clone(&detector), 1.0, &mut other);
        let challenge = peer.poll_transmit().unwrap();
        assert!(session_a.handle_message(challenge).is_err());
        // A report with the wrong session id is rejected.
        let err = session_a
            .handle_message(Message::TimeDiffReport {
                session: session_a.session_id() ^ 0xFF,
                vouch_diff_samples: Some(1.0),
            })
            .unwrap_err();
        assert!(err.to_string().contains("session"), "{err}");
        // A voucher must not accept a report at all.
        let mut session_v = AuthSession::voucher_with(Arc::clone(&detector));
        assert!(session_v
            .handle_message(Message::TimeDiffReport {
                session: 1,
                vouch_diff_samples: None,
            })
            .is_err());
    }

    #[test]
    fn audio_in_flight_after_finish_is_ignored() {
        // The authenticator finishes its recording while still waiting for
        // the voucher's report: trailing audio (a draining mic callback or
        // a wire-framed chunk) must be ignored, not panic the session.
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let mut r = rng(48);
        let mut session_a = AuthSession::authenticator_with(Arc::clone(&detector), 1.0, &mut r);
        let challenge = session_a.poll_transmit().unwrap();
        let session = session_a.session_id();
        let _ = session_a.push_audio(&vec![0.0; 8_192]);
        let _ = session_a.finish_audio();
        assert_eq!(
            session_a.phase(),
            SessionPhase::Listening,
            "awaiting report"
        );
        // Direct trailing chunk.
        assert!(session_a.push_audio(&[0.0; 1_024]).is_empty());
        // Wire-framed trailing chunk (seq 0: none were wire-fed before).
        assert!(session_a
            .handle_message(Message::AudioChunk {
                session,
                seq: 0,
                samples: vec![0.0; 256].into(),
            })
            .unwrap()
            .is_empty());
        // The report still concludes the session normally.
        let _ = session_a
            .handle_message(Message::TimeDiffReport {
                session,
                vouch_diff_samples: None,
            })
            .unwrap();
        assert_eq!(session_a.phase(), SessionPhase::Decided);
        let _ = challenge;
    }

    #[test]
    #[should_panic(expected = "before the challenge")]
    fn push_audio_in_idle_is_a_protocol_bug() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let mut session_v = AuthSession::voucher_with(detector);
        let _ = session_v.push_audio(&[0.0; 10]);
    }

    #[test]
    fn scan_driver_is_bit_identical_to_serial_push_for_all_worker_counts() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let sa = ReferenceSignal::from_indices(&cfg, vec![2, 9, 17], &mut rng(60));
        let sv = ReferenceSignal::from_indices(&cfg, vec![5, 13, 26], &mut rng(61));
        let sig_a = SignalSignature::of(&sa, &cfg);
        let sig_v = SignalSignature::of(&sv, &cfg);
        let mut rec = vec![0.0; 40_000];
        embed_into(&mut rec, &sa.waveform(), 6_500, 0.35);
        embed_into(&mut rec, &sv.waveform(), 23_117, 0.3);

        // 12 288-sample ticks cover ≥ 8 coarse offsets, so the sharded
        // path (not the small-batch inline fallback) is what's compared.
        let (serial_result, serial_events) =
            stream_scan(&detector, &[&sig_a, &sig_v], &rec, 12_288);
        for workers in [1, 2, 4, 7, 16] {
            let driver = ScanDriver::new(workers);
            let mut s =
                StreamingDetector::new(Arc::clone(&detector), vec![sig_a.clone(), sig_v.clone()]);
            let mut events = Vec::new();
            for c in rec.chunks(12_288) {
                events.extend(driver.drive(&mut s, c));
            }
            assert_eq!(events, serial_events, "workers = {workers}");
            assert_eq!(
                s.early_detection(0),
                events
                    .iter()
                    .find_map(|e| {
                        let StreamEvent::EarlyDetection {
                            signature: 0,
                            detection,
                            samples_consumed,
                        } = e
                        else {
                            return None;
                        };
                        Some(EarlyDetection {
                            detection: *detection,
                            samples_consumed: *samples_consumed,
                        })
                    })
                    .as_ref(),
            );
            assert_eq!(s.finish(), serial_result, "workers = {workers}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn scan_driver_rejects_zero_workers() {
        let _ = ScanDriver::new(0);
    }

    #[test]
    fn service_scan_driver_does_not_change_results() {
        // The same two-session scenario under a serial and a 4-worker
        // driver must produce identical events and decisions.
        let run = |driver: ScanDriver| {
            let cfg = PianoConfig::with_threshold(2.0);
            let mut service = AuthService::new(cfg);
            service.set_scan_driver(driver);
            assert_eq!(service.scan_driver(), driver);
            let mut r = rng(70);
            let id1 = service.open_session(false, &mut r);
            let id2 = service.open_session(false, &mut r);
            let w1 = service.session(id1).unwrap().playback_waveform().unwrap();
            let w2 = service.session(id2).unwrap().playback_waveform().unwrap();
            let mut hub = vec![0.0; 30_000];
            embed_into(&mut hub, &w1, 4_000, 0.5);
            embed_into(&mut hub, &w2, 14_000, 0.5);
            let mut events = Vec::new();
            // Big ticks so the 4-worker run actually shards its windows.
            for c in hub.chunks(13_000) {
                events.extend(service.push_audio(c));
            }
            events.extend(service.finish_audio());
            let ffts = [id1, id2].map(|id| service.session(id).unwrap().scan_ffts());
            (events, ffts)
        };
        assert_eq!(run(ScanDriver::serial()), run(ScanDriver::new(4)));
    }

    #[test]
    fn audio_batch_messages_drive_a_session() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let mut r = rng(71);
        let mut session_a = AuthSession::authenticator_with(Arc::clone(&detector), 1.0, &mut r);
        let challenge = session_a.poll_transmit().unwrap();
        let mut session_v = AuthSession::voucher_with(Arc::clone(&detector));
        session_v.handle_message(challenge).unwrap();
        let session = session_v.session_id();

        let wave_v = session_v.playback_waveform().unwrap();
        let mut rec = vec![0.0; 16_384];
        embed_into(&mut rec, &wave_v, 5_000, 0.5);
        // Deliver the recording as batches of four 1024-sample chunks.
        let chunks: Vec<Vec<f64>> = rec.chunks(1024).map(<[f64]>::to_vec).collect();
        for (i, batch) in chunks.chunks(4).enumerate() {
            session_v
                .handle_message(Message::AudioBatch {
                    session,
                    start_seq: (i * 4) as u32,
                    chunks: batch.to_vec().into(),
                })
                .unwrap();
        }
        assert_eq!(session_v.samples_consumed(), rec.len());
        // A batch out of sequence is rejected whole.
        let err = session_v
            .handle_message(Message::AudioBatch {
                session,
                start_seq: 3,
                chunks: vec![vec![0.0; 8]].into(),
            })
            .unwrap_err();
        assert!(err.to_string().contains("gap"), "{err}");
        // Flow-control replies never address a session.
        assert!(session_v
            .handle_message(Message::Busy {
                session,
                buffered_samples: 1,
                high_water: 1,
            })
            .is_err());
        assert!(session_v
            .handle_message(Message::Credit {
                session,
                samples: 1,
            })
            .is_err());
        let _ = session_v.finish_audio();
        assert_eq!(session_v.phase(), SessionPhase::Decided);
        let report = session_v.poll_transmit().unwrap();
        assert!(matches!(report, Message::TimeDiffReport { .. }));
    }

    #[test]
    fn early_margin_delays_or_suppresses_provisional_detections() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let sig_ref = ReferenceSignal::from_indices(&cfg, vec![3, 12, 24], &mut rng(72));
        let sig = SignalSignature::of(&sig_ref, &cfg);
        let mut rec = vec![0.0; 50_000];
        embed_into(&mut rec, &sig_ref.waveform(), 9_000, 0.12); // borderline gain
        let early_at = |margin: f64| {
            let mut s = StreamingDetector::new(Arc::clone(&detector), vec![sig.clone()]);
            s.set_early_margin(margin);
            assert_eq!(s.early_margin(), margin);
            let mut at = None;
            for c in rec.chunks(1000) {
                for ev in s.push(c) {
                    let StreamEvent::EarlyDetection {
                        samples_consumed, ..
                    } = ev;
                    at.get_or_insert(samples_consumed);
                }
            }
            (at, s.finish())
        };
        let (at_default, final_default) = early_at(1.0);
        let (at_strict, final_strict) = early_at(1e6);
        assert_eq!(
            final_default, final_strict,
            "finish() never depends on the margin"
        );
        assert!(at_default.is_some(), "default margin fires on this signal");
        match at_strict {
            None => {} // suppressed entirely: acceptable for a huge margin
            Some(at) => assert!(
                at >= at_default.unwrap(),
                "strict margin cannot fire earlier"
            ),
        }
    }

    #[test]
    #[should_panic(expected = "finite multiplier")]
    fn early_margin_below_one_is_rejected() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let sig = SignalSignature::of(
            &ReferenceSignal::from_indices(&cfg, vec![1], &mut rng(73)),
            &cfg,
        );
        let mut s = StreamingDetector::new(detector, vec![sig]);
        s.set_early_margin(0.5);
    }

    #[test]
    fn session_confidence_knob_is_exposed_and_applied() {
        let cfg = config();
        let detector = Arc::new(Detector::new(&cfg));
        let mut r = rng(74);
        let mut session = AuthSession::authenticator_with(Arc::clone(&detector), 1.0, &mut r);
        assert_eq!(session.early_confidence(), None);
        session.enable_early_decision();
        assert_eq!(session.early_confidence(), Some(1.0));
        session.enable_early_decision_with_confidence(2.5);
        assert_eq!(session.early_confidence(), Some(2.5));
        // The knob reaches the scanner, including one already listening.
        let _ = session.poll_transmit();
        let _ = session.push_audio(&[0.0; 64]);
        session.enable_early_decision_with_confidence(3.5);
        assert_eq!(session.scanner.as_ref().unwrap().early_margin(), 3.5);
    }

    #[test]
    fn service_shares_one_detector_and_one_scan_across_sessions() {
        let cfg = PianoConfig::with_threshold(2.0);
        let mut service = AuthService::new(cfg.clone());
        let mut r = rng(50);
        let id1 = service.open_session(false, &mut r);
        let id2 = service.open_session(false, &mut r);
        assert_eq!(service.session_count(), 2);
        // Same configuration ⇒ same cached detector instance.
        let d1 = service.detector_for(&cfg.action);
        let d2 = service.detector_for(&cfg.action);
        assert!(Arc::ptr_eq(&d1, &d2));
        assert_eq!(service.groups.len(), 1, "one shared scan group");

        // Collect both challenges (voucher side simulated locally).
        let c1 = service.poll_transmit(id1).unwrap();
        let c2 = service.poll_transmit(id2).unwrap();
        let mut v1 = AuthSession::voucher_with(Arc::clone(&d1));
        let mut v2 = AuthSession::voucher_with(Arc::clone(&d1));
        v1.handle_message(c1).unwrap();
        v2.handle_message(c2).unwrap();

        // One shared hub recording carries all four signals, staggered.
        let w1a = service.session(id1).unwrap().playback_waveform().unwrap();
        let w1v = v1.playback_waveform().unwrap();
        let w2a = service.session(id2).unwrap().playback_waveform().unwrap();
        let w2v = v2.playback_waveform().unwrap();
        let mut hub = vec![0.0; 40_000];
        embed_into(&mut hub, &w1a, 5_000, 0.5);
        embed_into(&mut hub, &w1v, 10_000, 0.4);
        embed_into(&mut hub, &w2a, 15_000, 0.5);
        embed_into(&mut hub, &w2v, 20_000, 0.4);
        for c in hub.chunks(2048) {
            let _ = service.push_audio(c);
        }
        let events = service.finish_audio();
        assert!(
            events
                .iter()
                .filter(|(_, e)| matches!(
                    e,
                    SessionEvent::SignalLocated {
                        provisional: false,
                        ..
                    }
                ))
                .count()
                >= 4,
            "both sessions got final locations: {events:?}"
        );

        // Deliver fabricated reports chosen to measure ≈ 0.6 m each.
        // auth_diff_i = 5000; vouch_diff = 5000 − 2·0.6·fs/s ≈ 4845.7.
        for (id, session_wire) in [
            (id1, service.session(id1).unwrap().session_id()),
            (id2, service.session(id2).unwrap().session_id()),
        ] {
            let events = service
                .handle_message(
                    id,
                    Message::TimeDiffReport {
                        session: session_wire,
                        vouch_diff_samples: Some(4_845.7),
                    },
                )
                .unwrap();
            assert!(matches!(events.last(), Some(SessionEvent::Decided(_))));
        }
        for id in [id1, id2] {
            match service.decision(id).unwrap() {
                AuthDecision::Granted { distance_m } => {
                    assert!((distance_m - 0.6).abs() < 0.1, "distance {distance_m}")
                }
                other => panic!("session {id:?}: expected grant, got {other:?}"),
            }
        }
        // Audio chunks must go through the shared stream.
        assert!(service
            .handle_message(
                id1,
                Message::AudioChunk {
                    session: 0,
                    seq: 0,
                    samples: vec![].into(),
                },
            )
            .is_err());
        assert!(service.close_session(id1).is_some());
        assert_eq!(service.session_count(), 1);
    }

    #[test]
    fn sharded_ids_stride_by_shard_and_route_back() {
        let cfg = PianoConfig::with_threshold(2.0);
        let svc = ShardedAuthService::new(cfg.clone(), 3);
        assert_eq!(svc.shard_count(), 3);
        let mut r = rng(80);
        // Default-config opens land on shard 0 with ids 0, 3, 6, …
        let a = svc.open_session(false, &mut r);
        let b = svc.open_session(false, &mut r);
        assert_eq!((a.0, b.0), (0, 3));
        // A distinct config routes round-robin to shard 1; equal configs
        // share the route, so both ids are ≡ 1 (mod 3).
        let mut alt = cfg.action.clone();
        alt.coarse_step = 500;
        let c = svc.open_session_with(&alt, 2.0, false, &mut r);
        let d = svc.open_session_with(&alt, 2.0, false, &mut r);
        assert_eq!((c.0, d.0), (1, 4));
        assert_eq!(svc.shard_of(c), 1);
        assert_eq!(svc.shard_of(d), 1);
        // Every per-session accessor finds the owning shard by modulo
        // alone — no lookup table consulted.
        for id in [a, b, c, d] {
            assert!(svc.with_session(id, |s| s.session_id()).is_some());
        }
        assert_eq!(svc.session_count(), 4);
        assert!(svc.close_session(c).is_some());
        assert_eq!(svc.session_count(), 3);
        assert!(svc.decision(c).is_none());
    }

    #[test]
    fn sharded_scan_results_match_unsharded_bit_for_bit() {
        // The same four-session, two-config scenario under 1, 2, and 4
        // shards must produce identical events and scan FFTs: scan
        // groups never span shards, and opening draws from one RNG in
        // call order, so the shard count is unobservable in results.
        let run = |shards: usize| {
            let cfg = PianoConfig::with_threshold(2.0);
            let mut alt = cfg.action.clone();
            alt.coarse_step = 500;
            let svc = ShardedAuthService::new(cfg.clone(), shards);
            let mut r = rng(81);
            let ids = [
                svc.open_session(false, &mut r),
                svc.open_session_with(&alt, 2.0, false, &mut r),
                svc.open_session(false, &mut r),
                svc.open_session_with(&alt, 2.0, false, &mut r),
            ];
            let mut hub = vec![0.0; 50_000];
            for (i, &id) in ids.iter().enumerate() {
                let w = svc
                    .with_session(id, |s| s.playback_waveform())
                    .flatten()
                    .unwrap();
                embed_into(&mut hub, &w, 3_000 + i * 10_000, 0.5);
            }
            let mut events = Vec::new();
            // Big ticks so multi-shard runs see several groups per tick.
            for c in hub.chunks(13_000) {
                events.extend(svc.push_audio(c));
            }
            events.extend(svc.finish_audio());
            // Ids are shard-strided, so normalize to opening order
            // before comparing across shard counts; the stable sort
            // keeps each session's own event order intact.
            let mut events: Vec<(usize, SessionEvent)> = events
                .into_iter()
                .map(|(id, ev)| (ids.iter().position(|&i| i == id).unwrap(), ev))
                .collect();
            events.sort_by_key(|&(i, _)| i);
            let ffts = ids.map(|id| svc.with_session(id, |s| s.scan_ffts()).unwrap());
            (events, ffts)
        };
        let unsharded = run(1);
        assert_eq!(unsharded, run(2));
        assert_eq!(unsharded, run(4));
    }
}
