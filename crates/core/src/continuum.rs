//! Fleet-scale continuous re-verification (the PIANO *continuum*).
//!
//! The paper's conclusion (Sec. VII) sketches continuous authentication:
//! a granted session should stay granted only while proximity keeps
//! holding. [`crate::continuous`] implements that policy loop for one
//! host — an EDF priority queue popping one session at a time, each
//! recheck a full per-session protocol round. This module is the fleet
//! dimension of the same idea, built from three pieces:
//!
//! * [`TickWheel`] — a hierarchical timer wheel over abstract `u64`
//!   ticks. [`WHEEL_LEVELS`] cascading levels of [`WHEEL_SLOTS`] slots
//!   each cover a geometrically coarsening horizon (level `l` has slot
//!   granularity `256^l` ticks), so arming, lazy cancellation, and
//!   advancing are all O(1) amortized regardless of population — the
//!   generalization of the single-level hashed wheel the reactor uses
//!   for connection deadlines (`crates/net/src/wheel.rs` is now a thin
//!   clock-bearing adapter over this type). A million standing sessions
//!   are a million wheel entries; a tick advance touches only the slots
//!   the cursor crosses.
//!
//! * [`Continuum`] — the standing-session registry plus the **batched
//!   re-check engine**. Sessions due in the same tick are grouped by
//!   scan group and re-verified through *one* shared coarse pass over
//!   one hub recording via the [`AuthService`] scan-group machinery:
//!   the `detect_many` trick (one FFT sweep, many signatures) applied
//!   to re-verification. [`Continuum::recheck_via`] is the sequential
//!   reference — one member per private scan epoch over the same hub —
//!   and the batched engine is conformance-pinned bit-identical to it.
//!
//! * [`RiskPolicy`] — deterministic risk-adaptive periods. A marginal
//!   distance estimate (close to the threshold) shortens the next
//!   recheck interval; a strong one lengthens it; denials clamp it to
//!   the floor and a configurable run of them locks the session.
//!   Periods carry seeded, clock-free jitter so a fleet armed in one
//!   burst does not re-converge on one tick forever. Everything here is
//!   a pure function of (policy, key, check count, decision): no wall
//!   clock, no address-sensitive containers — the module sits in the
//!   decision-determinism lint scope and must replay bit-exactly.
//!
//! Wire-level re-challenge (`Message::Recheck` and friends) lives in
//! `crates/net`: the servers re-verify standing *remote* feeds over
//! their live connections using the same scan-epoch shape this module
//! drives for in-process sessions.

use std::collections::BTreeMap;

use rand_chacha::ChaCha8Rng;

use crate::error::PianoError;
use crate::piano::AuthDecision;
use crate::stream::{AuthService, SessionId};
use crate::wire::Message;

/// Number of cascading wheel levels. Level `l` has slot granularity
/// `WHEEL_SLOTS^l` ticks, so four levels cover `256^4 ≈ 4.3 × 10^9`
/// ticks before the top level starts round-counting — with a 1 s tick
/// that is ~136 years of horizon, and far-future deadlines beyond it
/// simply survive extra top-level rotations.
pub const WHEEL_LEVELS: usize = 4;

/// Slots per wheel level.
pub const WHEEL_SLOTS: usize = 256;

/// Bits of tick resolution one level spans (`log2(WHEEL_SLOTS)`).
const SLOT_BITS: u32 = 8;

#[derive(Clone, Copy, Debug)]
struct TickEntry<K> {
    /// Absolute expiry tick.
    at_tick: u64,
    /// Monotone arm sequence — the deterministic tiebreak for entries
    /// expiring on the same tick, preserved across cascades.
    seq: u64,
    key: K,
}

/// A hierarchical timer wheel over abstract `u64` ticks.
///
/// Pure bookkeeping: the wheel never reads a clock. The caller defines
/// what a tick means (the reactor adapter maps wall-clock instants onto
/// ticks; [`Continuum`] maps simulation seconds) and drives
/// [`advance`](Self::advance) with its own monotone `now`.
///
/// Properties (unit- and property-tested below against a naive sorted
/// list):
///
/// * **Never early, never lost** — an entry fires on the first
///   `advance(now)` with `now >= at_tick`, exactly once.
/// * **Deterministic order** — fired keys come out sorted by
///   `(at_tick, arm order)`.
/// * **O(1) amortized** — arming appends to one slot; an entry cascades
///   to a finer level at most [`WHEEL_LEVELS`]` - 1` times in its life;
///   an advance sweeps only the slots its cursor crosses (at most one
///   rotation per level, after which every slot has been visited once).
/// * **Lazy cancellation** — callers pair keys with a generation
///   counter and ignore stale firings; the wheel never searches for an
///   entry to delete.
#[derive(Debug)]
pub struct TickWheel<K> {
    /// `levels[l][slot]` holds entries whose expiry hashes there.
    levels: Vec<Vec<Vec<TickEntry<K>>>>,
    /// Per-level absolute index of the next unswept slot. `cursors[0]`
    /// is the next unswept tick: every stored entry has
    /// `at_tick >= cursors[0]`.
    cursors: [u64; WHEEL_LEVELS],
    /// Live entry count (stale-generation entries included — they are
    /// still stored until they fire).
    armed: usize,
    /// Next arm sequence number.
    seq: u64,
}

impl<K: Copy> TickWheel<K> {
    /// An empty wheel with its cursor at tick 0.
    pub fn new() -> Self {
        TickWheel {
            levels: (0..WHEEL_LEVELS)
                .map(|_| (0..WHEEL_SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            cursors: [0; WHEEL_LEVELS],
            armed: 0,
            seq: 0,
        }
    }

    /// Number of stored entries (including lazily cancelled ones).
    pub fn armed(&self) -> usize {
        self.armed
    }

    /// The next unswept tick: every stored entry expires at or after it.
    pub fn cursor(&self) -> u64 {
        self.cursors[0]
    }

    /// Arms `key` to fire at `at_tick` (clamped to the cursor, so a
    /// deadline in the swept past fires on the next advance).
    pub fn insert(&mut self, at_tick: u64, key: K) {
        let at = at_tick.max(self.cursors[0]);
        let seq = self.seq;
        self.seq = self.seq.wrapping_add(1);
        self.armed += 1;
        self.place(TickEntry {
            at_tick: at,
            seq,
            key,
        });
    }

    /// Files an entry at the finest level whose span still covers its
    /// delay, preserving its sequence number (used by both fresh arms
    /// and cascades).
    fn place(&mut self, e: TickEntry<K>) {
        let delta = e.at_tick - self.cursors[0].min(e.at_tick);
        let mut level = WHEEL_LEVELS - 1;
        for l in 0..WHEEL_LEVELS {
            // span(l) = WHEEL_SLOTS^(l+1) ticks.
            if (delta >> (SLOT_BITS * (l as u32 + 1))) == 0 {
                level = l;
                break;
            }
        }
        let slot = ((e.at_tick >> (SLOT_BITS * level as u32)) % WHEEL_SLOTS as u64) as usize;
        if let Some(bucket) = self.levels.get_mut(level).and_then(|s| s.get_mut(slot)) {
            bucket.push(e);
        }
    }

    /// A lower bound on the earliest stored expiry, for sleep bounding;
    /// `None` when the wheel is empty. Worst case this scans every
    /// non-pruned slot in one rotation per level — cheap at deadline
    /// populations (the reactor's), and unused by the bulk scheduling
    /// path, which drives `advance` directly.
    pub fn next_tick(&self) -> Option<u64> {
        if self.armed == 0 {
            return None;
        }
        let mut best = u64::MAX;
        for (l, slots) in self.levels.iter().enumerate() {
            let shift = SLOT_BITS * l as u32;
            let start = self.cursors.get(l).copied().unwrap_or(0);
            for s in start..start.saturating_add(WHEEL_SLOTS as u64) {
                // Entries in slot `s` expire at or after its base tick;
                // once that base passes the best found, stop this level.
                if s.checked_shl(shift).is_none_or(|base| base >= best) {
                    break;
                }
                if let Some(bucket) = slots.get((s % WHEEL_SLOTS as u64) as usize) {
                    for e in bucket {
                        best = best.min(e.at_tick);
                    }
                }
            }
        }
        if best == u64::MAX {
            // All entries sit beyond one rotation of their level; the
            // cursor still lower-bounds them.
            best = self.cursors[0];
        }
        Some(best.max(self.cursors[0]))
    }

    /// Sweeps every slot the cursor crosses up to `now_tick`, firing due
    /// entries in `(at_tick, arm order)` order and cascading not-yet-due
    /// entries whose slot has been reached down to finer levels.
    pub fn advance(&mut self, now_tick: u64) -> Vec<K> {
        if now_tick < self.cursors[0] {
            return Vec::new();
        }
        if self.armed == 0 {
            for (l, c) in self.cursors.iter_mut().enumerate() {
                *c = (now_tick >> (SLOT_BITS * l as u32)).saturating_add(1);
            }
            return Vec::new();
        }
        let mut fired: Vec<TickEntry<K>> = Vec::new();
        let mut cascades: Vec<TickEntry<K>> = Vec::new();
        for l in 0..WHEEL_LEVELS {
            let shift = SLOT_BITS * l as u32;
            let target = now_tick >> shift;
            let start = self.cursors[l];
            if target < start {
                continue;
            }
            // At most one rotation: beyond it every slot has been
            // visited once and later-rotation entries are retained by
            // the `at_tick` comparison anyway.
            let end = target.min(start.saturating_add(WHEEL_SLOTS as u64));
            for s in start..=end {
                let Some(bucket) = self
                    .levels
                    .get_mut(l)
                    .and_then(|v| v.get_mut((s % WHEEL_SLOTS as u64) as usize))
                else {
                    continue;
                };
                if bucket.is_empty() {
                    continue;
                }
                let mut kept = Vec::new();
                for e in bucket.drain(..) {
                    if e.at_tick <= now_tick {
                        fired.push(e);
                    } else if (e.at_tick >> shift) <= target {
                        // The cursor reached (or passed) this entry's
                        // own slot but the entry is not yet due: its
                        // remaining delay is under one slot of this
                        // level, so it re-files at a strictly finer
                        // level once the cursors move.
                        cascades.push(e);
                    } else {
                        kept.push(e);
                    }
                }
                *bucket = kept;
            }
            self.cursors[l] = target.saturating_add(1);
        }
        self.armed -= fired.len();
        for e in cascades {
            self.place(e);
        }
        fired.sort_by_key(|e| (e.at_tick, e.seq));
        fired.into_iter().map(|e| e.key).collect()
    }
}

impl<K: Copy> Default for TickWheel<K> {
    fn default() -> Self {
        TickWheel::new()
    }
}

/// Deterministic risk-adaptive recheck periods.
///
/// All transitions are pure functions of the policy, the standing key,
/// the check count, and the decision — replaying a fleet replays its
/// schedule bit-exactly. The rules, applied after every re-check:
///
/// | outcome | effect on the next period |
/// |---|---|
/// | granted, margin ≥ `strong_margin` | `period × lengthen`, clamped to `max_period_s` |
/// | granted, margin < `marginal_margin` | `period × shorten`, clamped to `min_period_s` |
/// | granted, margin in between | unchanged |
/// | denied, streak < `denials_to_lock` | `min_period_s` (re-verify urgently) |
/// | denied, streak = `denials_to_lock` | session locks; nothing is re-armed |
///
/// where `margin = (threshold − distance) / threshold` for a granted
/// decision (1 means the voucher is on top of the authenticator, 0
/// means it sits exactly at the threshold). A grant resets the denial
/// streak. The re-armed deadline is `now + period × jitter(key, checks)`
/// with jitter drawn from a seeded splitmix64 stream in
/// `[1 − jitter_frac, 1 + jitter_frac)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RiskPolicy {
    /// Period a session starts on, in (simulated) seconds.
    pub base_period_s: f64,
    /// Floor for shortened periods.
    pub min_period_s: f64,
    /// Ceiling for lengthened periods.
    pub max_period_s: f64,
    /// Grants with margin below this shorten the period.
    pub marginal_margin: f64,
    /// Grants with margin at or above this lengthen the period.
    pub strong_margin: f64,
    /// Multiplier applied when shortening (in (0, 1)).
    pub shorten: f64,
    /// Multiplier applied when lengthening (> 1).
    pub lengthen: f64,
    /// Consecutive denials required to lock (≥ 1).
    pub denials_to_lock: u32,
    /// Half-width of the multiplicative schedule jitter (0 disables).
    pub jitter_frac: f64,
    /// Seed for the jitter stream.
    pub jitter_seed: u64,
}

impl Default for RiskPolicy {
    fn default() -> Self {
        RiskPolicy {
            base_period_s: 60.0,
            min_period_s: 5.0,
            max_period_s: 900.0,
            marginal_margin: 0.25,
            strong_margin: 0.5,
            shorten: 0.5,
            lengthen: 2.0,
            denials_to_lock: 2,
            jitter_frac: 0.05,
            jitter_seed: 0x5EED_C047_1400_11AA,
        }
    }
}

/// splitmix64: the standard 64-bit finalizer-style mixer — a pure,
/// seedable stream good enough to decorrelate schedule phases, with no
/// clock and no allocation.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RiskPolicy {
    /// Validates the policy's invariants.
    ///
    /// # Errors
    ///
    /// [`PianoError::InvalidConfig`] naming the first violated bound.
    pub fn validate(&self) -> Result<(), PianoError> {
        let fin = |v: f64| v.is_finite() && v > 0.0;
        if !fin(self.base_period_s) || !fin(self.min_period_s) || !fin(self.max_period_s) {
            return Err(PianoError::InvalidConfig(
                "risk policy periods must be positive and finite".into(),
            ));
        }
        if self.min_period_s > self.base_period_s || self.base_period_s > self.max_period_s {
            return Err(PianoError::InvalidConfig(
                "risk policy needs min_period_s <= base_period_s <= max_period_s".into(),
            ));
        }
        if !(self.shorten > 0.0 && self.shorten < 1.0) {
            return Err(PianoError::InvalidConfig(
                "risk policy shorten factor must be in (0, 1)".into(),
            ));
        }
        if !(self.lengthen > 1.0 && self.lengthen.is_finite()) {
            return Err(PianoError::InvalidConfig(
                "risk policy lengthen factor must be finite and > 1".into(),
            ));
        }
        if !(self.marginal_margin >= 0.0 && self.marginal_margin <= self.strong_margin) {
            return Err(PianoError::InvalidConfig(
                "risk policy needs 0 <= marginal_margin <= strong_margin".into(),
            ));
        }
        if self.denials_to_lock == 0 {
            return Err(PianoError::InvalidConfig(
                "risk policy needs at least one denial to lock".into(),
            ));
        }
        if !(self.jitter_frac >= 0.0 && self.jitter_frac < 1.0) {
            return Err(PianoError::InvalidConfig(
                "risk policy jitter_frac must be in [0, 1)".into(),
            ));
        }
        Ok(())
    }

    /// The next recheck period after a decision, per the table above.
    /// Pure; denials return the floor (the lock transition is the
    /// registry's job, which also tracks the streak).
    pub fn next_period_s(&self, period_s: f64, decision: &AuthDecision, threshold_m: f64) -> f64 {
        match decision {
            AuthDecision::Granted { distance_m } => {
                let margin = if threshold_m > 0.0 {
                    (threshold_m - distance_m) / threshold_m
                } else {
                    0.0
                };
                if margin >= self.strong_margin {
                    (period_s * self.lengthen).min(self.max_period_s)
                } else if margin < self.marginal_margin {
                    (period_s * self.shorten).max(self.min_period_s)
                } else {
                    period_s
                }
            }
            AuthDecision::Denied { .. } => self.min_period_s,
        }
    }

    /// The multiplicative schedule jitter for a session's next arm:
    /// deterministic in `(jitter_seed, key, checks)`.
    pub fn jitter(&self, key: u64, checks: u64) -> f64 {
        if self.jitter_frac == 0.0 {
            return 1.0;
        }
        let h = splitmix64(
            self.jitter_seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ checks.rotate_left(17),
        );
        // 53 uniform mantissa bits in [0, 1).
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.jitter_frac * (2.0 * unit - 1.0)
    }
}

/// State of a standing session (mirrors
/// [`crate::continuous::SessionState`] for the fleet registry).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StandingState {
    /// Proximity keeps holding; access remains granted.
    Active,
    /// The configured run of denials locked the session out.
    Locked,
}

/// Handle to a session owned by a [`Continuum`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct StandingKey(pub u64);

/// One standing session: policy counters plus its wheel arm.
#[derive(Clone, Debug)]
pub struct StandingSession {
    policy: RiskPolicy,
    state: StandingState,
    group: u32,
    consecutive_denials: u32,
    checks: u64,
    period_s: f64,
    next_check_s: f64,
    /// Lazy-cancellation generation: wheel firings carrying an older
    /// generation are ignored.
    gen: u64,
}

impl StandingSession {
    /// Current state.
    pub fn state(&self) -> StandingState {
        self.state
    }

    /// Scan-group label the session re-checks under.
    pub fn group(&self) -> u32 {
        self.group
    }

    /// Re-verifications performed so far.
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Current adaptive recheck period.
    pub fn period_s(&self) -> f64 {
        self.period_s
    }

    /// Scheduled time of the next re-verification.
    pub fn next_check_s(&self) -> f64 {
        self.next_check_s
    }
}

/// Sessions of one scan group due in the same advance, in firing order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DueBatch {
    /// The group label shared by every member.
    pub group: u32,
    /// Due members, earliest deadline first.
    pub members: Vec<StandingKey>,
}

/// One member of an in-flight recheck epoch: the service session opened
/// for it and the Step II challenge that session emitted. The host
/// relays the challenge to the member's voucher (in simulation: embeds
/// the reconstructed signals into the shared hub recording) and answers
/// with the voucher's time-difference report.
#[derive(Clone, Debug)]
pub struct RecheckSession {
    /// The standing session being re-verified.
    pub key: StandingKey,
    /// The per-epoch service session.
    pub id: SessionId,
    /// The wire session id the challenge and report carry.
    pub wire_session: u64,
    /// The `Message::ReferenceSignals` challenge.
    pub challenge: Message,
}

/// Outcome of one member's re-check within a batch.
#[derive(Clone, Debug)]
pub struct RecheckOutcome {
    /// The standing session.
    pub key: StandingKey,
    /// The protocol decision for this round.
    pub decision: AuthDecision,
    /// The session's state after applying the policy.
    pub state: StandingState,
}

/// The standing-session registry: a [`TickWheel`] arming every session's
/// next re-check plus the batched re-check engine over an
/// [`AuthService`].
///
/// The flow per advance:
///
/// 1. [`due`](Self::due) sweeps the wheel and groups due sessions by
///    scan-group label.
/// 2. [`begin_recheck`](Self::begin_recheck) opens one service session
///    per member (one scan epoch for the whole batch) and returns each
///    member's challenge.
/// 3. The host synthesizes (or records) ONE shared hub recording
///    carrying every member's signals, collects the vouchers'
///    time-difference reports, and calls
///    [`complete_recheck`](Self::complete_recheck): one coarse scan
///    pass re-verifies the entire batch, and each member's policy
///    transition re-arms the wheel.
///
/// The registry stores sessions in a `BTreeMap` and never reads a
/// clock: iteration order, wheel order, and policy jitter are all
/// deterministic, so identical inputs replay identical schedules.
#[derive(Debug, Default)]
pub struct Continuum {
    sessions: BTreeMap<u64, StandingSession>,
    wheel: TickWheel<(u64, u64)>,
    /// Tick resolution, in the host's (simulated) seconds.
    tick_s: f64,
    next_key: u64,
    standing: usize,
}

impl Continuum {
    /// An empty registry with `tick_s` seconds per wheel tick.
    ///
    /// # Errors
    ///
    /// [`PianoError::InvalidConfig`] unless `tick_s` is positive and
    /// finite.
    pub fn new(tick_s: f64) -> Result<Self, PianoError> {
        if !(tick_s.is_finite() && tick_s > 0.0) {
            return Err(PianoError::InvalidConfig(
                "continuum tick must be positive and finite".into(),
            ));
        }
        Ok(Continuum {
            sessions: BTreeMap::new(),
            wheel: TickWheel::new(),
            tick_s,
            next_key: 0,
            standing: 0,
        })
    }

    /// Sessions owned (standing or locked).
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether the registry owns no sessions.
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Sessions still standing (not locked, not removed).
    pub fn standing(&self) -> usize {
        self.standing
    }

    /// Entries currently stored in the wheel (stale arms included).
    pub fn armed(&self) -> usize {
        self.wheel.armed()
    }

    /// Read access to a session.
    pub fn session(&self, key: StandingKey) -> Option<&StandingSession> {
        self.sessions.get(&key.0)
    }

    /// The wheel tick containing `t_s`, rounded up so an arm never fires
    /// before its deadline.
    fn tick_of(&self, t_s: f64) -> u64 {
        ((t_s / self.tick_s) as u64).saturating_add(1)
    }

    /// Opens a standing session under `policy` in scan group `group`,
    /// arming its first re-check at `now_s + base period × jitter`.
    ///
    /// # Errors
    ///
    /// [`PianoError::InvalidConfig`] for an invalid policy or a
    /// non-finite `now_s`.
    pub fn open(
        &mut self,
        policy: RiskPolicy,
        group: u32,
        now_s: f64,
    ) -> Result<StandingKey, PianoError> {
        policy.validate()?;
        if !now_s.is_finite() || now_s < 0.0 {
            return Err(PianoError::InvalidConfig(format!(
                "continuum open time must be finite and non-negative, got {now_s}"
            )));
        }
        let key = StandingKey(self.next_key);
        self.next_key += 1;
        let period = policy.base_period_s;
        let next = now_s + period * policy.jitter(key.0, 0);
        let session = StandingSession {
            policy,
            state: StandingState::Active,
            group,
            consecutive_denials: 0,
            checks: 0,
            period_s: period,
            next_check_s: next,
            gen: 0,
        };
        let at = self.tick_of(next);
        self.wheel.insert(at, (key.0, 0));
        self.sessions.insert(key.0, session);
        self.standing += 1;
        Ok(key)
    }

    /// Removes a session, cancelling its arm lazily (the wheel entry
    /// goes stale and is ignored when it fires).
    ///
    /// # Errors
    ///
    /// [`PianoError::Schedule`] if the key was never issued or already
    /// removed.
    pub fn remove(&mut self, key: StandingKey) -> Result<StandingSession, PianoError> {
        let session = self.sessions.remove(&key.0).ok_or_else(|| {
            PianoError::Schedule(format!("remove of unknown or removed standing key {key:?}"))
        })?;
        if session.state == StandingState::Active {
            self.standing -= 1;
        }
        Ok(session)
    }

    /// Sweeps the wheel up to `now_s` and returns the due sessions
    /// grouped by scan-group label (batches ordered by label, members
    /// by firing order). Stale arms — removed sessions, superseded
    /// generations, locked sessions — are discarded here.
    ///
    /// Every returned member is *unarmed* until
    /// [`complete_recheck`](Self::complete_recheck) (or
    /// [`rearm`](Self::rearm)) runs its policy transition; dropping a
    /// batch on the floor parks its members forever.
    pub fn due(&mut self, now_s: f64) -> Vec<DueBatch> {
        let now_tick = (now_s / self.tick_s) as u64;
        let fired = self.wheel.advance(now_tick);
        let mut batches: BTreeMap<u32, Vec<StandingKey>> = BTreeMap::new();
        for (raw, gen) in fired {
            let Some(session) = self.sessions.get(&raw) else {
                continue;
            };
            if session.gen != gen || session.state != StandingState::Active {
                continue;
            }
            batches
                .entry(session.group)
                .or_default()
                .push(StandingKey(raw));
        }
        batches
            .into_iter()
            .map(|(group, members)| DueBatch { group, members })
            .collect()
    }

    /// Re-arms a due session without re-checking it (a host shedding
    /// load under pressure still keeps the schedule alive).
    ///
    /// # Errors
    ///
    /// [`PianoError::Schedule`] for unknown keys or locked sessions.
    pub fn rearm(&mut self, key: StandingKey, now_s: f64) -> Result<(), PianoError> {
        let tick;
        {
            let session = self.sessions.get_mut(&key.0).ok_or_else(|| {
                PianoError::Schedule(format!("rearm of unknown standing key {key:?}"))
            })?;
            if session.state != StandingState::Active {
                return Err(PianoError::Schedule(format!(
                    "rearm of locked standing key {key:?}"
                )));
            }
            session.gen += 1;
            session.next_check_s =
                now_s + session.period_s * session.policy.jitter(key.0, session.checks);
            tick = session.next_check_s;
        }
        let at = self.tick_of(tick);
        if let Some(session) = self.sessions.get(&key.0) {
            self.wheel.insert(at, (key.0, session.gen));
        }
        Ok(())
    }

    /// Applies one re-check decision to a session: advances the denial
    /// streak, adapts the period per its [`RiskPolicy`], and re-arms the
    /// wheel (unless the session locks). Returns the new state.
    ///
    /// # Errors
    ///
    /// [`PianoError::Schedule`] for unknown keys, locked sessions, or a
    /// non-finite `now_s`.
    pub fn apply_outcome(
        &mut self,
        key: StandingKey,
        decision: &AuthDecision,
        threshold_m: f64,
        now_s: f64,
    ) -> Result<StandingState, PianoError> {
        if !now_s.is_finite() || now_s < 0.0 {
            return Err(PianoError::Schedule(format!(
                "apply_outcome time must be finite and non-negative, got {now_s}"
            )));
        }
        let (state, rearm_at) = {
            let session = self.sessions.get_mut(&key.0).ok_or_else(|| {
                PianoError::Schedule(format!(
                    "apply_outcome for unknown or removed standing key {key:?}"
                ))
            })?;
            if session.state != StandingState::Active {
                return Err(PianoError::Schedule(format!(
                    "apply_outcome for locked standing key {key:?}"
                )));
            }
            session.checks += 1;
            match decision {
                AuthDecision::Granted { .. } => session.consecutive_denials = 0,
                AuthDecision::Denied { .. } => session.consecutive_denials += 1,
            }
            if session.consecutive_denials >= session.policy.denials_to_lock {
                session.state = StandingState::Locked;
                (StandingState::Locked, None)
            } else {
                session.period_s =
                    session
                        .policy
                        .next_period_s(session.period_s, decision, threshold_m);
                session.gen += 1;
                session.next_check_s =
                    now_s + session.period_s * session.policy.jitter(key.0, session.checks);
                (
                    StandingState::Active,
                    Some((session.next_check_s, session.gen)),
                )
            }
        };
        match rearm_at {
            Some((next, gen)) => {
                let at = self.tick_of(next);
                self.wheel.insert(at, (key.0, gen));
            }
            None => self.standing -= 1,
        }
        Ok(state)
    }

    /// Opens one re-check scan epoch for a due batch: one service
    /// session per member (all in one scan group, so the later audio
    /// pass is ONE coarse scan for the whole batch), returning each
    /// member's challenge in member order.
    ///
    /// Call between scan epochs only — the service's group audio must
    /// not have started (the same contract every scan-group host obeys).
    ///
    /// # Errors
    ///
    /// [`PianoError::Schedule`] for unknown or locked members, or if a
    /// session produced no challenge.
    pub fn begin_recheck(
        &mut self,
        service: &mut AuthService,
        members: &[StandingKey],
        rng: &mut ChaCha8Rng,
    ) -> Result<Vec<RecheckSession>, PianoError> {
        let mut batch = Vec::with_capacity(members.len());
        for &key in members {
            let session = self.sessions.get(&key.0).ok_or_else(|| {
                PianoError::Schedule(format!("recheck of unknown standing key {key:?}"))
            })?;
            if session.state != StandingState::Active {
                return Err(PianoError::Schedule(format!(
                    "recheck of locked standing key {key:?}"
                )));
            }
            let id = service.open_session(false, rng);
            let challenge = service.poll_transmit(id).ok_or_else(|| {
                PianoError::Schedule(format!("recheck session {id:?} produced no challenge"))
            })?;
            let wire_session = match &challenge {
                Message::ReferenceSignals { session, .. } => *session,
                other => {
                    return Err(PianoError::Schedule(format!(
                        "recheck session {id:?} emitted {other:?} instead of a challenge"
                    )))
                }
            };
            batch.push(RecheckSession {
                key,
                id,
                wire_session,
                challenge,
            });
        }
        Ok(batch)
    }

    /// Completes a re-check epoch: routes each member's vouch report,
    /// streams the ONE shared hub recording through the service (one
    /// coarse pass re-verifies every member), then applies each member's
    /// policy transition and re-arms the wheel. Epoch sessions are
    /// closed on the way out. Returns per-member outcomes in member
    /// order.
    ///
    /// Decisions are bit-identical to running each member alone through
    /// [`Continuum::recheck_via`] over the same hub recording — the
    /// conformance pin lives in `tests/continuum_conformance.rs`.
    ///
    /// # Errors
    ///
    /// [`PianoError::Schedule`] if report and batch lengths disagree or
    /// a member failed to conclude; any [`PianoError`] the service
    /// surfaces while routing reports.
    pub fn complete_recheck(
        &mut self,
        service: &mut AuthService,
        batch: &[RecheckSession],
        vouch_diffs: &[f64],
        hub: &[f64],
        chunk: usize,
        now_s: f64,
    ) -> Result<Vec<RecheckOutcome>, PianoError> {
        if batch.len() != vouch_diffs.len() {
            return Err(PianoError::Schedule(format!(
                "recheck batch has {} members but {} reports",
                batch.len(),
                vouch_diffs.len()
            )));
        }
        let threshold_m = service.config().threshold_m;
        for (member, &diff) in batch.iter().zip(vouch_diffs) {
            service.handle_message(
                member.id,
                Message::TimeDiffReport {
                    session: member.wire_session,
                    vouch_diff_samples: Some(diff),
                },
            )?;
        }
        for piece in hub.chunks(chunk.max(1)) {
            service.push_audio(piece);
        }
        service.finish_audio();
        let mut outcomes = Vec::with_capacity(batch.len());
        for member in batch {
            let decision = service.decision(member.id).cloned().ok_or_else(|| {
                PianoError::Schedule(format!(
                    "recheck session {:?} did not conclude (missing report or scan)",
                    member.id
                ))
            })?;
            service.close_session(member.id);
            let state = self.apply_outcome(member.key, &decision, threshold_m, now_s)?;
            outcomes.push(RecheckOutcome {
                key: member.key,
                decision,
                state,
            });
        }
        Ok(outcomes)
    }

    /// The sequential reference for [`complete_recheck`](Self::complete_recheck):
    /// re-verifies ONE member of a batch through its own *private* scan
    /// epoch over the same hub recording.
    ///
    /// The caller hands a *fresh* service (same configuration) and a
    /// clone of the RNG the batched epoch consumed: this opens the same
    /// `group_size` sessions (identical draws → identical signals),
    /// closes every session except `member`'s, and scans the hub with
    /// only that member's signatures in the group. Per-signature scan
    /// independence makes the batched decisions bit-identical to this
    /// path — exactly the guarantee the `detect_many` conformance suite
    /// pins for one-shot detection.
    ///
    /// Pure with respect to `self` (it is a reference implementation,
    /// not a scheduling operation): no policy transition runs and no
    /// wheel arm moves.
    ///
    /// # Errors
    ///
    /// [`PianoError::Schedule`] for an out-of-range `member` index or a
    /// session that failed to conclude; service errors pass through.
    pub fn recheck_via(
        service: &mut AuthService,
        rng: &mut ChaCha8Rng,
        group_size: usize,
        member: usize,
        vouch_diff_samples: f64,
        hub: &[f64],
        chunk: usize,
    ) -> Result<AuthDecision, PianoError> {
        if member >= group_size {
            return Err(PianoError::Schedule(format!(
                "recheck_via member {member} out of range for group of {group_size}"
            )));
        }
        let ids: Vec<SessionId> = (0..group_size)
            .map(|_| service.open_session(false, rng))
            .collect();
        let mut kept = None;
        for (i, &id) in ids.iter().enumerate() {
            if i == member {
                kept = Some(id);
            } else {
                service.close_session(id);
            }
        }
        let id = kept.ok_or_else(|| {
            PianoError::Schedule(format!(
                "recheck_via member {member} missing from its own epoch"
            ))
        })?;
        let challenge = service.poll_transmit(id).ok_or_else(|| {
            PianoError::Schedule(format!("recheck session {id:?} produced no challenge"))
        })?;
        let wire_session = match &challenge {
            Message::ReferenceSignals { session, .. } => *session,
            other => {
                return Err(PianoError::Schedule(format!(
                    "recheck session {id:?} emitted {other:?} instead of a challenge"
                )))
            }
        };
        service.handle_message(
            id,
            Message::TimeDiffReport {
                session: wire_session,
                vouch_diff_samples: Some(vouch_diff_samples),
            },
        )?;
        for piece in hub.chunks(chunk.max(1)) {
            service.push_audio(piece);
        }
        service.finish_audio();
        let decision = service.decision(id).cloned().ok_or_else(|| {
            PianoError::Schedule(format!("recheck session {id:?} did not conclude"))
        })?;
        service.close_session(id);
        Ok(decision)
    }
}

/// Simulation fixtures for re-check epochs: the gateway-hub geometry the
/// fleet examples and benches use, kept here so core tests, net
/// fixtures, and benches agree on one layout.
pub mod sim {
    use super::RecheckSession;
    use crate::stream::{AuthService, SignalRole};

    /// Samples between consecutive members' signal embeddings in the
    /// shared hub recording.
    pub const STRIDE: usize = 12_288;
    /// Offset of a member's `S_A` within its stride.
    pub const SA_OFFSET: usize = 2_000;
    /// Offset of a member's `S_V` within its stride.
    pub const SV_OFFSET: usize = 8_000;
    /// Trailing room after the last member's embeddings.
    pub const TAIL: usize = 16_384;
    /// The hub-side arrival difference every member's geometry yields
    /// (`SV_OFFSET − SA_OFFSET` samples).
    pub const HUB_DIFF_SAMPLES: f64 = (SV_OFFSET - SA_OFFSET) as f64;

    /// Quantizes to the i16 grid exactly like the wire codec (round
    /// half away from zero, clamp), widened back to `f64` — hub
    /// recordings live on the same grid as wire audio so simulated and
    /// remote re-checks scan identical sample values.
    fn quantize(s: f64) -> f64 {
        let scaled = if s >= 0.0 {
            (s + 0.5).floor()
        } else {
            (s - 0.5).ceil()
        };
        let q = scaled.clamp(i16::MIN as f64, i16::MAX as f64) as i16;
        q as f64
    }

    /// Adds `wave` into `rec` starting at `offset`, scaled by `gain`.
    fn embed(rec: &mut [f64], wave: &[f64], offset: usize, gain: f64) {
        for (i, &w) in wave.iter().enumerate() {
            if let Some(slot) = rec.get_mut(offset + i) {
                *slot += gain * w;
            }
        }
    }

    /// The vouch-side arrival difference that makes a member measure
    /// `distance_m` under the hub geometry: Eq. 3 inverted,
    /// `diff_V = diff_A − 2·d·fs/c`.
    pub fn vouch_diff_for(distance_m: f64, sample_rate: f64, speed_of_sound: f64) -> f64 {
        HUB_DIFF_SAMPLES - 2.0 * distance_m * sample_rate / speed_of_sound
    }

    /// Synthesizes the ONE shared hub recording for a re-check epoch:
    /// member `i`'s signals embed at `i × STRIDE + SA_OFFSET` /
    /// `i × STRIDE + SV_OFFSET`, quantized to the wire grid. The same
    /// recording serves the batched pass and every sequential reference
    /// pass.
    pub fn hub_recording(service: &AuthService, batch: &[RecheckSession]) -> Vec<f64> {
        let mut rec = vec![0.0; batch.len() * STRIDE + TAIL];
        for (i, member) in batch.iter().enumerate() {
            let base = i * STRIDE;
            if let Some(session) = service.session(member.id) {
                if let Some(sa) = session.waveform_of(SignalRole::Auth) {
                    embed(&mut rec, &sa, base + SA_OFFSET, 0.4);
                }
                if let Some(sv) = session.waveform_of(SignalRole::Vouch) {
                    embed(&mut rec, &sv, base + SV_OFFSET, 0.3);
                }
            }
        }
        for s in &mut rec {
            *s = quantize(*s);
        }
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::piano::{DenialReason, PianoConfig};
    use proptest::prelude::*;
    use rand::SeedableRng;

    // -- TickWheel ----------------------------------------------------

    #[test]
    fn fires_after_the_deadline_not_before() {
        let mut w: TickWheel<u32> = TickWheel::new();
        w.insert(5, 1);
        assert!(w.advance(4).is_empty(), "must not fire early");
        assert_eq!(w.advance(5), vec![1]);
        assert_eq!(w.armed(), 0);
        assert!(w.next_tick().is_none(), "wheel must disarm after firing");
    }

    #[test]
    fn fired_order_is_deadline_then_arm_order() {
        let mut w: TickWheel<u32> = TickWheel::new();
        w.insert(9, 2);
        w.insert(3, 1);
        w.insert(9, 3);
        assert_eq!(
            w.advance(20),
            vec![1, 2, 3],
            "expiry order follows deadlines, ties follow arm order"
        );
    }

    #[test]
    fn cascade_boundaries_fire_exactly_once_on_time() {
        // Entries straddling every level boundary, plus far-future ones
        // beyond the top-level span.
        let deadlines: Vec<u64> = vec![
            1,
            255,
            256,
            257,
            65_535,
            65_536,
            65_537,
            (1 << 24) - 1,
            1 << 24,
            (1 << 24) + 1,
            (1 << 32) + 5,
            (1 << 33) + 7,
        ];
        let mut w: TickWheel<usize> = TickWheel::new();
        for (i, &d) in deadlines.iter().enumerate() {
            w.insert(d, i);
        }
        let mut fired = Vec::new();
        let mut now = 0u64;
        while fired.len() < deadlines.len() {
            now = now.saturating_mul(2).saturating_add(129);
            for k in w.advance(now) {
                let at = deadlines[k];
                assert!(at <= now, "entry {k} fired {} ticks early", at - now);
                fired.push(k);
            }
            assert!(now < u64::MAX / 2, "wheel lost an entry");
        }
        fired.sort_unstable();
        assert_eq!(fired, (0..deadlines.len()).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_deadline_survives_many_rotations_and_fires_on_first_due_advance() {
        let mut w: TickWheel<u8> = TickWheel::new();
        let at = (1u64 << 34) + 12_345;
        w.insert(at, 7);
        // March the cursor in giant and tiny steps alike.
        let mut now = 0u64;
        for step in [1u64, 255, 256, 65_537, 1 << 20, 1 << 30] {
            now += step;
            assert!(w.advance(now).is_empty(), "fired early at {now}");
        }
        assert_eq!(w.advance(at), vec![7]);
    }

    #[test]
    fn past_deadlines_clamp_to_the_cursor_and_still_fire() {
        let mut w: TickWheel<u8> = TickWheel::new();
        assert!(w.advance(100).is_empty());
        w.insert(3, 1); // already in the swept past
        assert_eq!(w.next_tick(), Some(101));
        assert_eq!(w.advance(101), vec![1]);
    }

    #[test]
    fn next_tick_lower_bounds_every_entry() {
        let mut w: TickWheel<u32> = TickWheel::new();
        assert_eq!(w.next_tick(), None);
        w.insert(70_000, 1);
        let bound = w.next_tick().expect("armed");
        assert!(bound <= 70_000, "bound {bound} past the entry");
        w.insert(40, 2);
        let bound = w.next_tick().expect("armed");
        assert!(bound <= 40);
        assert!(w.advance(bound.saturating_sub(1)).is_empty());
    }

    /// The naive reference: a sorted list with eager semantics matching
    /// the wheel's contract (clamp to cursor, fire at `at <= now`,
    /// order by `(at, arm order)`).
    #[derive(Default)]
    struct NaiveWheel {
        entries: Vec<(u64, u64, u64)>, // (at, seq, key)
        cursor: u64,
        seq: u64,
    }

    impl NaiveWheel {
        fn insert(&mut self, at: u64, key: u64) {
            let at = at.max(self.cursor);
            self.entries.push((at, self.seq, key));
            self.seq += 1;
        }

        fn advance(&mut self, now: u64) -> Vec<u64> {
            if now < self.cursor {
                return Vec::new();
            }
            self.cursor = now.saturating_add(1);
            let mut due: Vec<(u64, u64, u64)> = Vec::new();
            self.entries.retain(|&(at, seq, key)| {
                if at <= now {
                    due.push((at, seq, key));
                    false
                } else {
                    true
                }
            });
            due.sort_unstable();
            due.into_iter().map(|(_, _, k)| k).collect()
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn wheel_matches_naive_scheduler(
            ops in proptest::collection::vec(any::<u64>(), 1..200),
        ) {
            let mut wheel: TickWheel<u64> = TickWheel::new();
            let mut naive = NaiveWheel::default();
            let mut now = 0u64;
            let mut next_key = 0u64;
            for op in ops {
                let kind = op % 3;
                let arg = op >> 2;
                match kind {
                    0 => {
                        // Arm: deltas biased at cascade boundaries, the
                        // immediate past, and the far future.
                        let delta = match arg % 8 {
                            0 => arg % 4,
                            1 => 250 + arg % 12,
                            2 => 65_530 + arg % 12,
                            3 => (1 << 24) - 6 + arg % 12,
                            4 => (1u64 << 32) + arg % 1_000,
                            5 => (1u64 << 34) + arg % 1_000,
                            _ => arg % 10_000,
                        };
                        let at = now.saturating_add(delta);
                        wheel.insert(at, next_key);
                        naive.insert(at, next_key);
                        next_key += 1;
                    }
                    1 => {
                        // Advance: steps straddling slot and rotation
                        // boundaries, plus occasional giant jumps.
                        let step = match arg % 7 {
                            0 => 1,
                            1 => 255,
                            2 => 256,
                            3 => 257,
                            4 => 65_537,
                            5 => (1 << 16) + (arg % (1 << 10)),
                            _ => arg % 4_999 + 1,
                        };
                        now = now.saturating_add(step);
                        prop_assert_eq!(wheel.advance(now), naive.advance(now));
                        prop_assert_eq!(wheel.armed(), naive.entries.len());
                    }
                    _ => {
                        // Re-advance at the *same* now: must be a no-op
                        // on both sides.
                        prop_assert_eq!(wheel.advance(now), naive.advance(now));
                    }
                }
            }
            // Drain everything, in two final leaps past the top span.
            now = now.saturating_add(1 << 33);
            prop_assert_eq!(wheel.advance(now), naive.advance(now));
            now = now.saturating_add(1 << 35);
            prop_assert_eq!(wheel.advance(now), naive.advance(now));
            prop_assert_eq!(wheel.armed(), naive.entries.len());
        }
    }

    // -- RiskPolicy ---------------------------------------------------

    fn granted(distance_m: f64) -> AuthDecision {
        AuthDecision::Granted { distance_m }
    }

    fn denied() -> AuthDecision {
        AuthDecision::Denied {
            reason: DenialReason::SignalAbsent,
        }
    }

    #[test]
    fn policy_table_shortens_marginal_and_lengthens_strong() {
        let p = RiskPolicy::default();
        // margin 0.1 < 0.25: marginal → shorten.
        assert_eq!(p.next_period_s(60.0, &granted(0.9), 1.0), 30.0);
        // margin 0.5 >= 0.5: strong → lengthen.
        assert_eq!(p.next_period_s(60.0, &granted(0.5), 1.0), 120.0);
        // margin 0.3 in between: unchanged.
        assert_eq!(p.next_period_s(60.0, &granted(0.7), 1.0), 60.0);
        // Denial: floor.
        assert_eq!(p.next_period_s(60.0, &denied(), 1.0), p.min_period_s);
        // Clamps: a strong grant cannot push past the ceiling, a
        // marginal one cannot push past the floor.
        assert_eq!(p.next_period_s(800.0, &granted(0.1), 1.0), p.max_period_s);
        assert_eq!(p.next_period_s(8.0, &granted(0.99), 1.0), p.min_period_s);
    }

    #[test]
    fn policy_jitter_is_deterministic_and_bounded() {
        let p = RiskPolicy {
            jitter_frac: 0.05,
            jitter_seed: 77,
            ..RiskPolicy::default()
        };
        for key in 0..50u64 {
            for checks in 0..4u64 {
                let j = p.jitter(key, checks);
                assert_eq!(j, p.jitter(key, checks), "jitter must replay");
                assert!((0.95..1.05).contains(&j), "jitter {j} out of band");
            }
        }
        // Distinct keys decorrelate.
        assert_ne!(p.jitter(1, 0), p.jitter(2, 0));
        let none = RiskPolicy {
            jitter_frac: 0.0,
            ..p
        };
        assert_eq!(none.jitter(9, 9), 1.0);
    }

    #[test]
    fn policy_validation_rejects_bad_bounds() {
        let ok = RiskPolicy::default();
        assert!(ok.validate().is_ok());
        for bad in [
            RiskPolicy {
                min_period_s: 100.0,
                ..ok
            },
            RiskPolicy { shorten: 1.5, ..ok },
            RiskPolicy {
                lengthen: 0.5,
                ..ok
            },
            RiskPolicy {
                marginal_margin: 0.9,
                ..ok
            },
            RiskPolicy {
                denials_to_lock: 0,
                ..ok
            },
            RiskPolicy {
                jitter_frac: 1.5,
                ..ok
            },
            RiskPolicy {
                base_period_s: f64::INFINITY,
                ..ok
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?} must be rejected");
        }
    }

    // -- Continuum registry -------------------------------------------

    fn quiet_policy(base: f64) -> RiskPolicy {
        RiskPolicy {
            base_period_s: base,
            min_period_s: base / 8.0,
            max_period_s: base * 8.0,
            jitter_frac: 0.0,
            ..RiskPolicy::default()
        }
    }

    #[test]
    fn due_groups_by_label_and_ignores_stale_arms() {
        let mut c = Continuum::new(1.0).expect("tick");
        let a = c.open(quiet_policy(10.0), 0, 0.0).expect("open");
        let b = c.open(quiet_policy(10.0), 1, 0.0).expect("open");
        let gone = c.open(quiet_policy(10.0), 0, 0.0).expect("open");
        c.remove(gone).expect("remove");
        assert_eq!(c.standing(), 2);
        assert!(c.due(5.0).is_empty(), "nothing due yet");
        let batches = c.due(11.0);
        assert_eq!(
            batches,
            vec![
                DueBatch {
                    group: 0,
                    members: vec![a]
                },
                DueBatch {
                    group: 1,
                    members: vec![b]
                },
            ]
        );
        assert!(
            c.remove(gone).is_err(),
            "double remove must be a typed error"
        );
    }

    #[test]
    fn apply_outcome_adapts_period_and_locks_on_denial_streak() {
        let mut c = Continuum::new(1.0).expect("tick");
        let k = c.open(quiet_policy(64.0), 0, 0.0).expect("open");
        // Marginal grant at 0.9 m under τ = 1 m: period halves.
        let s = c.apply_outcome(k, &granted(0.9), 1.0, 64.0).expect("apply");
        assert_eq!(s, StandingState::Active);
        assert_eq!(c.session(k).expect("live").period_s(), 32.0);
        // Strong grant doubles it back.
        c.apply_outcome(k, &granted(0.3), 1.0, 96.0).expect("apply");
        assert_eq!(c.session(k).expect("live").period_s(), 64.0);
        // Two denials lock (default denials_to_lock = 2).
        c.apply_outcome(k, &denied(), 1.0, 160.0).expect("apply");
        assert_eq!(c.session(k).expect("live").period_s(), 8.0, "denial floors");
        let s = c.apply_outcome(k, &denied(), 1.0, 168.0).expect("apply");
        assert_eq!(s, StandingState::Locked);
        assert_eq!(c.standing(), 0);
        assert!(
            c.apply_outcome(k, &granted(0.5), 1.0, 170.0).is_err(),
            "locked sessions take no further outcomes"
        );
        assert!(c.due(10_000.0).is_empty(), "locked sessions never come due");
    }

    #[test]
    fn schedule_replays_bit_exactly() {
        let run = || {
            let mut c = Continuum::new(0.5).expect("tick");
            let mut log = Vec::new();
            for i in 0..32 {
                c.open(RiskPolicy::default(), i % 3, i as f64)
                    .expect("open");
            }
            let mut now = 0.0;
            for _ in 0..6 {
                now += 40.0;
                for batch in c.due(now) {
                    for key in batch.members {
                        let d = if key.0 % 5 == 0 {
                            denied()
                        } else {
                            granted(0.4)
                        };
                        let s = c.apply_outcome(key, &d, 1.0, now).expect("apply");
                        log.push((key, s, c.session(key).expect("live").next_check_s()));
                    }
                }
            }
            log
        };
        let first = run();
        assert!(!first.is_empty());
        assert_eq!(first, run(), "no clocks, no address-order: replays match");
    }

    // -- Batched engine over a real AuthService -----------------------

    #[test]
    fn batched_recheck_reverifies_a_group_in_one_epoch() {
        let mut rng = ChaCha8Rng::seed_from_u64(0xC0_17);
        let mut service = AuthService::new(PianoConfig::with_threshold(1.0));
        let mut c = Continuum::new(1.0).expect("tick");
        let keys: Vec<StandingKey> = (0..4)
            .map(|_| c.open(quiet_policy(30.0), 0, 0.0).expect("open"))
            .collect();
        let batches = c.due(31.0);
        assert_eq!(batches.len(), 1);
        assert_eq!(batches[0].members, keys);
        let batch = c
            .begin_recheck(&mut service, &batches[0].members, &mut rng)
            .expect("begin");
        let cfg = service.config().action.clone();
        // Members 0/2/3 measure ~0.5 m; member 1 walked away (signal
        // absent would need a different hub — keep it granted-far
        // instead: ~0.96 m, a marginal grant).
        let diffs: Vec<f64> = [0.5, 0.96, 0.5, 0.5]
            .iter()
            .map(|&d| sim::vouch_diff_for(d, cfg.sample_rate, 343.0))
            .collect();
        let hub = sim::hub_recording(&service, &batch);
        let outcomes = c
            .complete_recheck(&mut service, &batch, &diffs, &hub, 16_384, 31.0)
            .expect("complete");
        assert_eq!(outcomes.len(), 4);
        for (i, o) in outcomes.iter().enumerate() {
            assert!(
                o.decision.is_granted(),
                "member {i} denied: {:?}",
                o.decision
            );
            assert_eq!(o.state, StandingState::Active);
        }
        // The marginal member re-checks sooner than the strong ones.
        let strong = c.session(keys[0]).expect("live").period_s();
        let marginal = c.session(keys[1]).expect("live").period_s();
        assert!(
            marginal < strong,
            "marginal period {marginal} must undercut strong period {strong}"
        );
        assert_eq!(service.session_count(), 0, "epoch sessions are closed");
    }

    #[test]
    fn batched_decisions_match_the_sequential_reference() {
        let base_rng = ChaCha8Rng::seed_from_u64(0x5EC_0FF1);
        let mut rng = base_rng.clone();
        let mut service = AuthService::new(PianoConfig::with_threshold(1.0));
        let mut c = Continuum::new(1.0).expect("tick");
        let keys: Vec<StandingKey> = (0..3)
            .map(|_| c.open(quiet_policy(10.0), 0, 0.0).expect("open"))
            .collect();
        let batch = c
            .begin_recheck(&mut service, &keys, &mut rng)
            .expect("begin");
        let cfg = service.config().action.clone();
        let diffs: Vec<f64> = [0.3, 0.7, 0.5]
            .iter()
            .map(|&d| sim::vouch_diff_for(d, cfg.sample_rate, 343.0))
            .collect();
        let hub = sim::hub_recording(&service, &batch);
        let outcomes = c
            .complete_recheck(&mut service, &batch, &diffs, &hub, 4_096, 10.0)
            .expect("complete");
        for (i, o) in outcomes.iter().enumerate() {
            let mut seq_service = AuthService::new(PianoConfig::with_threshold(1.0));
            let mut seq_rng = base_rng.clone();
            let solo = Continuum::recheck_via(
                &mut seq_service,
                &mut seq_rng,
                keys.len(),
                i,
                diffs[i],
                &hub,
                4_096,
            )
            .expect("sequential");
            match (&o.decision, &solo) {
                (
                    AuthDecision::Granted { distance_m: a },
                    AuthDecision::Granted { distance_m: b },
                ) => assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "member {i}: batched distance must be bit-identical"
                ),
                (x, y) => assert_eq!(x, y, "member {i}: decisions diverge"),
            }
        }
    }

    #[test]
    fn typed_errors_on_stale_keys_and_mismatched_reports() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut service = AuthService::new(PianoConfig::default());
        let mut c = Continuum::new(1.0).expect("tick");
        let k = c.open(quiet_policy(10.0), 0, 0.0).expect("open");
        c.remove(k).expect("remove");
        assert!(matches!(
            c.begin_recheck(&mut service, &[k], &mut rng),
            Err(PianoError::Schedule(_))
        ));
        let live = c.open(quiet_policy(10.0), 0, 0.0).expect("open");
        let batch = c
            .begin_recheck(&mut service, &[live], &mut rng)
            .expect("begin");
        assert!(matches!(
            c.complete_recheck(&mut service, &batch, &[], &[], 64, 10.0),
            Err(PianoError::Schedule(_))
        ));
        assert!(matches!(c.rearm(k, 20.0), Err(PianoError::Schedule(_))));
    }
}
