//! The candidate frequency grid.
//!
//! Paper, Sec. VI-A: "we use the frequency range [25K Hz, 35K Hz].
//! Specifically, we equally divide this frequency range to be 30 bins and
//! take the center of each bin as a candidate frequency, i.e., we have 30
//! candidate frequencies."
//!
//! At the 44.1 kHz sampling rate these candidates exceed Nyquist and fold
//! to 9.1–19.1 kHz physically — above the <6 kHz bulk of background noise
//! and near-inaudible, which is the entire point of the band choice. The
//! grid works in the *digital* (pre-fold) domain exactly as the paper's
//! Algorithm 2 does.

use serde::{Deserialize, Serialize};

use crate::error::PianoError;

/// An equally divided candidate frequency grid (the paper's `F_R`).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrequencyGrid {
    lo_hz: f64,
    hi_hz: f64,
    bins: usize,
}

impl FrequencyGrid {
    /// Creates a grid over `[lo_hz, hi_hz]` with `bins` equal divisions.
    ///
    /// # Errors
    ///
    /// Returns [`PianoError::InvalidConfig`] if the band is empty or
    /// `bins == 0`.
    pub fn new(lo_hz: f64, hi_hz: f64, bins: usize) -> Result<Self, PianoError> {
        if !(lo_hz.is_finite() && hi_hz.is_finite()) || lo_hz <= 0.0 || hi_hz <= lo_hz {
            return Err(PianoError::InvalidConfig(format!(
                "frequency band [{lo_hz}, {hi_hz}] must be positive and non-empty"
            )));
        }
        if bins == 0 {
            return Err(PianoError::InvalidConfig(
                "grid must have at least one bin".into(),
            ));
        }
        Ok(FrequencyGrid { lo_hz, hi_hz, bins })
    }

    /// The paper's grid: [25 kHz, 35 kHz] in 30 bins.
    pub fn paper_default() -> Self {
        FrequencyGrid {
            lo_hz: 25_000.0,
            hi_hz: 35_000.0,
            bins: 30,
        }
    }

    /// Number of candidate frequencies (`N` in the paper).
    #[inline]
    pub fn len(&self) -> usize {
        self.bins
    }

    /// Whether the grid has no candidates (never true for valid grids).
    pub fn is_empty(&self) -> bool {
        self.bins == 0
    }

    /// Lower band edge in Hz.
    pub fn lo_hz(&self) -> f64 {
        self.lo_hz
    }

    /// Upper band edge in Hz.
    pub fn hi_hz(&self) -> f64 {
        self.hi_hz
    }

    /// Width of one bin in Hz.
    pub fn bin_width_hz(&self) -> f64 {
        (self.hi_hz - self.lo_hz) / self.bins as f64
    }

    /// The candidate frequency at `index` — the center of bin `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn candidate_hz(&self, index: usize) -> f64 {
        assert!(
            index < self.bins,
            "candidate index {index} out of range ({})",
            self.bins
        );
        self.lo_hz + (index as f64 + 0.5) * self.bin_width_hz()
    }

    /// All candidate frequencies in index order.
    pub fn candidates_hz(&self) -> Vec<f64> {
        (0..self.bins).map(|i| self.candidate_hz(i)).collect()
    }

    /// FFT bin index of candidate `index` for a window of `window_len`
    /// samples at `sample_rate` — the paper's `⌊f/f_s·|W|⌋`.
    pub fn fft_bin(&self, index: usize, sample_rate: f64, window_len: usize) -> usize {
        piano_dsp::spectrum::freq_to_bin(self.candidate_hz(index), sample_rate, window_len)
    }

    /// Indices not in `chosen` (the paper's `F_R \ F`), assuming `chosen`
    /// is sorted ascending.
    pub fn complement(&self, chosen: &[usize]) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.bins.saturating_sub(chosen.len()));
        let mut it = chosen.iter().peekable();
        for i in 0..self.bins {
            if it.peek() == Some(&&i) {
                it.next();
            } else {
                out.push(i);
            }
        }
        out
    }
}

impl Default for FrequencyGrid {
    fn default() -> Self {
        FrequencyGrid::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_grid_has_thirty_candidates() {
        let g = FrequencyGrid::paper_default();
        assert_eq!(g.len(), 30);
        assert!((g.bin_width_hz() - 333.333).abs() < 0.01);
        // First candidate: 25000 + 166.67; last: 35000 − 166.67.
        assert!((g.candidate_hz(0) - 25_166.666).abs() < 0.01);
        assert!((g.candidate_hz(29) - 34_833.333).abs() < 0.01);
    }

    #[test]
    fn candidates_are_strictly_increasing_and_in_band() {
        let g = FrequencyGrid::paper_default();
        let c = g.candidates_hz();
        for w in c.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(c[0] > g.lo_hz() && c[29] < g.hi_hz());
    }

    #[test]
    fn fft_bins_do_not_collide_at_theta_five() {
        // Detection aggregates ±θ = ±5 FFT bins (≈±54 Hz at 4096/44100);
        // adjacent candidates are ~333 Hz apart so clusters must not touch.
        let g = FrequencyGrid::paper_default();
        let bins: Vec<usize> = (0..30).map(|i| g.fft_bin(i, 44_100.0, 4096)).collect();
        for w in bins.windows(2) {
            let gap = (w[1] as isize - w[0] as isize).unsigned_abs();
            assert!(gap > 2 * 5, "bin gap {gap} too small for θ=5 clusters");
        }
    }

    #[test]
    fn invalid_grids_are_rejected() {
        assert!(FrequencyGrid::new(0.0, 10.0, 4).is_err());
        assert!(FrequencyGrid::new(100.0, 100.0, 4).is_err());
        assert!(FrequencyGrid::new(200.0, 100.0, 4).is_err());
        assert!(FrequencyGrid::new(100.0, 200.0, 0).is_err());
        assert!(FrequencyGrid::new(100.0, f64::NAN, 4).is_err());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn candidate_index_is_bounds_checked() {
        let _ = FrequencyGrid::paper_default().candidate_hz(30);
    }

    #[test]
    fn complement_partitions_the_grid() {
        let g = FrequencyGrid::new(1_000.0, 2_000.0, 6).unwrap();
        let chosen = vec![1, 3, 4];
        assert_eq!(g.complement(&chosen), vec![0, 2, 5]);
        assert_eq!(g.complement(&[]), vec![0, 1, 2, 3, 4, 5]);
        assert!(g.complement(&[0, 1, 2, 3, 4, 5]).is_empty());
    }

    proptest! {
        #[test]
        fn complement_is_exact_partition(
            bins in 2usize..40,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let g = FrequencyGrid::new(1_000.0, 9_000.0, bins).unwrap();
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let chosen: Vec<usize> = (0..bins).filter(|_| rng.gen_bool(0.5)).collect();
            let comp = g.complement(&chosen);
            let mut all: Vec<usize> = chosen.iter().chain(comp.iter()).copied().collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..bins).collect::<Vec<_>>());
        }
    }
}
