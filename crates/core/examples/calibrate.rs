//! Calibration utility: measures ACTION's ranging accuracy per
//! environment and distance, printing mean absolute error, bias, and
//! spread. This is the tool used to set the environment constants in
//! `piano_acoustics::environment` (see DESIGN.md §5); rerun it after
//! touching transducer gains, dispersion, noise, or jitter parameters.
//!
//! ```text
//! cargo run --release -p piano-core --example calibrate
//! ```

use piano_acoustics::{AcousticField, Environment, Position};
use piano_bluetooth::{BluetoothLink, PairingRegistry};
use piano_core::action::{run_action, DistanceEstimate};
use piano_core::config::ActionConfig;
use piano_core::device::Device;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let trials = 12;
    let cfg = ActionConfig::default();
    for env_fn in [
        Environment::anechoic as fn() -> Environment,
        Environment::office,
        Environment::home,
        Environment::street,
        Environment::restaurant,
    ] {
        let name = env_fn().name.clone();
        for d in [0.5, 1.0, 1.5, 2.0] {
            let mut errs = vec![];
            let mut absent = 0;
            for t in 0..trials {
                let seed = 1000 + t;
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut field = AcousticField::new(env_fn(), seed ^ 0x5555);
                let mut link = BluetoothLink::new();
                let mut reg = PairingRegistry::new();
                let a = Device::phone(1, Position::ORIGIN, seed + 7);
                let v = Device::phone(2, Position::new(d, 0.0, 0.0), seed + 13);
                reg.pair(a.id, v.id, &mut rng);
                match run_action(&cfg, &mut field, &mut link, &reg, &a, &v, 0.0, &mut rng)
                    .unwrap()
                    .estimate
                {
                    DistanceEstimate::Measured(est) => errs.push(est - d),
                    DistanceEstimate::SignalAbsent => absent += 1,
                }
            }
            let n = errs.len().max(1) as f64;
            let mean = errs.iter().sum::<f64>() / n;
            let var =
                errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / (n - 1.0).max(1.0);
            let mae = errs.iter().map(|e| e.abs()).sum::<f64>() / n;
            println!(
                "{name:10} d={d:.1}  mae={:6.1}cm  bias={:6.1}cm  std={:5.1}cm  absent={absent}",
                mae * 100.0,
                mean * 100.0,
                var.sqrt() * 100.0
            );
        }
    }
}
