//! Decibel conversions.
//!
//! Attenuation budgets in the acoustic substrate (air absorption, wall
//! transmission loss, hardware response ripple) are specified in dB and
//! converted to linear gains at the point of use.

/// Converts a power ratio to decibels: `10·log₁₀(ratio)`.
///
/// Returns `-inf` for a zero ratio.
///
/// # Panics
///
/// Panics if `ratio` is negative.
pub fn power_to_db(ratio: f64) -> f64 {
    assert!(ratio >= 0.0, "power ratio must be non-negative");
    10.0 * ratio.log10()
}

/// Converts decibels to a power ratio: `10^(db/10)`.
pub fn db_to_power(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts an amplitude ratio to decibels: `20·log₁₀(ratio)`.
///
/// # Panics
///
/// Panics if `ratio` is negative.
pub fn amplitude_to_db(ratio: f64) -> f64 {
    assert!(ratio >= 0.0, "amplitude ratio must be non-negative");
    20.0 * ratio.log10()
}

/// Converts decibels to an amplitude ratio: `10^(db/20)`.
pub fn db_to_amplitude(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_conversions() {
        assert!((power_to_db(100.0) - 20.0).abs() < 1e-12);
        assert!((db_to_power(30.0) - 1000.0).abs() < 1e-9);
        assert!((amplitude_to_db(10.0) - 20.0).abs() < 1e-12);
        assert!((db_to_amplitude(-20.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn zero_power_is_negative_infinity() {
        assert_eq!(power_to_db(0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn amplitude_and_power_db_relate_by_square() {
        let amp = 0.25;
        assert!((amplitude_to_db(amp) - power_to_db(amp * amp)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_ratio_panics() {
        let _ = power_to_db(-1.0);
    }

    proptest! {
        #[test]
        fn roundtrip_power(db in -120.0f64..120.0) {
            prop_assert!((power_to_db(db_to_power(db)) - db).abs() < 1e-9);
        }

        #[test]
        fn roundtrip_amplitude(db in -120.0f64..120.0) {
            prop_assert!((amplitude_to_db(db_to_amplitude(db)) - db).abs() < 1e-9);
        }
    }
}
