//! Statistics used by the evaluation harness and the paper's FRR/FAR model.
//!
//! Sec. VI-C of the paper models the estimated distance as Gaussian around
//! the true distance with a constant standard deviation σ_d, and derives
//! false-rejection/false-acceptance rates from Gaussian tail probabilities.
//! [`q_function`] provides that tail; [`Summary`]/[`Welford`] provide the
//! error-bar statistics behind Figs. 1 and 2.

/// Streaming mean/variance accumulator (Welford's algorithm).
///
/// # Example
///
/// ```
/// use piano_dsp::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_std() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Unbiased sample variance (divides by n-1; 0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn sample_std(&self) -> f64 {
        self.sample_variance().sqrt()
    }
}

/// Five-number-plus summary of a sample, used for error-bar rendering.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 when n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (mean of the middle two for even counts).
    pub median: f64,
}

impl Summary {
    /// Summarizes a slice. Returns a zeroed summary for empty input.
    pub fn of(data: &[f64]) -> Self {
        if data.is_empty() {
            return Summary::default();
        }
        let mut w = Welford::new();
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in data {
            w.push(x);
            min = min.min(x);
            max = max.max(x);
        }
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
        };
        Summary {
            count: data.len(),
            mean: w.mean(),
            std: w.sample_std(),
            min,
            max,
            median,
        }
    }
}

/// Percentile via linear interpolation between order statistics
/// (`p` in `[0, 100]`). Returns `None` for empty input.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]`.
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if data.is_empty() {
        return None;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Complementary error function, accurate to roughly 1e-13 over the real
/// line: Maclaurin series of `erf` for small arguments and a Lentz-evaluated
/// continued fraction for the tail.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let result = if z < 2.5 {
        1.0 - erf_series(z)
    } else {
        erfc_continued_fraction(z)
    };
    if x >= 0.0 {
        result
    } else {
        2.0 - result
    }
}

/// Maclaurin series for erf, adequate for |x| < ~3.
fn erf_series(x: f64) -> f64 {
    let mut term = x; // n = 0 term before the 2/√π factor
    let mut sum = x;
    let x2 = x * x;
    for n in 1..200 {
        term *= -x2 / n as f64;
        let contribution = term / (2 * n + 1) as f64;
        sum += contribution;
        if contribution.abs() < 1e-17 * sum.abs().max(1e-300) {
            break;
        }
    }
    sum * 2.0 / std::f64::consts::PI.sqrt()
}

/// Continued fraction erfc(x) = e^{-x²}/√π · 1/(x + 1/2/(x + 1/(x + 3/2/(x + ...))))
/// evaluated with the modified Lentz algorithm; valid for x ≥ ~2.
fn erfc_continued_fraction(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut f = x.max(TINY);
    let mut c = f;
    let mut d = 0.0;
    for k in 1..300 {
        let a = k as f64 / 2.0; // coefficients 1/2, 1, 3/2, ...
        d = x + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = x + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / (std::f64::consts::PI.sqrt() * f)
}

/// Standard normal CDF Φ(x).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Gaussian tail probability Q(x) = P(Z > x) = 1 − Φ(x).
///
/// This is the quantity behind the paper's FRR/FAR model: a legitimate user
/// at distance `d ≤ τ` is falsely rejected with probability
/// `Q((τ − d)/σ_d)`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Mean absolute deviation of a zero-mean Gaussian with standard deviation
/// `sigma`: `σ·√(2/π)`. Converts between the paper's σ_d and the mean
/// absolute errors plotted in Fig. 1.
pub fn gaussian_mean_abs(sigma: f64) -> f64 {
    sigma * (2.0 / std::f64::consts::PI).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn welford_empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn welford_single_observation() {
        let mut w = Welford::new();
        w.push(42.0);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn summary_of_known_data() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    fn median_odd_count() {
        let s = Summary::of(&[5.0, 1.0, 3.0]);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn percentile_basics() {
        let data = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&data, 0.0), Some(10.0));
        assert_eq!(percentile(&data, 100.0), Some(50.0));
        assert_eq!(percentile(&data, 50.0), Some(30.0));
        assert_eq!(percentile(&data, 25.0), Some(20.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "[0, 100]")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 150.0);
    }

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
        assert!(erfc(6.0) < 1e-15);
    }

    #[test]
    fn q_function_known_values() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-9);
        assert!((q_function(1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((q_function(1.96) - 0.024_998).abs() < 1e-4);
        assert!((q_function(-1.0) - 0.841_344_7).abs() < 1e-6);
    }

    #[test]
    fn normal_cdf_complements_q() {
        for &x in &[-2.0, -0.5, 0.0, 0.7, 3.0] {
            assert!((normal_cdf(x) + q_function(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_mean_abs_factor() {
        assert!((gaussian_mean_abs(1.0) - 0.797_884_56).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn welford_matches_two_pass(
            data in proptest::collection::vec(-1e3f64..1e3, 2..200),
        ) {
            let mut w = Welford::new();
            for &x in &data {
                w.push(x);
            }
            let mean = data.iter().sum::<f64>() / data.len() as f64;
            let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>()
                / (data.len() - 1) as f64;
            prop_assert!((w.mean() - mean).abs() < 1e-8 * (1.0 + mean.abs()));
            prop_assert!((w.sample_variance() - var).abs() < 1e-6 * (1.0 + var));
        }

        #[test]
        fn q_is_monotone_decreasing(a in -5.0f64..5.0, b in -5.0f64..5.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(q_function(lo) >= q_function(hi) - 1e-12);
        }

        #[test]
        fn percentile_is_within_data_range(
            data in proptest::collection::vec(-100.0f64..100.0, 1..50),
            p in 0.0f64..=100.0,
        ) {
            let v = percentile(&data, p).unwrap();
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
        }
    }
}
