//! Minimal complex arithmetic used by the FFT and frequency-domain filters.
//!
//! We deliberately implement this instead of pulling in `num-complex`: the
//! reproduction only needs a handful of operations and keeping the numeric
//! core dependency-free makes the workspace easy to audit.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
///
/// # Example
///
/// ```
/// use piano_dsp::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, Complex64::new(-1.0, 0.0));
/// ```
///
/// The layout is `#[repr(C)]` (`re` then `im`), so a `&[Complex64]` is
/// interleaved `[re, im, re, im, …]` memory — the [`crate::simd`] kernels
/// rely on this to load complexes directly into vector registers.
#[repr(C)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Complex64 {
    /// Real component.
    pub re: f64,
    /// Imaginary component.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a unit-magnitude complex number `e^{iθ}` from a phase angle.
    ///
    /// # Example
    ///
    /// ```
    /// use piano_dsp::Complex64;
    ///
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!((z.re).abs() < 1e-12 && (z.im - 2.0).abs() < 1e-12);
    /// ```
    #[inline]
    pub fn from_polar(magnitude: f64, phase: f64) -> Self {
        Complex64::new(magnitude * phase.cos(), magnitude * phase.sin())
    }

    /// Unit phasor `e^{iθ}`.
    #[inline]
    pub fn cis(phase: f64) -> Self {
        Complex64::from_polar(1.0, phase)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared magnitude `re² + im²`; cheaper than [`Complex64::abs`].
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude (Euclidean norm).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }

    /// Returns `true` if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        (self * rhs.conj()).scale(1.0 / d)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(3.0, -4.0);
        assert_eq!(a + Complex64::ZERO, a);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a - a, Complex64::ZERO);
        assert_eq!(-a, Complex64::new(-3.0, 4.0));
    }

    #[test]
    fn multiplication_matches_expansion() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        // (1+2i)(3-i) = 3 - i + 6i - 2i² = 5 + 5i
        assert_eq!(a * b, Complex64::new(5.0, 5.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(2.5, -1.5);
        let b = Complex64::new(-0.5, 3.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < EPS);
    }

    #[test]
    fn norm_and_abs_agree() {
        let a = Complex64::new(3.0, 4.0);
        assert!((a.abs() - 5.0).abs() < EPS);
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < EPS);
        assert!((z.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn conjugate_negates_imaginary() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex64::new(1.0, -2.0));
        assert!((z * z.conj()).im.abs() < EPS);
    }

    #[test]
    fn sum_folds_all_elements() {
        let total: Complex64 = (0..4).map(|k| Complex64::new(k as f64, 1.0)).sum();
        assert_eq!(total, Complex64::new(6.0, 4.0));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }
}
