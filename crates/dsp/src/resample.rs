//! Fractional delay and clock-skew resampling.
//!
//! Acoustic distance at 44.1 kHz is 0.778 cm per sample, and the paper
//! reports centimeter-scale ranging errors — so the channel simulator cannot
//! round propagation delays to whole samples. [`FractionalDelayReader`]
//! evaluates a source signal at arbitrary real-valued positions using
//! windowed-sinc interpolation (Lagrange-quality band-limited interpolation),
//! which the acoustic field uses both for sub-sample propagation delay and
//! for the small sample-clock mismatch (skew, measured in ppm) between two
//! devices' ADCs/DACs.

/// Number of sinc taps used on each side of the interpolation point.
const HALF_TAPS: usize = 16;

/// Band-limited interpolating reader over a fixed source buffer.
///
/// Positions are in source-sample units; reads outside the source return
/// silence, so callers can render partially-overlapping recordings without
/// bounds bookkeeping.
///
/// # Example
///
/// ```
/// use piano_dsp::resample::FractionalDelayReader;
/// use piano_dsp::tone;
///
/// let src = tone::sine(1_000.0, 0.0, 1.0, 44_100.0, 512);
/// let reader = FractionalDelayReader::new(&src);
/// // Reading at integer positions reproduces the source.
/// assert!((reader.sample_at(100.0) - src[100]).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct FractionalDelayReader<'a> {
    source: &'a [f64],
}

impl<'a> FractionalDelayReader<'a> {
    /// Wraps a source buffer.
    pub fn new(source: &'a [f64]) -> Self {
        FractionalDelayReader { source }
    }

    /// Interpolated sample value at a real-valued source position.
    ///
    /// Returns `0.0` outside `[0, len)`.
    pub fn sample_at(&self, position: f64) -> f64 {
        if !position.is_finite() {
            return 0.0;
        }
        let n = self.source.len() as isize;
        if position < -(HALF_TAPS as f64) || position >= (n as f64) + HALF_TAPS as f64 {
            return 0.0;
        }
        let center = position.floor() as isize;
        let frac = position - center as f64;
        // Fast path: integer positions need no interpolation.
        if frac == 0.0 {
            return if center >= 0 && center < n {
                self.source[center as usize]
            } else {
                0.0
            };
        }
        let mut acc = 0.0;
        for t in -(HALF_TAPS as isize - 1)..=(HALF_TAPS as isize) {
            let idx = center + t;
            if idx < 0 || idx >= n {
                continue;
            }
            let x = frac - t as f64; // distance from the tap
            let sinc = sinc(x);
            // Hann window over the tap span keeps the kernel compact.
            let w = 0.5 + 0.5 * (std::f64::consts::PI * x / HALF_TAPS as f64).cos();
            acc += self.source[idx as usize] * sinc * w;
        }
        acc
    }

    /// Renders `len` output samples starting at source position `start`,
    /// advancing by `step` source samples per output sample.
    ///
    /// `step = 1.0` is a pure fractional delay; `step = 1.0 + skew` models a
    /// receiver whose clock runs `skew` (e.g. `100e-6` for +100 ppm) faster
    /// than the source clock.
    pub fn render(&self, start: f64, step: f64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| self.sample_at(start + step * i as f64))
            .collect()
    }

    /// Adds rendered samples into an accumulator buffer (mixes in place),
    /// scaled by `gain`. Same sampling semantics as [`Self::render`].
    pub fn mix_into(&self, out: &mut [f64], start: f64, step: f64, gain: f64) {
        // Skip output regions that cannot overlap the source at all.
        let n = self.source.len() as f64;
        for (i, o) in out.iter_mut().enumerate() {
            let pos = start + step * i as f64;
            if pos < -(HALF_TAPS as f64) {
                continue;
            }
            if pos > n + HALF_TAPS as f64 {
                break;
            }
            *o += gain * self.sample_at(pos);
        }
    }
}

#[inline]
fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = std::f64::consts::PI * x;
        px.sin() / px
    }
}

/// Delays a signal by a (possibly fractional) number of samples, producing a
/// buffer of length `signal.len() + delay.ceil() as usize`.
pub fn delay_signal(signal: &[f64], delay: f64) -> Vec<f64> {
    assert!(delay >= 0.0, "delay must be non-negative");
    let reader = FractionalDelayReader::new(signal);
    let out_len = signal.len() + delay.ceil() as usize;
    reader.render(-delay, 1.0, out_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tone;
    use proptest::prelude::*;

    #[test]
    fn integer_positions_reproduce_source() {
        let src: Vec<f64> = (0..64).map(|i| (i as f64).sqrt()).collect();
        let r = FractionalDelayReader::new(&src);
        for (i, &want) in src.iter().enumerate() {
            assert_eq!(r.sample_at(i as f64), want);
        }
    }

    #[test]
    fn out_of_bounds_is_silent() {
        let src = vec![1.0; 16];
        let r = FractionalDelayReader::new(&src);
        assert_eq!(r.sample_at(-100.0), 0.0);
        assert_eq!(r.sample_at(1e9), 0.0);
        assert_eq!(r.sample_at(f64::NAN), 0.0);
    }

    #[test]
    fn half_sample_delay_of_sine_matches_analytic() {
        let fs = 44_100.0;
        let f = 5_000.0;
        let src = tone::sine(f, 0.0, 1.0, fs, 2048);
        let r = FractionalDelayReader::new(&src);
        let w = 2.0 * std::f64::consts::PI * f / fs;
        // Interior points: interpolated value should match sin(w(n+0.5)).
        for n in 100..1900 {
            let got = r.sample_at(n as f64 + 0.5);
            let want = (w * (n as f64 + 0.5)).sin();
            assert!((got - want).abs() < 1e-3, "n={n} got={got} want={want}");
        }
    }

    #[test]
    fn delay_signal_shifts_by_requested_amount() {
        let fs = 44_100.0;
        let src = tone::sine(3_000.0, 0.0, 1.0, fs, 1024);
        let delayed = delay_signal(&src, 10.25);
        let w = 2.0 * std::f64::consts::PI * 3_000.0 / fs;
        for (n, &got) in delayed.iter().enumerate().take(800).skip(200) {
            let want = (w * (n as f64 - 10.25)).sin();
            assert!((got - want).abs() < 2e-3, "n={n}");
        }
    }

    #[test]
    fn skewed_render_stretches_signal() {
        // With a +1000 ppm step, reading 1000 samples advances 1001 source
        // samples; a low-frequency sine read this way shows a phase lead.
        let fs = 44_100.0;
        let src = tone::sine(1_000.0, 0.0, 1.0, fs, 4096);
        let r = FractionalDelayReader::new(&src);
        let out = r.render(0.0, 1.001, 2000);
        let w = 2.0 * std::f64::consts::PI * 1_000.0 / fs;
        for n in (500..1500).step_by(100) {
            let want = (w * (n as f64 * 1.001)).sin();
            assert!((out[n] - want).abs() < 1e-2, "n={n}");
        }
    }

    #[test]
    fn mix_into_accumulates_with_gain() {
        let src = vec![1.0; 8];
        let r = FractionalDelayReader::new(&src);
        let mut out = vec![10.0; 8];
        r.mix_into(&mut out, 0.0, 1.0, 0.5);
        for &v in &out {
            assert!((v - 10.5).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn delay_signal_rejects_negative_delay() {
        let _ = delay_signal(&[1.0], -1.0);
    }

    proptest! {
        #[test]
        fn interpolation_is_bounded_by_source_extremes_for_smooth_signals(
            delay in 0.0f64..0.99,
        ) {
            // For a pure low-frequency sine, interpolation should not
            // overshoot the amplitude materially (Gibbs is controlled by the
            // Hann-windowed kernel).
            let src = tone::sine(500.0, 0.0, 1.0, 44_100.0, 1024);
            let r = FractionalDelayReader::new(&src);
            for n in 100..900 {
                let v = r.sample_at(n as f64 + delay);
                prop_assert!(v.abs() < 1.01);
            }
        }
    }
}
