//! Cross-correlation.
//!
//! The paper's Fig. 2b compares ACTION against ACTION-CC, a variant whose
//! detector is the classic cross-correlation used by BeepBeep. This module
//! provides that detector: [`cross_correlate`] computes
//! `c[k] = Σ_n x[n+k]·s[n]` for every alignment `k` of the reference `s`
//! inside the recording `x`, and [`best_alignment`] returns the argmax —
//! optionally normalized per window so loud noise bursts don't win.
//!
//! Both a direct `O(N·M)` implementation and an FFT-based `O(N log N)` one
//! are provided; they produce identical results and the tests enforce that.
//! The FFT path rides the [`crate::simd`] backend dispatch transparently
//! (its transforms go through [`FftPlan::forward`]), and stays
//! bit-identical across backends.

use crate::complex::Complex64;
use crate::fft::{next_pow2, FftPlan};

/// Valid-mode cross-correlation: output index `k` is the correlation of
/// `signal[k..k+reference.len()]` with `reference`.
///
/// Returns an empty vector when the reference is longer than the signal or
/// either is empty.
pub fn cross_correlate(signal: &[f64], reference: &[f64]) -> Vec<f64> {
    if reference.is_empty() || signal.len() < reference.len() {
        return Vec::new();
    }
    let lags = signal.len() - reference.len() + 1;
    (0..lags)
        .map(|k| {
            signal[k..k + reference.len()]
                .iter()
                .zip(reference)
                .map(|(a, b)| a * b)
                .sum()
        })
        .collect()
}

/// FFT-based valid-mode cross-correlation; identical output to
/// [`cross_correlate`] up to floating-point rounding, but `O(N log N)`.
pub fn cross_correlate_fft(signal: &[f64], reference: &[f64]) -> Vec<f64> {
    if reference.is_empty() || signal.len() < reference.len() {
        return Vec::new();
    }
    let lags = signal.len() - reference.len() + 1;
    let n = next_pow2(signal.len() + reference.len());
    let plan = FftPlan::new(n);

    let mut sig: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_real(x)).collect();
    sig.resize(n, Complex64::ZERO);
    plan.forward(&mut sig);

    // Correlation = convolution with the time-reversed reference, i.e.
    // multiply by the conjugate spectrum.
    let mut refr: Vec<Complex64> = reference.iter().map(|&x| Complex64::from_real(x)).collect();
    refr.resize(n, Complex64::ZERO);
    plan.forward(&mut refr);

    for (s, r) in sig.iter_mut().zip(&refr) {
        *s *= r.conj();
    }
    plan.inverse(&mut sig);
    sig[..lags].iter().map(|z| z.re).collect()
}

/// Result of a correlation search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Alignment {
    /// Offset (in samples) of the best alignment of the reference within the
    /// signal.
    pub offset: usize,
    /// Correlation score at that offset (normalized if requested).
    pub score: f64,
}

/// Finds the best alignment of `reference` inside `signal`.
///
/// With `normalized = true` each window's correlation is divided by the
/// window's energy square root (a normalized matched filter), which is the
/// robust form typically used in ranging systems.
///
/// Returns `None` if the reference does not fit inside the signal.
pub fn best_alignment(signal: &[f64], reference: &[f64], normalized: bool) -> Option<Alignment> {
    if reference.is_empty() || signal.len() < reference.len() {
        return None;
    }
    let raw = cross_correlate_fft(signal, reference);
    if !normalized {
        let (offset, &score) = raw.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        return Some(Alignment { offset, score });
    }

    // Rolling window energy for normalization.
    let m = reference.len();
    let mut energy = signal[..m].iter().map(|x| x * x).sum::<f64>();
    let mut best = Alignment {
        offset: 0,
        score: f64::NEG_INFINITY,
    };
    for (k, &c) in raw.iter().enumerate() {
        let denom = energy.max(1e-12).sqrt();
        let score = c / denom;
        if score > best.score {
            best = Alignment { offset: k, score };
        }
        if k + m < signal.len() {
            energy += signal[k + m] * signal[k + m] - signal[k] * signal[k];
            energy = energy.max(0.0);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tone;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn direct_and_fft_agree() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let signal: Vec<f64> = (0..300).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let reference: Vec<f64> = (0..64).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let a = cross_correlate(&signal, &reference);
        let b = cross_correlate_fft(&signal, &reference);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn finds_embedded_copy() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let reference: Vec<f64> = (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut signal = vec![0.0; 1000];
        let true_offset = 313;
        for (i, &r) in reference.iter().enumerate() {
            signal[true_offset + i] = r;
        }
        let found = best_alignment(&signal, &reference, false).unwrap();
        assert_eq!(found.offset, true_offset);
    }

    #[test]
    fn normalized_resists_loud_noise_burst() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let reference: Vec<f64> = (0..128).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut signal = vec![0.0; 2000];
        let true_offset = 500;
        for (i, &r) in reference.iter().enumerate() {
            signal[true_offset + i] = 0.5 * r;
        }
        // Loud unrelated burst elsewhere.
        for s in signal[1500..1628].iter_mut() {
            *s = rng.gen_range(-20.0..20.0);
        }
        let found = best_alignment(&signal, &reference, true).unwrap();
        assert_eq!(found.offset, true_offset);
    }

    #[test]
    fn sparse_multitone_correlation_is_ambiguous_under_phase_distortion() {
        // Core phenomenon behind Fig. 2b: a sum of a few sines has a
        // quasi-periodic autocorrelation; per-tone phase shifts displace the
        // global maximum by whole sidelobes. This test documents the effect.
        let fs = 44_100.0;
        let tones: Vec<tone::ToneSpec> = [25_500.0f64, 27_800.0, 31_200.0, 33_100.0]
            .iter()
            .map(|&f| tone::ToneSpec::new(f, 1.0))
            .collect();
        let reference = tone::multi_tone(&tones, fs, 4096);
        let shifted: Vec<tone::ToneSpec> = tones
            .iter()
            .enumerate()
            .map(|(i, t)| t.with_phase(1.1 + 1.9 * i as f64))
            .collect();
        let mut signal = vec![0.0; 12_000];
        let true_offset = 4000;
        let distorted = tone::multi_tone(&shifted, fs, 4096);
        for (i, &v) in distorted.iter().enumerate() {
            signal[true_offset + i] = v;
        }
        let found = best_alignment(&signal, &reference, true).unwrap();
        let err = (found.offset as isize - true_offset as isize).unsigned_abs();
        assert!(
            err > 10,
            "phase distortion should displace the correlation peak, err={err}"
        );
    }

    #[test]
    fn empty_inputs_yield_none() {
        assert!(best_alignment(&[], &[1.0], false).is_none());
        assert!(best_alignment(&[1.0, 2.0], &[1.0, 2.0, 3.0], true).is_none());
        assert!(cross_correlate(&[1.0], &[]).is_empty());
    }

    #[test]
    fn reference_equal_to_signal_gives_single_lag() {
        let s = [1.0, -2.0, 3.0];
        let c = cross_correlate(&s, &s);
        assert_eq!(c.len(), 1);
        assert!((c[0] - 14.0).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn fft_path_matches_direct_path(
            sig in proptest::collection::vec(-10.0f64..10.0, 16..80),
            refr in proptest::collection::vec(-10.0f64..10.0, 1..16),
        ) {
            let a = cross_correlate(&sig, &refr);
            let b = cross_correlate_fft(&sig, &refr);
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-6);
            }
        }

        #[test]
        fn autocorrelation_peaks_at_zero_lag(
            seed in 0u64..1000,
        ) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let reference: Vec<f64> = (0..64).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
            let mut signal = vec![0.0; 256];
            let offset = (seed % 180) as usize;
            for (i, &r) in reference.iter().enumerate() {
                signal[offset + i] = r;
            }
            let found = best_alignment(&signal, &reference, false).unwrap();
            prop_assert_eq!(found.offset, offset);
        }
    }
}
