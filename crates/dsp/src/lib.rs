//! # piano-dsp
//!
//! Self-contained digital signal processing primitives for the PIANO
//! reproduction (Gong et al., ICDCS 2017).
//!
//! Everything in this crate is implemented from scratch — no external DSP
//! dependencies — because the reproduction needs full control over numerics
//! (the paper's Algorithm 2 indexes a raw, full-length power spectrum,
//! including bins above Nyquist) and deterministic behaviour across
//! platforms.
//!
//! The crate provides:
//!
//! * [`Complex64`] — minimal complex arithmetic ([`complex`]).
//! * [`fft`] — iterative radix-2 Cooley–Tukey FFT/IFFT and real-signal
//!   helpers.
//! * [`sparse`] — sparse spectral evaluation: Goertzel bank and the
//!   sliding DFT behind the detector's fine scan.
//! * [`simd`] — the runtime-dispatched SIMD kernel layer (SSE2/AVX2 on
//!   x86_64, NEON on aarch64) behind the FFT butterflies, the sliding
//!   DFT, and the Goertzel bank, with the scalar kernels as the
//!   universal fallback and bit-exact reference.
//! * [`spectrum`] — power spectra normalized so a sine of amplitude `B`
//!   measures `B²` at its bin, matching the paper's `R_f = (32000/n)²`
//!   convention.
//! * [`window`] — Hann / Hamming / Blackman / rectangular windows.
//! * [`correlate`] — direct and FFT-based cross-correlation (the ACTION-CC
//!   baseline of Fig. 2b is built on this).
//! * [`filter`] — windowed-sinc FIR design and convolution.
//! * [`resample`] — fractional-sample delay and clock-skew resampling used
//!   by the acoustic channel simulator.
//! * [`tone`] — sine/multi-tone synthesis (Step I of ACTION).
//! * [`stats`] — streaming statistics, percentiles, and the Gaussian
//!   Q-function used by the paper's FRR/FAR model (Sec. VI-C).
//! * [`db`] — decibel conversions.
//!
//! # Performance architecture
//!
//! The detector's scan loop (paper Algorithm 1) is the system's hottest
//! path, and this crate is engineered so that loop touches no avoidable
//! work:
//!
//! 1. **Plan cache** — [`fft::cached_plan`] / [`fft::cached_real_plan`]
//!    memoize twiddle/bit-reversal tables per transform size behind a
//!    `OnceLock`, so one-shot spectra, correlation, and FIR convolution
//!    never rebuild trigonometric tables.
//! 2. **Real-input FFT** — [`fft::RealFftPlan`] computes an N-point real
//!    spectrum through one N/2-point complex transform (≈2× fewer
//!    butterflies than the retained [`fft::fft_real_padded`] reference).
//! 3. **Branch-free butterflies** — [`fft::FftPlan`] keeps separate
//!    forward and inverse twiddle tables, removing the per-butterfly
//!    conjugation branch.
//! 4. **Sparse evaluation** — [`sparse::GoertzelBank`] evaluates exactly
//!    the bins a caller needs, and [`sparse::SlidingDft`] updates tracked
//!    bins in `O(step)` per window shift, which is what makes the
//!    detector's 10-sample fine scan effectively free compared to dense
//!    re-transformation.
//! 5. **SIMD dispatch** — the butterfly stages, the sliding-DFT
//!    correction loop, and the Goertzel bank run vectorized
//!    ([`simd`]: SSE2/AVX2/NEON, runtime-selected, `PIANO_DSP_SIMD`
//!    overridable) with a **bit-exact** contract against the scalar
//!    reference, so backend choice can never move a detection
//!    threshold.
//!
//! Everything is allocation-free on the hot path: callers own scratch
//! buffers ([`spectrum::SpectrumScratch`]) and analyzers are immutable and
//! `Sync`, so scan workers share plans and fan out without locks.
//!
//! # Example
//!
//! ```
//! use piano_dsp::{spectrum, tone};
//!
//! // Synthesize a 1 kHz tone and confirm its power lands in the right bin.
//! let fs = 44_100.0;
//! let sine = tone::sine(1_000.0, 0.0, 100.0, fs, 4096);
//! let ps = spectrum::power_spectrum(&sine);
//! let peak = spectrum::peak_bin(&ps, 1..2048);
//! assert_eq!(peak, (1_000.0 / fs * 4096.0).round() as usize);
//! ```

pub mod complex;
pub mod correlate;
pub mod db;
pub mod fft;
pub mod filter;
pub mod resample;
pub mod simd;
pub mod sparse;
pub mod spectrum;
pub mod stats;
pub mod tone;
pub mod window;

pub use complex::Complex64;
