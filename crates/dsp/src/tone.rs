//! Sine and multi-tone synthesis (Step I of the ACTION protocol).
//!
//! A PIANO reference signal is a sum of sine waves at randomly chosen
//! candidate frequencies (paper Sec. IV-B). The synthesis here is plain
//! `sin(2πfn/f_s + φ)`; when `f` exceeds Nyquist (the paper's candidates are
//! 25–35 kHz at f_s = 44.1 kHz) the samples automatically alias to the
//! folded physical frequency, exactly as they would when an Android app
//! writes such samples to a DAC.

/// One component of a multi-tone signal.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ToneSpec {
    /// Frequency in Hz (may exceed Nyquist; it will alias, as in the paper).
    pub frequency_hz: f64,
    /// Peak amplitude in linear sample units.
    pub amplitude: f64,
    /// Initial phase in radians.
    pub phase: f64,
}

impl ToneSpec {
    /// Creates a tone spec with zero initial phase.
    pub fn new(frequency_hz: f64, amplitude: f64) -> Self {
        ToneSpec {
            frequency_hz,
            amplitude,
            phase: 0.0,
        }
    }

    /// Sets the initial phase, returning the modified spec.
    #[must_use]
    pub fn with_phase(mut self, phase: f64) -> Self {
        self.phase = phase;
        self
    }
}

/// Synthesizes a single sine wave.
///
/// # Example
///
/// ```
/// use piano_dsp::tone::sine;
///
/// let s = sine(441.0, 0.0, 1.0, 44_100.0, 100); // one full cycle
/// assert!(s[0].abs() < 1e-12);
/// assert!((s[25] - 1.0).abs() < 1e-10); // quarter cycle peaks
/// ```
pub fn sine(
    frequency_hz: f64,
    phase: f64,
    amplitude: f64,
    sample_rate: f64,
    len: usize,
) -> Vec<f64> {
    let w = 2.0 * std::f64::consts::PI * frequency_hz / sample_rate;
    (0..len)
        .map(|n| amplitude * (w * n as f64 + phase).sin())
        .collect()
}

/// Synthesizes a sum of tones into a fresh buffer.
pub fn multi_tone(tones: &[ToneSpec], sample_rate: f64, len: usize) -> Vec<f64> {
    let mut out = vec![0.0; len];
    add_multi_tone(&mut out, tones, sample_rate);
    out
}

/// Adds a sum of tones into an existing buffer (mixes in place).
pub fn add_multi_tone(buf: &mut [f64], tones: &[ToneSpec], sample_rate: f64) {
    for t in tones {
        let w = 2.0 * std::f64::consts::PI * t.frequency_hz / sample_rate;
        for (n, s) in buf.iter_mut().enumerate() {
            *s += t.amplitude * (w * n as f64 + t.phase).sin();
        }
    }
}

/// Synthesizes a linear chirp from `f0` to `f1` over the buffer.
///
/// Used by ablation experiments to contrast multi-tone reference signals
/// with the wideband signals classic ranging systems (e.g. BeepBeep) use.
pub fn chirp(f0: f64, f1: f64, amplitude: f64, sample_rate: f64, len: usize) -> Vec<f64> {
    let dur = len as f64 / sample_rate;
    let k = (f1 - f0) / dur;
    (0..len)
        .map(|n| {
            let t = n as f64 / sample_rate;
            amplitude * (2.0 * std::f64::consts::PI * (f0 * t + 0.5 * k * t * t)).sin()
        })
        .collect()
}

/// Root-mean-square of a signal.
pub fn rms(signal: &[f64]) -> f64 {
    if signal.is_empty() {
        return 0.0;
    }
    (signal.iter().map(|x| x * x).sum::<f64>() / signal.len() as f64).sqrt()
}

/// Peak absolute amplitude of a signal.
pub fn peak(signal: &[f64]) -> f64 {
    signal.iter().fold(0.0, |acc: f64, &x| acc.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sine_respects_amplitude_and_phase() {
        let s = sine(1000.0, std::f64::consts::FRAC_PI_2, 3.0, 44_100.0, 8);
        assert!((s[0] - 3.0).abs() < 1e-12); // sin(π/2) = 1 scaled by 3
    }

    #[test]
    fn aliasing_folds_over_nyquist() {
        // 30 kHz at 44.1 kHz sampling is indistinguishable from a (negated)
        // 14.1 kHz tone — the identity the paper's inaudible band relies on.
        let fs = 44_100.0;
        let hi = sine(30_000.0, 0.0, 1.0, fs, 512);
        let folded = sine(fs - 30_000.0, 0.0, 1.0, fs, 512);
        for (a, b) in hi.iter().zip(&folded) {
            assert!((a + b).abs() < 1e-9, "expected fold with sign flip");
        }
    }

    #[test]
    fn multi_tone_is_sum_of_sines() {
        let tones = [
            ToneSpec::new(1000.0, 1.0),
            ToneSpec::new(2000.0, 0.5).with_phase(0.3),
        ];
        let combined = multi_tone(&tones, 44_100.0, 64);
        let a = sine(1000.0, 0.0, 1.0, 44_100.0, 64);
        let b = sine(2000.0, 0.3, 0.5, 44_100.0, 64);
        for i in 0..64 {
            assert!((combined[i] - (a[i] + b[i])).abs() < 1e-12);
        }
    }

    #[test]
    fn rms_of_unit_sine_is_inverse_sqrt2() {
        let s = sine(441.0, 0.0, 1.0, 44_100.0, 4410); // whole cycles
        assert!((rms(&s) - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-3);
    }

    #[test]
    fn rms_of_empty_is_zero() {
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn peak_finds_largest_magnitude() {
        assert_eq!(peak(&[0.1, -0.9, 0.5]), 0.9);
    }

    #[test]
    fn chirp_starts_at_low_frequency() {
        // Compare the first few samples of the chirp with a pure f0 sine;
        // they should agree closely before the sweep departs.
        let c = chirp(1000.0, 2000.0, 1.0, 44_100.0, 4410);
        let s = sine(1000.0, 0.0, 1.0, 44_100.0, 16);
        for i in 0..16 {
            assert!((c[i] - s[i]).abs() < 1e-2);
        }
    }

    proptest! {
        #[test]
        fn mixed_signal_peak_bounded_by_amplitude_sum(
            amps in proptest::collection::vec(0.0f64..100.0, 1..6),
            freqs in proptest::collection::vec(100.0f64..20_000.0, 6),
        ) {
            let tones: Vec<ToneSpec> = amps
                .iter()
                .zip(&freqs)
                .map(|(&a, &f)| ToneSpec::new(f, a))
                .collect();
            let sig = multi_tone(&tones, 44_100.0, 256);
            let bound: f64 = amps.iter().take(tones.len()).sum();
            prop_assert!(peak(&sig) <= bound + 1e-9);
        }
    }
}
