//! Sparse spectral evaluation: Goertzel bank and sliding DFT.
//!
//! The ACTION detector only ever *reads* `2θ+1` bins around each candidate
//! frequency (paper Algorithm 2, line 5) — a few hundred of the 4096 bins
//! a dense FFT materializes. This module provides two ways to evaluate
//! exactly those bins:
//!
//! * [`GoertzelBank`] — independent second-order Goertzel recurrences, one
//!   per bin, `O(N)` each. Wins over a dense FFT only when the number of
//!   bins is small (roughly `< 2·log₂N`); it exists as the exact sparse
//!   reference and for few-bin workloads (per-tone diagnostics, embedded
//!   targets without FFT memory).
//! * [`SlidingDft`] — the detector's fine-scan workhorse. Algorithm 1's
//!   fine scan re-evaluates windows shifted by only `fine_step = 10`
//!   samples; the sliding DFT updates each tracked bin from the previous
//!   window in `O(step)` instead of recomputing an `O(N log N)` transform:
//!   `X_{j+s}[k] = ω^{-ks}·(X_j[k] + Σ_{m<s} (x[j+N+m] − x[j+m])·ω^{km})`
//!   with `ω = e^{-2πi/N}`. For the default configuration this replaces a
//!   ~22k-butterfly FFT per fine window with ~330 × 11 multiply-adds.
//!
//! Both paths compute the *exact* DFT bins (the sliding update is
//! algebraically exact; rounding drift over a full fine scan stays orders
//! of magnitude below the detector's thresholds, and every fine scan
//! re-initializes from a fresh transform).

use crate::complex::Complex64;
use crate::fft::cached_real_plan;
use crate::simd::{self, DspBackend};

/// Exact power `|X[k]|²` of one DFT bin of a real signal, via the
/// second-order Goertzel recurrence (no FFT, no table).
///
/// Matches `fft_real(signal)[bin].norm_sqr()` to rounding. `bin` may
/// exceed Nyquist (the paper indexes mirror bins directly); it is reduced
/// modulo the signal length.
///
/// # Panics
///
/// Panics if `signal` is empty.
pub fn goertzel_power(signal: &[f64], bin: usize) -> f64 {
    assert!(!signal.is_empty(), "Goertzel needs at least one sample");
    let n = signal.len();
    let w = 2.0 * std::f64::consts::PI * (bin % n) as f64 / n as f64;
    let coeff = 2.0 * w.cos();
    let (mut s1, mut s2) = (0.0f64, 0.0f64);
    for &x in signal {
        let s0 = x + coeff * s1 - s2;
        s2 = s1;
        s1 = s0;
    }
    s1 * s1 + s2 * s2 - coeff * s1 * s2
}

/// A bank of Goertzel recurrences evaluating a fixed set of bins in one
/// pass over the signal.
#[derive(Debug, Clone)]
pub struct GoertzelBank {
    n: usize,
    bins: Vec<usize>,
    coeffs: Vec<f64>,
}

impl GoertzelBank {
    /// Builds a bank for signals of length `n` evaluating `bins`
    /// (order preserved; bins above `n` are reduced modulo `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, bins: Vec<usize>) -> Self {
        assert!(n > 0, "signal length must be nonzero");
        let coeffs = bins
            .iter()
            .map(|&b| 2.0 * (2.0 * std::f64::consts::PI * (b % n) as f64 / n as f64).cos())
            .collect();
        GoertzelBank { n, bins, coeffs }
    }

    /// The evaluated bins, in construction order.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Evaluates `|X[k]|²` for every bank bin into `out` (resized to the
    /// bank size, aligned with [`Self::bins`]), on the active DSP
    /// backend ([`simd::active_backend`]).
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() != n`.
    pub fn powers_into(&self, signal: &[f64], out: &mut Vec<f64>) {
        self.powers_into_with(signal, out, simd::active_backend());
    }

    /// [`Self::powers_into`] pinned to an explicit backend. The SIMD
    /// backends evaluate several bins per register, each lane running the
    /// scalar recurrence in the exact scalar operation order, so every
    /// backend is bit-identical (see [`crate::simd`]).
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() != n`.
    pub fn powers_into_with(&self, signal: &[f64], out: &mut Vec<f64>, backend: DspBackend) {
        assert_eq!(signal.len(), self.n, "signal length must match bank length");
        out.clear();
        simd::goertzel_powers(backend, &self.coeffs, signal, out);
    }
}

/// A sliding DFT tracking a sparse set of bins across overlapping windows
/// of a longer recording.
///
/// Initialize on a window with [`SlidingDft::init`], then step the window
/// forward with [`SlidingDft::advance`], handing in the samples that left
/// and entered. Each advance costs `O(bins × step)` — independent of the
/// window length.
#[derive(Debug, Clone)]
pub struct SlidingDft {
    n: usize,
    step: usize,
    bins: Vec<usize>,
    /// Per bin: `ω^{-k·step}` — the phase rotation of one nominal step.
    rot: Vec<Complex64>,
    /// Bin-major `[bin][m]`: `ω^{k·m}` for `m < step`.
    corr: Vec<Complex64>,
    /// Current `X[k]` per tracked bin.
    state: Vec<Complex64>,
    scratch: Vec<Complex64>,
    spectrum: Vec<Complex64>,
}

impl SlidingDft {
    /// Builds a sliding DFT over windows of length `n` (a power of two
    /// ≥ 2), nominal step `step`, tracking `bins` (reduced modulo `n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two ≥ 2 or `step` is zero.
    pub fn new(n: usize, step: usize, bins: Vec<usize>) -> Self {
        assert!(
            n.is_power_of_two() && n >= 2,
            "window length must be a power of two ≥ 2"
        );
        assert!(step > 0, "step must be nonzero");
        let tau = 2.0 * std::f64::consts::PI;
        let rot = bins
            .iter()
            .map(|&b| Complex64::cis(tau * ((b % n) * step % n) as f64 / n as f64))
            .collect();
        let mut corr = Vec::with_capacity(bins.len() * step);
        for &b in &bins {
            for m in 0..step {
                corr.push(Complex64::cis(-tau * ((b % n) * m % n) as f64 / n as f64));
            }
        }
        SlidingDft {
            n,
            step,
            bins,
            rot,
            corr,
            state: Vec::new(),
            scratch: Vec::new(),
            spectrum: Vec::new(),
        }
    }

    /// The tracked bins, in construction order.
    pub fn bins(&self) -> &[usize] {
        &self.bins
    }

    /// Window length.
    pub fn window_len(&self) -> usize {
        self.n
    }

    /// Initializes the tracked bins from a full window via the cached
    /// real-input FFT, on the active DSP backend.
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != self.window_len()`.
    pub fn init(&mut self, window: &[f64]) {
        self.init_with(window, simd::active_backend());
    }

    /// [`Self::init`] pinned to an explicit backend (bit-identical
    /// across backends; see [`crate::simd`]).
    ///
    /// # Panics
    ///
    /// Panics if `window.len() != self.window_len()`.
    pub fn init_with(&mut self, window: &[f64], backend: DspBackend) {
        assert_eq!(window.len(), self.n, "window length must match plan");
        let plan = cached_real_plan(self.n);
        plan.forward_full_with(window, &mut self.scratch, &mut self.spectrum, backend);
        self.state.clear();
        self.state
            .extend(self.bins.iter().map(|&b| self.spectrum[b % self.n]));
    }

    /// Slides the window forward by `dropped.len()` samples: `dropped` are
    /// the samples that left the front of the window, `added` the samples
    /// that entered at the back (`recording[j..j+s]` and
    /// `recording[j+N..j+N+s]` for a window moving from `j` to `j+s`).
    ///
    /// Slides of exactly the nominal step use the precomputed twiddles
    /// and dispatch through [`simd::sliding_advance`] (bit-identical on
    /// every backend); other lengths (the clamped final step of a scan)
    /// fall back to on-the-fly twiddles on the scalar path.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ, are zero, or exceed the window.
    pub fn advance(&mut self, dropped: &[f64], added: &[f64]) {
        self.advance_with(dropped, added, simd::active_backend());
    }

    /// [`Self::advance`] pinned to an explicit backend (bit-identical
    /// across backends; see [`crate::simd`]).
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths differ, are zero, or exceed the window.
    pub fn advance_with(&mut self, dropped: &[f64], added: &[f64], backend: DspBackend) {
        let s = dropped.len();
        assert_eq!(s, added.len(), "dropped/added length mismatch");
        assert!(s > 0 && s <= self.n, "slide length must be in 1..=window");
        assert!(!self.state.is_empty(), "init must run before advance");
        let tau = 2.0 * std::f64::consts::PI;
        if s == self.step {
            simd::sliding_advance(
                backend,
                &mut self.state,
                &self.rot,
                &self.corr,
                dropped,
                added,
            );
        } else {
            for (i, &b) in self.bins.iter().enumerate() {
                let b = b % self.n;
                let mut acc = Complex64::ZERO;
                for (m, (&a, &d)) in added.iter().zip(dropped).enumerate() {
                    acc +=
                        Complex64::cis(-tau * (b * m % self.n) as f64 / self.n as f64).scale(a - d);
                }
                let rot = Complex64::cis(tau * (b * s % self.n) as f64 / self.n as f64);
                self.state[i] = (self.state[i] + acc) * rot;
            }
        }
    }

    /// Current complex bin values, aligned with [`Self::bins`].
    ///
    /// # Panics
    ///
    /// Panics if [`Self::init`] has not run.
    pub fn state(&self) -> &[Complex64] {
        assert!(!self.state.is_empty(), "init must run before reading state");
        &self.state
    }

    /// Current `|X[k]|²` per tracked bin into `out`.
    pub fn powers_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(self.state().iter().map(|z| z.norm_sqr()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft_real;
    use crate::tone;
    use proptest::prelude::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn goertzel_matches_fft_bin_on_tone() {
        let n = 1024;
        let fs = 44_100.0;
        let sig = tone::sine(200.0 * fs / n as f64, 0.7, 3.0, fs, n);
        let spec = fft_real(&sig);
        for &bin in &[0usize, 1, 200, 512, 823, 1023] {
            let g = goertzel_power(&sig, bin);
            let f = spec[bin].norm_sqr();
            assert!((g - f).abs() < 1e-6 * (1.0 + f), "bin {bin}: {g} vs {f}");
        }
    }

    #[test]
    fn bank_matches_individual_bins() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sig: Vec<f64> = (0..256).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let bins = vec![3usize, 17, 128, 200, 255];
        let bank = GoertzelBank::new(256, bins.clone());
        let mut powers = Vec::new();
        bank.powers_into(&sig, &mut powers);
        for (&b, &p) in bins.iter().zip(&powers) {
            let reference = goertzel_power(&sig, b);
            assert!((p - reference).abs() < 1e-9 * (1.0 + reference));
        }
    }

    #[test]
    fn sliding_dft_tracks_exact_dft_across_many_steps() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let rec: Vec<f64> = (0..2048).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let n = 512;
        let step = 10;
        let bins = vec![0usize, 5, 100, 256, 300, 511];
        let mut sliding = SlidingDft::new(n, step, bins.clone());
        sliding.init(&rec[..n]);
        let mut j = 0;
        while j + step + n <= rec.len() {
            sliding.advance(&rec[j..j + step], &rec[j + n..j + n + step]);
            j += step;
            let spec = fft_real(&rec[j..j + n]);
            for (i, &b) in bins.iter().enumerate() {
                let expect = spec[b];
                let got = sliding.state()[i];
                assert!(
                    (got - expect).abs() < 1e-6 * (1.0 + expect.abs()),
                    "offset {j} bin {b}: {got} vs {expect}"
                );
            }
        }
        assert!(j >= 1500, "test must actually slide many steps, slid {j}");
    }

    #[test]
    fn sliding_dft_handles_irregular_final_step() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let rec: Vec<f64> = (0..300).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let n = 128;
        let bins = vec![7usize, 64, 120];
        let mut sliding = SlidingDft::new(n, 10, bins.clone());
        sliding.init(&rec[..n]);
        // One nominal step, then a short 3-sample step.
        sliding.advance(&rec[0..10], &rec[n..n + 10]);
        sliding.advance(&rec[10..13], &rec[n + 10..n + 13]);
        let spec = fft_real(&rec[13..13 + n]);
        for (i, &b) in bins.iter().enumerate() {
            assert!((sliding.state()[i] - spec[b]).abs() < 1e-8 * (1.0 + spec[b].abs()));
        }
    }

    #[test]
    fn sliding_dft_nan_poisons_until_reinit() {
        // The audit behind the ingest-boundary containment
        // (`piano-core`'s stream/wire layers): once a NaN passes through
        // a sliding window, the incremental correction can never cancel
        // it (NaN − NaN ≠ 0), so the state stays poisoned even after the
        // NaN sample has left the window — and a fresh `init` is the
        // only recovery.
        let n = 64;
        let step = 4;
        let mut rec: Vec<f64> = (0..200).map(|t| (t as f64 * 0.3).sin()).collect();
        rec[70] = f64::NAN;
        let mut sliding = SlidingDft::new(n, step, vec![3, 17]);
        sliding.init(&rec[..n]);
        let mut j = 0;
        while j + step + n <= 140 {
            sliding.advance(&rec[j..j + step], &rec[j + n..j + n + step]);
            j += step;
        }
        // The window [j, j+n) no longer contains index 70, yet the state
        // is still NaN: the poison outlived the sample.
        assert!(j > 70, "window must have slid past the NaN");
        assert!(sliding.state().iter().any(|z| z.is_nan()));
        // Re-initializing from a clean window recovers exactly.
        sliding.init(&rec[j..j + n]);
        let spec = fft_real(&rec[j..j + n]);
        for (i, &b) in [3usize, 17].iter().enumerate() {
            assert!((sliding.state()[i] - spec[b]).abs() < 1e-9 * (1.0 + spec[b].abs()));
        }
    }

    #[test]
    fn goertzel_nan_is_contained_to_its_window() {
        // Goertzel accumulators are per-call: a NaN window yields NaN
        // powers, but the next (clean) window is evaluated from fresh
        // state — no cross-window poisoning to contain here.
        let clean: Vec<f64> = (0..128).map(|t| (t as f64 * 0.9).cos()).collect();
        let mut dirty = clean.clone();
        dirty[64] = f64::INFINITY;
        let bank = GoertzelBank::new(128, vec![5, 40]);
        let mut powers = Vec::new();
        bank.powers_into(&dirty, &mut powers);
        assert!(powers.iter().all(|p| !p.is_finite()));
        bank.powers_into(&clean, &mut powers);
        for (&p, &b) in powers.iter().zip(bank.bins()) {
            let reference = goertzel_power(&clean, b);
            assert!((p - reference).abs() < 1e-9 * (1.0 + reference));
        }
    }

    #[test]
    #[should_panic(expected = "init must run")]
    fn advance_before_init_panics() {
        let mut s = SlidingDft::new(64, 4, vec![1]);
        s.advance(&[0.0; 4], &[0.0; 4]);
    }

    proptest! {
        #[test]
        fn goertzel_matches_fft_everywhere(
            data in proptest::collection::vec(-50.0f64..50.0, 64),
            bin in 0usize..64,
        ) {
            let spec = fft_real(&data);
            let g = goertzel_power(&data, bin);
            let f = spec[bin].norm_sqr();
            prop_assert!((g - f).abs() < 1e-6 * (1.0 + f), "bin {}: {} vs {}", bin, g, f);
        }

        #[test]
        fn goertzel_cluster_matches_band_power_on_random_windows(
            data in proptest::collection::vec(-100.0f64..100.0, 256),
            center in 0usize..256,
            theta in 1usize..6,
        ) {
            // The satellite property behind the detector's sparse path:
            // summing Goertzel bin powers over a 2θ+1 cluster must equal
            // band_power over the dense normalized spectrum.
            let n = data.len();
            let lo = center.saturating_sub(theta);
            let hi = (center + theta).min(n - 1);
            let bank = GoertzelBank::new(n, (lo..=hi).collect());
            let mut powers = Vec::new();
            bank.powers_into(&data, &mut powers);
            let scale = (2.0 / n as f64) * (2.0 / n as f64);
            let sparse: f64 = powers.iter().sum::<f64>() * scale;
            let dense = crate::spectrum::band_power(
                &crate::spectrum::power_spectrum(&data),
                center,
                theta,
            );
            prop_assert!(
                (sparse - dense).abs() < 1e-9 * (1.0 + dense.abs()),
                "cluster ({}, θ={}): sparse {} vs dense {}", center, theta, sparse, dense
            );
        }
    }
}
