//! Window functions.
//!
//! The paper's detector scans *rectangular* windows (it FFTs raw signal
//! slices), so the ACTION implementation uses [`WindowKind::Rectangular`].
//! The other windows support the acoustic channel simulator (smooth splice
//! envelopes) and the ablation experiments that ask whether tapering the
//! detector window changes accuracy.

use serde::{Deserialize, Serialize};

/// Supported window shapes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum WindowKind {
    /// No tapering; what the paper's Algorithm 2 implicitly uses.
    #[default]
    Rectangular,
    /// Hann (raised cosine) window.
    Hann,
    /// Hamming window.
    Hamming,
    /// Blackman window.
    Blackman,
}

impl WindowKind {
    /// Generates the window coefficients for length `len`.
    ///
    /// For `len == 1` every window degenerates to `[1.0]`.
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        if len == 0 {
            return Vec::new();
        }
        if len == 1 {
            return vec![1.0];
        }
        let m = (len - 1) as f64;
        (0..len)
            .map(|n| {
                let x = n as f64 / m;
                match self {
                    WindowKind::Rectangular => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * (2.0 * std::f64::consts::PI * x).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (2.0 * std::f64::consts::PI * x).cos(),
                    WindowKind::Blackman => {
                        0.42 - 0.5 * (2.0 * std::f64::consts::PI * x).cos()
                            + 0.08 * (4.0 * std::f64::consts::PI * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Coherent gain: mean of the coefficients. Used to compensate tone
    /// amplitude measurements made through a tapered window.
    pub fn coherent_gain(self, len: usize) -> f64 {
        if len == 0 {
            return 0.0;
        }
        self.coefficients(len).iter().sum::<f64>() / len as f64
    }

    /// Multiplies the window into a signal in place.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len() != len` coefficients would be generated;
    /// callers pass the signal and the window length is taken from it.
    pub fn apply(self, signal: &mut [f64]) {
        let coeffs = self.coefficients(signal.len());
        for (s, c) in signal.iter_mut().zip(coeffs) {
            *s *= c;
        }
    }
}

/// A half-cosine fade-in/fade-out envelope applied in place.
///
/// The acoustic field simulator uses this to avoid clicks (spectral
/// splatter) at the edges of emitted reference signals — real Android audio
/// stacks apply similar ramps, and without one the rectangular onset leaks
/// power across the whole band, polluting the β sanity check.
pub fn apply_fade(signal: &mut [f64], fade_len: usize) {
    let n = signal.len();
    let fade = fade_len.min(n / 2);
    for i in 0..fade {
        let g = 0.5 - 0.5 * (std::f64::consts::PI * i as f64 / fade as f64).cos();
        signal[i] *= g;
        signal[n - 1 - i] *= g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(WindowKind::Rectangular
            .coefficients(16)
            .iter()
            .all(|&c| c == 1.0));
    }

    #[test]
    fn hann_is_zero_at_edges_and_one_at_center() {
        let w = WindowKind::Hann.coefficients(65);
        assert!(w[0].abs() < 1e-12);
        assert!(w[64].abs() < 1e-12);
        assert!((w[32] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hamming_edges_are_nonzero() {
        let w = WindowKind::Hamming.coefficients(33);
        assert!((w[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_is_symmetric() {
        let w = WindowKind::Blackman.coefficients(64);
        for k in 0..32 {
            assert!((w[k] - w[63 - k]).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_lengths() {
        for kind in [
            WindowKind::Rectangular,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            assert!(kind.coefficients(0).is_empty());
            assert_eq!(kind.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn coherent_gain_of_hann_is_about_half() {
        let g = WindowKind::Hann.coherent_gain(4096);
        assert!((g - 0.5).abs() < 1e-3, "gain {g}");
    }

    #[test]
    fn apply_scales_signal() {
        let mut s = vec![2.0; 8];
        WindowKind::Hann.apply(&mut s);
        assert!(s[0].abs() < 1e-12);
        assert!(s.iter().all(|&x| x <= 2.0));
    }

    #[test]
    fn fade_tapers_edges_only() {
        let mut s = vec![1.0; 100];
        apply_fade(&mut s, 10);
        assert!(s[0].abs() < 1e-12);
        assert!(s[99].abs() < 1e-12);
        assert_eq!(s[50], 1.0);
        // Monotone ramp up within the fade.
        for i in 0..9 {
            assert!(s[i] <= s[i + 1] + 1e-12);
        }
    }

    #[test]
    fn fade_longer_than_half_is_clamped() {
        let mut s = vec![1.0; 7];
        apply_fade(&mut s, 100); // must not panic
        assert!(s[3] >= s[0]);
    }
}
