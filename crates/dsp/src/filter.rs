//! FIR filter design and application.
//!
//! The acoustic substrate uses these filters in two places: shaping
//! environment noise (the paper measured that background noise concentrates
//! below ~6 kHz, so noise synthesis low-passes white noise) and applying
//! frequency-dependent channel effects (air absorption, speaker/microphone
//! responses) to emitted reference signals.

use crate::complex::Complex64;
use crate::fft::{next_pow2, FftPlan};

/// Designs a windowed-sinc low-pass FIR filter.
///
/// `cutoff_hz` is the -6 dB point; `taps` must be odd so the filter has a
/// symmetric (linear-phase) kernel with an integer group delay of
/// `(taps-1)/2` samples.
///
/// # Panics
///
/// Panics if `taps` is even or zero, or if the cutoff is not inside
/// `(0, sample_rate/2)`.
pub fn lowpass(cutoff_hz: f64, sample_rate: f64, taps: usize) -> Vec<f64> {
    assert!(
        taps % 2 == 1 && taps > 0,
        "taps must be odd and positive, got {taps}"
    );
    assert!(
        cutoff_hz > 0.0 && cutoff_hz < sample_rate / 2.0,
        "cutoff must lie in (0, Nyquist)"
    );
    let fc = cutoff_hz / sample_rate;
    let m = (taps - 1) as f64 / 2.0;
    let mut kernel: Vec<f64> = (0..taps)
        .map(|n| {
            let x = n as f64 - m;
            let sinc = if x == 0.0 {
                2.0 * fc
            } else {
                (2.0 * std::f64::consts::PI * fc * x).sin() / (std::f64::consts::PI * x)
            };
            // Blackman window for good stop-band rejection (~-74 dB).
            let w = 0.42 - 0.5 * (2.0 * std::f64::consts::PI * n as f64 / (taps - 1) as f64).cos()
                + 0.08 * (4.0 * std::f64::consts::PI * n as f64 / (taps - 1) as f64).cos();
            sinc * w
        })
        .collect();
    // Normalize to unit DC gain.
    let sum: f64 = kernel.iter().sum();
    for k in kernel.iter_mut() {
        *k /= sum;
    }
    kernel
}

/// Designs a windowed-sinc high-pass FIR filter by spectral inversion of
/// [`lowpass`]. Same constraints as `lowpass`.
pub fn highpass(cutoff_hz: f64, sample_rate: f64, taps: usize) -> Vec<f64> {
    let mut kernel = lowpass(cutoff_hz, sample_rate, taps);
    for k in kernel.iter_mut() {
        *k = -*k;
    }
    kernel[(taps - 1) / 2] += 1.0;
    kernel
}

/// Designs a band-pass filter as a cascade (convolution) of a high-pass and
/// a low-pass kernel.
///
/// # Panics
///
/// Panics if `lo_hz >= hi_hz` or either edge is outside `(0, Nyquist)`.
pub fn bandpass(lo_hz: f64, hi_hz: f64, sample_rate: f64, taps: usize) -> Vec<f64> {
    assert!(lo_hz < hi_hz, "band edges out of order");
    let hp = highpass(lo_hz, sample_rate, taps);
    let lp = lowpass(hi_hz, sample_rate, taps);
    convolve(&hp, &lp)
}

/// Full linear convolution; output length `a.len() + b.len() - 1`.
pub fn convolve(a: &[f64], b: &[f64]) -> Vec<f64> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let out_len = a.len() + b.len() - 1;
    // Use the FFT for anything big; direct for small kernels.
    if a.len().min(b.len()) > 64 {
        convolve_fft(a, b)
    } else {
        let mut out = vec![0.0; out_len];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                out[i + j] += x * y;
            }
        }
        out
    }
}

fn convolve_fft(a: &[f64], b: &[f64]) -> Vec<f64> {
    let out_len = a.len() + b.len() - 1;
    let n = next_pow2(out_len);
    let plan = FftPlan::new(n);
    let mut fa: Vec<Complex64> = a.iter().map(|&x| Complex64::from_real(x)).collect();
    fa.resize(n, Complex64::ZERO);
    let mut fb: Vec<Complex64> = b.iter().map(|&x| Complex64::from_real(x)).collect();
    fb.resize(n, Complex64::ZERO);
    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.inverse(&mut fa);
    fa[..out_len].iter().map(|z| z.re).collect()
}

/// "Same"-mode filtering: convolves and trims so the output aligns with the
/// input (compensating the linear-phase group delay of a symmetric kernel).
///
/// Output length equals `signal.len()`.
pub fn filter_same(signal: &[f64], kernel: &[f64]) -> Vec<f64> {
    if signal.is_empty() || kernel.is_empty() {
        return signal.to_vec();
    }
    let full = convolve(signal, kernel);
    let delay = (kernel.len() - 1) / 2;
    full[delay..delay + signal.len()].to_vec()
}

/// Applies an arbitrary frequency-domain transfer function to a signal.
///
/// `response(f_hz)` is sampled at every FFT bin (using the folded/physical
/// frequency for bins above Nyquist so the result stays real) and multiplied
/// into the spectrum. Used for air absorption and hardware responses where
/// designing an FIR kernel per path would be wasteful.
///
/// The output has the same length as the input.
pub fn apply_transfer_function<F>(signal: &[f64], sample_rate: f64, mut response: F) -> Vec<f64>
where
    F: FnMut(f64) -> Complex64,
{
    if signal.is_empty() {
        return Vec::new();
    }
    let n = next_pow2(signal.len());
    let plan = FftPlan::new(n);
    let mut buf: Vec<Complex64> = signal.iter().map(|&x| Complex64::from_real(x)).collect();
    buf.resize(n, Complex64::ZERO);
    plan.forward(&mut buf);
    let half = n / 2;
    // Apply to the lower half, then mirror conjugate so the IFFT is real.
    for k in 0..=half {
        let f = k as f64 * sample_rate / n as f64;
        let h = response(f);
        buf[k] *= h;
        if k != 0 && k != half {
            buf[n - k] = buf[k].conj();
        }
    }
    plan.inverse(&mut buf);
    buf[..signal.len()].iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::power_spectrum;
    use crate::tone;
    use proptest::prelude::*;

    const FS: f64 = 44_100.0;

    fn tone_gain(kernel: &[f64], f: f64) -> f64 {
        let sig = tone::sine(f, 0.0, 1.0, FS, 8192);
        let out = filter_same(&sig, kernel);
        // Measure steady-state RMS away from the edges.
        tone::rms(&out[2000..6000]) / tone::rms(&sig[2000..6000])
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        let k = lowpass(6_000.0, FS, 129);
        assert!(tone_gain(&k, 1_000.0) > 0.95);
        assert!(tone_gain(&k, 15_000.0) < 0.01);
    }

    #[test]
    fn highpass_blocks_low_passes_high() {
        let k = highpass(6_000.0, FS, 129);
        assert!(tone_gain(&k, 1_000.0) < 0.01);
        assert!(tone_gain(&k, 15_000.0) > 0.95);
    }

    #[test]
    fn bandpass_selects_band() {
        let k = bandpass(8_000.0, 16_000.0, FS, 129);
        assert!(tone_gain(&k, 12_000.0) > 0.9);
        assert!(tone_gain(&k, 2_000.0) < 0.02);
        assert!(tone_gain(&k, 20_000.0) < 0.02);
    }

    #[test]
    fn convolve_matches_hand_computed() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, -1.0];
        assert_eq!(convolve(&a, &b), vec![0.5, 0.0, -0.5, -3.0]);
        assert!(convolve(&a, &[]).is_empty());
    }

    #[test]
    fn convolve_large_uses_fft_and_matches_direct() {
        let a: Vec<f64> = (0..200).map(|i| (i as f64 * 0.1).sin()).collect();
        let b: Vec<f64> = (0..100).map(|i| (i as f64 * 0.05).cos()).collect();
        let fast = convolve(&a, &b); // both > 64 taps → FFT path
        let mut direct = vec![0.0; a.len() + b.len() - 1];
        for (i, &x) in a.iter().enumerate() {
            for (j, &y) in b.iter().enumerate() {
                direct[i + j] += x * y;
            }
        }
        for (x, y) in fast.iter().zip(&direct) {
            assert!((x - y).abs() < 1e-7);
        }
    }

    #[test]
    fn filter_same_preserves_length_and_alignment() {
        let sig = tone::sine(5_000.0, 0.0, 1.0, FS, 1024);
        let k = lowpass(10_000.0, FS, 65);
        let out = filter_same(&sig, &k);
        assert_eq!(out.len(), sig.len());
        // Pass-band tone should emerge nearly unchanged and aligned.
        for i in 200..800 {
            assert!((out[i] - sig[i]).abs() < 0.05, "sample {i}");
        }
    }

    #[test]
    fn transfer_function_scales_selected_band() {
        let sig = tone::multi_tone(
            &[
                tone::ToneSpec::new(3_000.0, 1.0),
                tone::ToneSpec::new(12_000.0, 1.0),
            ],
            FS,
            4096,
        );
        let out = apply_transfer_function(&sig, FS, |f| {
            if f > 8_000.0 {
                Complex64::from_real(0.1)
            } else {
                Complex64::ONE
            }
        });
        let ps = power_spectrum(&out[..4096.min(out.len())]);
        let low =
            crate::spectrum::band_power(&ps, crate::spectrum::freq_to_bin(3_000.0, FS, 4096), 3);
        let high =
            crate::spectrum::band_power(&ps, crate::spectrum::freq_to_bin(12_000.0, FS, 4096), 3);
        assert!(low > 0.8, "low band should pass, got {low}");
        assert!(high < 0.05, "high band should be attenuated, got {high}");
    }

    #[test]
    fn transfer_function_output_is_real_for_real_input() {
        let sig = tone::sine(10_000.0, 0.3, 1.0, FS, 1000);
        let out = apply_transfer_function(&sig, FS, |f| Complex64::cis(f / 1_000.0));
        assert_eq!(out.len(), sig.len());
        assert!(out.iter().all(|x| x.is_finite()));
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn lowpass_rejects_even_taps() {
        let _ = lowpass(1_000.0, FS, 64);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn lowpass_rejects_cutoff_beyond_nyquist() {
        let _ = lowpass(30_000.0, FS, 65);
    }

    proptest! {
        #[test]
        fn convolution_is_commutative(
            a in proptest::collection::vec(-5.0f64..5.0, 1..20),
            b in proptest::collection::vec(-5.0f64..5.0, 1..20),
        ) {
            let ab = convolve(&a, &b);
            let ba = convolve(&b, &a);
            prop_assert_eq!(ab.len(), ba.len());
            for (x, y) in ab.iter().zip(&ba) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }

        #[test]
        fn convolution_with_unit_impulse_is_identity(
            a in proptest::collection::vec(-5.0f64..5.0, 1..30),
        ) {
            let out = convolve(&a, &[1.0]);
            prop_assert_eq!(out.len(), a.len());
            for (x, y) in out.iter().zip(&a) {
                prop_assert!((x - y).abs() < 1e-12);
            }
        }
    }
}
