//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! The ACTION detector (paper Algorithm 2, line 2) computes the power
//! spectrum of every candidate window via FFT; the paper fixes the window
//! length to 4096 samples precisely because "FFT requires the length of the
//! signal to be a power of 2". This module implements that FFT from scratch:
//! an in-place, iterative, decimation-in-time radix-2 transform with
//! precomputed twiddle tables (see [`FftPlan`]) so the detector's inner loop
//! does no trigonometry.
//!
//! Performance architecture (see also the crate docs):
//!
//! * **Branch-free butterflies** — [`FftPlan`] holds separate forward and
//!   inverse twiddle tables, so the butterfly kernel never tests an
//!   `inverse` flag or conjugates on the fly.
//! * **SIMD butterfly stages** — the table-driven stages run through the
//!   [`crate::simd`] dispatch layer (SSE2/AVX2 on x86_64, NEON on
//!   aarch64, scalar elsewhere), bit-identical to the scalar reference
//!   on every backend. `forward`/`inverse` use the process-wide active
//!   backend; the `*_with` variants pin one explicitly.
//! * **Real-input transform** — [`RealFftPlan`] computes an N-point real
//!   spectrum via one N/2-point complex transform plus an O(N)
//!   recombination: half the butterflies of padding the signal into a
//!   complex buffer. [`fft_real`] uses it; [`fft_real_padded`] retains the
//!   padded path as the differential-testing / benchmarking reference.
//! * **Plan cache** — [`cached_plan`] / [`cached_real_plan`] memoize plans
//!   per size behind a small mutex-guarded LRU, so one-shot helpers (and
//!   everything in [`crate::spectrum`], [`crate::correlate`],
//!   [`crate::filter`]) stop rebuilding `sin`/`cos` tables on every call.
//!   The cache is *bounded* (default [`DEFAULT_PLAN_CACHE_CAPACITY`] sizes,
//!   configurable via [`set_plan_cache_capacity`]): a multi-tenant service
//!   juggling many window sizes evicts the least-recently-used plan
//!   instead of growing without bound. Evicted plans stay valid for any
//!   holder of their `Arc`.
//!
//! Conventions: [`fft`] computes the unnormalized DFT
//! `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`; [`ifft`] divides by `N`, so
//! `ifft(fft(x)) == x` up to floating-point error.

use crate::complex::Complex64;
use crate::simd::{self, DspBackend};
use std::sync::{Arc, Mutex, OnceLock};

/// A reusable FFT plan for a fixed power-of-two size.
///
/// The plan precomputes the bit-reversal permutation and both twiddle
/// tables (forward and inverse), so the butterfly loop is branch-free and
/// does no trigonometry. Reusing a plan across the thousands of windows
/// scanned by the ACTION detector avoids recomputing `sin`/`cos` per
/// window; [`cached_plan`] shares plans process-wide.
///
/// # Example
///
/// ```
/// use piano_dsp::fft::FftPlan;
/// use piano_dsp::Complex64;
///
/// let plan = FftPlan::new(8);
/// let mut buf: Vec<Complex64> = (0..8).map(|n| Complex64::from_real(n as f64)).collect();
/// let copy = buf.clone();
/// plan.forward(&mut buf);
/// plan.inverse(&mut buf);
/// for (a, b) in buf.iter().zip(&copy) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    size: usize,
    /// Bit-reversed index for every position.
    rev: Vec<u32>,
    /// Twiddles for the forward transform: `e^{-2πi·k/N}` for `k < N/2`.
    /// Kept in the seed's flat layout for the reference kernel
    /// ([`Self::forward_reference`]).
    twiddles: Vec<Complex64>,
    /// Forward twiddles re-laid-out per stage (stages of length ≥ 8), so
    /// the hot kernel reads them contiguously instead of gathering with a
    /// `k·stride` stride.
    fwd_stages: Vec<Vec<Complex64>>,
    /// Inverse counterpart of `fwd_stages`.
    inv_stages: Vec<Vec<Complex64>>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    pub fn new(size: usize) -> Self {
        assert!(
            size.is_power_of_two() && size > 0,
            "FFT size must be a power of two, got {size}"
        );
        let bits = size.trailing_zeros();
        // For size == 1, bits == 0 and every index reverses to itself.
        let rev = (0..size as u32)
            .map(|i| {
                if bits == 0 {
                    i
                } else {
                    i.reverse_bits() >> (32 - bits)
                }
            })
            .collect::<Vec<_>>();
        let twiddles: Vec<Complex64> = (0..size / 2)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / size as f64))
            .collect();
        // Per-stage contiguous twiddle tables for stages of length ≥ 8
        // (lengths 2 and 4 are handled by multiply-free specializations).
        let mut fwd_stages = Vec::new();
        let mut len = 8;
        while len <= size {
            let stride = size / len;
            fwd_stages.push(
                (0..len / 2)
                    .map(|k| twiddles[k * stride])
                    .collect::<Vec<_>>(),
            );
            len <<= 1;
        }
        let inv_stages = fwd_stages
            .iter()
            .map(|stage| stage.iter().map(|tw| tw.conj()).collect())
            .collect();
        FftPlan {
            size,
            rev,
            twiddles,
            fwd_stages,
            inv_stages,
        }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward DFT on the active DSP backend
    /// ([`simd::active_backend`]).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.size()`.
    pub fn forward(&self, buf: &mut [Complex64]) {
        self.forward_with(buf, simd::active_backend());
    }

    /// [`Self::forward`] pinned to an explicit backend. Every backend is
    /// bit-identical (see [`crate::simd`]); this entry point exists so
    /// the differential conformance suite and benches can compare
    /// backends without mutating process-wide state.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.size()`.
    pub fn forward_with(&self, buf: &mut [Complex64], backend: DspBackend) {
        assert_eq!(buf.len(), self.size, "buffer length must match plan size");
        if self.size <= 1 {
            return;
        }
        self.permute(buf);
        self.butterflies(buf, &self.fwd_stages, true, backend);
    }

    /// In-place forward DFT via the seed's original butterfly kernel
    /// (per-butterfly direction branch, strided twiddle gather, no
    /// specialized first stages).
    ///
    /// Retained deliberately as the differential-testing and benchmarking
    /// baseline: `piano-bench` measures the optimized kernels against this
    /// in the same run.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.size()`.
    pub fn forward_reference(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.size, "buffer length must match plan size");
        if self.size <= 1 {
            return;
        }
        self.permute(buf);
        let n = self.size;
        let inverse = false;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[k * stride];
                    let tw = if inverse { tw.conj() } else { tw };
                    let even = buf[start + k];
                    let odd = buf[start + k + half] * tw;
                    buf[start + k] = even + odd;
                    buf[start + k + half] = even - odd;
                }
            }
            len <<= 1;
        }
    }

    /// In-place inverse DFT (normalized by `1/N`) on the active DSP
    /// backend.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.size()`.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        self.inverse_with(buf, simd::active_backend());
    }

    /// [`Self::inverse`] pinned to an explicit backend (bit-identical
    /// across backends; see [`Self::forward_with`]).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.size()`.
    pub fn inverse_with(&self, buf: &mut [Complex64], backend: DspBackend) {
        assert_eq!(buf.len(), self.size, "buffer length must match plan size");
        if self.size <= 1 {
            return;
        }
        self.permute(buf);
        self.butterflies(buf, &self.inv_stages, false, backend);
        let scale = 1.0 / self.size as f64;
        for z in buf.iter_mut() {
            *z = z.scale(scale);
        }
    }

    fn permute(&self, buf: &mut [Complex64]) {
        for i in 0..self.size {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    /// Branch-free butterfly network over per-stage twiddle tables.
    ///
    /// The first two stages are specialized: their twiddles are `1` and
    /// `∓i` (`forward` picks the sign), so they need no complex multiplies
    /// at all and run the same multiply-free scalar code on every
    /// backend. The remaining table-driven stages dispatch through
    /// [`simd::radix2_stage`], which vectorizes the butterfly loop while
    /// preserving the scalar operation order bit-for-bit.
    fn butterflies(
        &self,
        buf: &mut [Complex64],
        stages: &[Vec<Complex64>],
        forward: bool,
        backend: DspBackend,
    ) {
        let n = self.size;

        // Stage len = 2: twiddle is 1.
        for pair in buf.chunks_exact_mut(2) {
            let a = pair[0];
            let b = pair[1];
            pair[0] = a + b;
            pair[1] = a - b;
        }

        // Stage len = 4: twiddles are 1 and ∓i.
        if n >= 4 {
            for quad in buf.chunks_exact_mut(4) {
                let a = quad[0];
                let b = quad[2];
                quad[0] = a + b;
                quad[2] = a - b;
                let c = quad[1];
                let d = quad[3];
                // d · (∓i) without a full complex multiply.
                let d = if forward {
                    Complex64::new(d.im, -d.re)
                } else {
                    Complex64::new(-d.im, d.re)
                };
                quad[1] = c + d;
                quad[3] = c - d;
            }
        }

        // Remaining stages: table-driven, contiguous twiddles, kernel
        // selected by the backend (bit-identical across backends).
        for stage_tw in stages {
            simd::radix2_stage(backend, buf, stage_tw);
        }
    }
}

/// A reusable plan computing an N-point **real-input** spectrum via one
/// N/2-point complex transform.
///
/// This is the detector's hot-path transform: packing even samples into
/// real parts and odd samples into imaginary parts halves the butterfly
/// count relative to padding the signal into a full complex buffer
/// ([`fft_real_padded`]), and the O(N) recombination restores the exact
/// N-point spectrum, conjugate symmetry included.
///
/// # Example
///
/// ```
/// use piano_dsp::fft::{fft_real_padded, RealFftPlan};
///
/// let x: Vec<f64> = (0..16).map(|n| (n as f64 * 0.9).sin()).collect();
/// let plan = RealFftPlan::new(16);
/// let mut scratch = Vec::new();
/// let mut spec = Vec::new();
/// plan.forward_full(&x, &mut scratch, &mut spec);
/// for (a, b) in spec.iter().zip(&fft_real_padded(&x)) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    size: usize,
    half: FftPlan,
    /// `e^{-2πi·k/N}` for `k < N/2`: recombination twiddles.
    twiddles: Vec<Complex64>,
}

impl RealFftPlan {
    /// Builds a plan for real transforms of length `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not a power of two or is smaller than 2.
    pub fn new(size: usize) -> Self {
        assert!(
            size.is_power_of_two() && size >= 2,
            "real FFT size must be a power of two ≥ 2, got {size}"
        );
        let twiddles = (0..size / 2)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / size as f64))
            .collect();
        RealFftPlan {
            size,
            half: FftPlan::new(size / 2),
            twiddles,
        }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Packs the input and runs the half-size complex transform into
    /// `scratch`, leaving `Z[k] = E[k] + i·O[k]` (even/odd interleave).
    fn half_transform(&self, input: &[f64], scratch: &mut Vec<Complex64>, backend: DspBackend) {
        assert_eq!(input.len(), self.size, "input length must match plan size");
        let h = self.size / 2;
        scratch.clear();
        scratch.extend((0..h).map(|m| Complex64::new(input[2 * m], input[2 * m + 1])));
        self.half.forward_with(scratch, backend);
    }

    /// Computes the full N-length complex spectrum of a real signal.
    ///
    /// `scratch` is the half-size work buffer; `out` is resized to N. The
    /// result is identical (to rounding) to [`fft_real_padded`], including
    /// the mirrored bins above Nyquist that the paper's Algorithm 2
    /// indexes directly.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.size()`.
    pub fn forward_full(
        &self,
        input: &[f64],
        scratch: &mut Vec<Complex64>,
        out: &mut Vec<Complex64>,
    ) {
        self.forward_full_with(input, scratch, out, simd::active_backend());
    }

    /// [`Self::forward_full`] pinned to an explicit DSP backend
    /// (bit-identical across backends; see [`crate::simd`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.size()`.
    pub fn forward_full_with(
        &self,
        input: &[f64],
        scratch: &mut Vec<Complex64>,
        out: &mut Vec<Complex64>,
        backend: DspBackend,
    ) {
        self.half_transform(input, scratch, backend);
        let n = self.size;
        let h = n / 2;
        out.clear();
        out.resize(n, Complex64::ZERO);
        let z0 = scratch[0];
        out[0] = Complex64::from_real(z0.re + z0.im);
        out[h] = Complex64::from_real(z0.re - z0.im);
        // Each k < h/2 pairs with h−k: E[h−k] = E*[k] and O[h−k] = O*[k],
        // so one twiddle multiply yields four output bins —
        // X[k] = E + ωᵏO, X[h+k] = E − ωᵏO, and their conjugate mirrors.
        for k in 1..h.div_ceil(2) {
            let (e, wo) = self.recombine(scratch, k);
            let xk = e + wo;
            let xhk = e - wo;
            out[k] = xk;
            out[n - k] = xk.conj();
            out[h + k] = xhk;
            out[h - k] = xhk.conj();
        }
        if h >= 2 {
            // Middle bin k = h/2 pairs with itself.
            let k = h / 2;
            let (e, wo) = self.recombine(scratch, k);
            let xk = e + wo;
            out[k] = xk;
            out[n - k] = xk.conj();
        }
    }

    /// Recombination core for bin `k` of the packed half-transform:
    /// returns `(E[k], ωᵏ·O[k])`.
    #[inline(always)]
    fn recombine(&self, scratch: &[Complex64], k: usize) -> (Complex64, Complex64) {
        let h = self.size / 2;
        let zk = scratch[k];
        let zc = scratch[h - k].conj();
        // E[k] = (Z[k] + Z*[h−k])/2, O[k] = −i·(Z[k] − Z*[h−k])/2.
        let even = (zk + zc).scale(0.5);
        let odd = Complex64::new(0.0, -0.5) * (zk - zc);
        (even, self.twiddles[k] * odd)
    }

    /// Computes the raw (unnormalized) power `|X[k]|²` of every bin of the
    /// full N-length spectrum, without materializing the complex spectrum.
    ///
    /// This is the detector's innermost operation; callers apply their own
    /// normalization (see [`crate::spectrum`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.size()`.
    pub fn power_into(&self, input: &[f64], scratch: &mut Vec<Complex64>, out: &mut Vec<f64>) {
        self.power_into_with(input, scratch, out, simd::active_backend());
    }

    /// [`Self::power_into`] pinned to an explicit DSP backend
    /// (bit-identical across backends; see [`crate::simd`]).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != self.size()`.
    pub fn power_into_with(
        &self,
        input: &[f64],
        scratch: &mut Vec<Complex64>,
        out: &mut Vec<f64>,
        backend: DspBackend,
    ) {
        self.half_transform(input, scratch, backend);
        let n = self.size;
        let h = n / 2;
        out.clear();
        out.resize(n, 0.0);
        let z0 = scratch[0];
        out[0] = (z0.re + z0.im) * (z0.re + z0.im);
        out[h] = (z0.re - z0.im) * (z0.re - z0.im);
        for k in 1..h.div_ceil(2) {
            let (e, wo) = self.recombine(scratch, k);
            let pk = (e + wo).norm_sqr();
            let phk = (e - wo).norm_sqr();
            out[k] = pk;
            out[n - k] = pk;
            out[h + k] = phk;
            out[h - k] = phk;
        }
        if h >= 2 {
            let k = h / 2;
            let (e, wo) = self.recombine(scratch, k);
            let pk = (e + wo).norm_sqr();
            out[k] = pk;
            out[n - k] = pk;
        }
    }
}

/// Default number of distinct transform sizes each plan cache retains.
///
/// Eight covers a fixed-deployment workload (one signal window plus a few
/// correlation/filter sizes) with room to spare; multi-tenant services
/// cycling through more window sizes can raise it with
/// [`set_plan_cache_capacity`].
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 8;

/// A tiny least-recently-used map from transform size to shared plan.
///
/// Linear scans are deliberate: the cache holds at most a handful of
/// entries, so a `Vec` beats hash-map overhead and keeps eviction exact
/// (evict the minimum use-stamp).
struct LruPlans<P> {
    capacity: usize,
    tick: u64,
    entries: Vec<(usize, Arc<P>, u64)>,
}

impl<P> LruPlans<P> {
    fn new(capacity: usize) -> Self {
        LruPlans {
            capacity: capacity.max(1),
            tick: 0,
            entries: Vec::new(),
        }
    }

    fn get_or_insert(&mut self, size: usize, build: impl FnOnce() -> P) -> Arc<P> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.entries.iter_mut().find(|(s, _, _)| *s == size) {
            entry.2 = tick;
            return Arc::clone(&entry.1);
        }
        let plan = Arc::new(build());
        self.entries.push((size, Arc::clone(&plan), tick));
        self.evict_to_capacity();
        plan
    }

    fn evict_to_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let oldest = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, _, t))| *t)
                .map(|(i, _)| i)
                .expect("non-empty cache has an oldest entry");
            self.entries.swap_remove(oldest);
        }
    }

    fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        self.evict_to_capacity();
    }
}

/// Process-wide bounded plan cache, keyed by size.
static PLAN_CACHE: OnceLock<Mutex<LruPlans<FftPlan>>> = OnceLock::new();
/// Process-wide bounded real-input plan cache, keyed by size.
static REAL_PLAN_CACHE: OnceLock<Mutex<LruPlans<RealFftPlan>>> = OnceLock::new();

fn plan_cache() -> &'static Mutex<LruPlans<FftPlan>> {
    PLAN_CACHE.get_or_init(|| Mutex::new(LruPlans::new(DEFAULT_PLAN_CACHE_CAPACITY)))
}

fn real_plan_cache() -> &'static Mutex<LruPlans<RealFftPlan>> {
    REAL_PLAN_CACHE.get_or_init(|| Mutex::new(LruPlans::new(DEFAULT_PLAN_CACHE_CAPACITY)))
}

/// Sets how many distinct sizes each plan cache may hold (both the complex
/// and the real-input cache), evicting least-recently-used plans if the
/// new capacity is smaller. Capacities below 1 are clamped to 1.
///
/// Plans already handed out stay valid — eviction only drops the cache's
/// own reference.
pub fn set_plan_cache_capacity(capacity: usize) {
    plan_cache()
        .lock()
        .expect("FFT plan cache poisoned")
        .set_capacity(capacity);
    real_plan_cache()
        .lock()
        .expect("real FFT plan cache poisoned")
        .set_capacity(capacity);
}

/// Number of plans currently resident in the (complex, real-input) caches.
/// Exposed for memory-bound tests and diagnostics.
pub fn plan_cache_lens() -> (usize, usize) {
    (
        plan_cache()
            .lock()
            .expect("FFT plan cache poisoned")
            .entries
            .len(),
        real_plan_cache()
            .lock()
            .expect("real FFT plan cache poisoned")
            .entries
            .len(),
    )
}

/// Returns the shared [`FftPlan`] for `size`, building it on first use.
///
/// One-shot helpers ([`fft`], [`ifft`], convolution, correlation) go
/// through this cache so repeated calls at the same size never rebuild
/// twiddle tables. The cache is a bounded LRU (see
/// [`set_plan_cache_capacity`]).
///
/// # Panics
///
/// Panics if `size` is zero or not a power of two.
pub fn cached_plan(size: usize) -> Arc<FftPlan> {
    plan_cache()
        .lock()
        .expect("FFT plan cache poisoned")
        .get_or_insert(size, || FftPlan::new(size))
}

/// Returns the shared [`RealFftPlan`] for `size`, building it on first use.
///
/// The cache is a bounded LRU (see [`set_plan_cache_capacity`]).
///
/// # Panics
///
/// Panics if `size` is not a power of two or is smaller than 2.
pub fn cached_real_plan(size: usize) -> Arc<RealFftPlan> {
    real_plan_cache()
        .lock()
        .expect("real FFT plan cache poisoned")
        .get_or_insert(size, || RealFftPlan::new(size))
}

/// One-shot forward FFT of a complex buffer. Returns a new vector.
///
/// Uses the shared plan cache; prefer holding an [`FftPlan`] (or
/// [`cached_plan`]) in hot loops to also reuse buffers.
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut buf = input.to_vec();
    cached_plan(input.len()).forward(&mut buf);
    buf
}

/// One-shot inverse FFT (normalized by `1/N`). Returns a new vector.
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let mut buf = input.to_vec();
    cached_plan(input.len()).inverse(&mut buf);
    buf
}

/// Forward FFT of a real signal; returns the full complex spectrum.
///
/// The result has the conjugate symmetry `X[N-k] = X[k]*`, which the ACTION
/// detector exploits implicitly: the paper indexes candidate frequencies
/// above Nyquist directly (`⌊f/f_s·|W|⌋` for f up to 35 kHz at
/// f_s = 44.1 kHz), which lands on the mirrored bins of the full spectrum.
///
/// Computed via the cached [`RealFftPlan`] (half the butterflies of the
/// padded path, which remains available as [`fft_real_padded`]).
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn fft_real(input: &[f64]) -> Vec<Complex64> {
    if input.len() < 2 {
        // Keep the documented panic for length 0 (not a power of two);
        // length 1 is the identity transform.
        assert!(
            input.len().is_power_of_two(),
            "FFT size must be a power of two, got {}",
            input.len()
        );
        return input.iter().map(|&x| Complex64::from_real(x)).collect();
    }
    let plan = cached_real_plan(input.len());
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    plan.forward_full(input, &mut scratch, &mut out);
    out
}

/// Forward FFT of a real signal via zero-imaginary padding into a full
/// complex transform — the pre-optimization reference path.
///
/// Retained deliberately: the property tests pin [`fft_real`] against this
/// implementation, and `piano-bench` measures the real-input speedup
/// against it in the same run.
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn fft_real_padded(input: &[f64]) -> Vec<Complex64> {
    let buf: Vec<Complex64> = input.iter().map(|&x| Complex64::from_real(x)).collect();
    fft(&buf)
}

/// Next power of two `>= n` (with `next_pow2(0) == 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tone;
    use proptest::prelude::*;

    fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex64::cis(
                            -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64,
                        )
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex64> = (0..32)
            .map(|n| Complex64::new((n as f64 * 0.7).sin(), (n as f64 * 0.3).cos()))
            .collect();
        let fast = fft(&x);
        let slow = naive_dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9, "fast {a} vs slow {b}");
        }
    }

    #[test]
    fn size_one_is_identity() {
        let x = vec![Complex64::new(2.0, -3.0)];
        assert_eq!(fft(&x), x);
        assert_eq!(ifft(&x), x);
        assert_eq!(fft_real(&[5.0]), vec![Complex64::from_real(5.0)]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_real_rejects_empty_input() {
        let _ = fft_real(&[]);
    }

    #[test]
    fn size_one_plan_has_identity_permutation() {
        // The bit-reversal table must come out correct directly, without a
        // degenerate-shift fix-up.
        let plan = FftPlan::new(1);
        assert_eq!(plan.rev, vec![0]);
        let plan2 = FftPlan::new(2);
        assert_eq!(plan2.rev, vec![0, 1]);
        let plan4 = FftPlan::new(4);
        assert_eq!(plan4.rev, vec![0, 2, 1, 3]);
    }

    #[test]
    fn size_two_butterfly() {
        let x = vec![Complex64::from_real(1.0), Complex64::from_real(2.0)];
        let y = fft(&x);
        assert!((y[0] - Complex64::from_real(3.0)).abs() < 1e-12);
        assert!((y[1] - Complex64::from_real(-1.0)).abs() < 1e-12);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        for z in fft(&x) {
            assert!((z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 1024;
        let fs = 44_100.0;
        let bin = 100;
        let f = bin as f64 * fs / n as f64;
        let x = tone::sine(f, 0.0, 1.0, fs, n);
        let spec = fft_real(&x);
        // Amplitude-1 sine on an exact bin: |X[bin]| == N/2.
        assert!((spec[bin].abs() - n as f64 / 2.0).abs() < 1e-6);
        // Mirror bin carries the conjugate.
        assert!((spec[n - bin].abs() - n as f64 / 2.0).abs() < 1e-6);
        // Everything else is numerically zero.
        let leak: f64 = (0..n)
            .filter(|&k| k != bin && k != n - bin)
            .map(|k| spec[k].abs())
            .fold(0.0, f64::max);
        assert!(leak < 1e-6, "max leakage {leak}");
    }

    #[test]
    fn conjugate_symmetry_for_real_input() {
        let x: Vec<f64> = (0..64).map(|n| ((n * n) as f64).sin()).collect();
        let spec = fft_real(&x);
        for k in 1..32 {
            assert!((spec[64 - k] - spec[k].conj()).abs() < 1e-9);
        }
    }

    #[test]
    fn real_plan_power_matches_full_spectrum() {
        let x: Vec<f64> = (0..128)
            .map(|n| (n as f64 * 0.37).sin() + (n as f64 * 0.11).cos())
            .collect();
        let plan = RealFftPlan::new(128);
        let mut scratch = Vec::new();
        let mut spec = Vec::new();
        let mut powers = Vec::new();
        plan.forward_full(&x, &mut scratch, &mut spec);
        plan.power_into(&x, &mut scratch, &mut powers);
        assert_eq!(powers.len(), 128);
        for (p, z) in powers.iter().zip(&spec) {
            assert!((p - z.norm_sqr()).abs() < 1e-9 * (1.0 + z.norm_sqr()));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn real_plan_rejects_non_power_of_two() {
        let _ = RealFftPlan::new(24);
    }

    #[test]
    #[should_panic(expected = "must match plan size")]
    fn rejects_mismatched_buffer() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex64::ZERO; 4];
        plan.forward(&mut buf);
    }

    #[test]
    fn optimized_kernel_matches_reference_kernel() {
        for size in [2usize, 4, 8, 64, 256, 1024] {
            let plan = FftPlan::new(size);
            let input: Vec<Complex64> = (0..size)
                .map(|t| Complex64::new((t as f64 * 0.13).sin(), (t as f64 * 0.41).cos()))
                .collect();
            let mut fast = input.clone();
            plan.forward(&mut fast);
            let mut reference = input.clone();
            plan.forward_reference(&mut reference);
            for (a, b) in fast.iter().zip(&reference) {
                assert!(
                    (*a - *b).abs() < 1e-9 * (1.0 + b.abs()),
                    "size {size}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn cached_plans_are_shared() {
        let a = cached_plan(256);
        let b = cached_plan(256);
        assert!(Arc::ptr_eq(&a, &b));
        let ra = cached_real_plan(256);
        let rb = cached_real_plan(256);
        assert!(Arc::ptr_eq(&ra, &rb));
        assert_eq!(ra.size(), 256);
    }

    #[test]
    fn lru_evicts_least_recently_used_size() {
        // Unit-test the LRU structure directly: the process-wide caches are
        // shared with concurrently running tests, so eviction order is only
        // deterministic on a private instance.
        let mut lru: LruPlans<FftPlan> = LruPlans::new(3);
        for size in [2usize, 4, 8] {
            let _ = lru.get_or_insert(size, || FftPlan::new(size));
        }
        // Touch 2 so that 4 becomes the least recently used.
        let first = lru.get_or_insert(2, || unreachable!("2 is cached"));
        let _ = lru.get_or_insert(16, || FftPlan::new(16));
        assert_eq!(lru.entries.len(), 3);
        let sizes: Vec<usize> = lru.entries.iter().map(|(s, _, _)| *s).collect();
        assert!(sizes.contains(&2) && sizes.contains(&8) && sizes.contains(&16));
        assert!(!sizes.contains(&4), "4 was LRU and must be evicted");
        // The evicted size rebuilds on demand; retained handles stay valid.
        let rebuilt = lru.get_or_insert(4, || FftPlan::new(4));
        assert_eq!(rebuilt.size(), 4);
        assert_eq!(first.size(), 2);
    }

    #[test]
    fn lru_shrinking_capacity_evicts_down() {
        let mut lru: LruPlans<FftPlan> = LruPlans::new(4);
        for size in [2usize, 4, 8, 16] {
            let _ = lru.get_or_insert(size, || FftPlan::new(size));
        }
        lru.set_capacity(2);
        assert_eq!(lru.entries.len(), 2);
        let sizes: Vec<usize> = lru.entries.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(sizes.len(), 2);
        assert!(sizes.contains(&8) && sizes.contains(&16), "{sizes:?}");
    }

    #[test]
    fn global_plan_caches_stay_bounded_for_many_tenant_sizes() {
        // The multi-tenant memory bound: hammering the process-wide caches
        // with more window sizes than the capacity must never grow them
        // past it — eviction caps resident plan memory.
        for bits in 1..=12u32 {
            let size = 1usize << bits;
            let _ = cached_plan(size);
            let _ = cached_real_plan(size);
        }
        let (complex_len, real_len) = plan_cache_lens();
        assert!(
            complex_len <= DEFAULT_PLAN_CACHE_CAPACITY,
            "complex cache holds {complex_len} plans"
        );
        assert!(
            real_len <= DEFAULT_PLAN_CACHE_CAPACITY,
            "real cache holds {real_len} plans"
        );
        // Evicted sizes still work — they just rebuild.
        assert_eq!(cached_plan(2).size(), 2);
    }

    #[test]
    fn next_pow2_examples() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(4096), 4096);
        assert_eq!(next_pow2(4097), 8192);
    }

    proptest! {
        #[test]
        fn roundtrip_recovers_input(
            data in proptest::collection::vec(-1000.0f64..1000.0, 1..=128),
        ) {
            let n = next_pow2(data.len());
            let mut padded = data.clone();
            padded.resize(n, 0.0);
            let spec = fft_real(&padded);
            let back = ifft(&spec);
            for (a, b) in padded.iter().zip(&back) {
                prop_assert!((a - b.re).abs() < 1e-8);
                prop_assert!(b.im.abs() < 1e-8);
            }
        }

        #[test]
        fn real_fft_matches_padded_reference(
            data in proptest::collection::vec(-1000.0f64..1000.0, 2..=256),
        ) {
            let n = next_pow2(data.len());
            let mut padded = data.clone();
            padded.resize(n, 0.0);
            let fast = fft_real(&padded);
            let reference = fft_real_padded(&padded);
            prop_assert_eq!(fast.len(), reference.len());
            let scale = 1.0 + reference.iter().map(|z| z.abs()).fold(0.0, f64::max);
            for (a, b) in fast.iter().zip(&reference) {
                prop_assert!(
                    (*a - *b).abs() < 1e-9 * scale,
                    "bin mismatch: {} vs {}", a, b
                );
            }
        }

        #[test]
        fn parseval_energy_preserved(
            data in proptest::collection::vec(-100.0f64..100.0, 1..=64),
        ) {
            let n = next_pow2(data.len());
            let mut padded = data.clone();
            padded.resize(n, 0.0);
            let time_energy: f64 = padded.iter().map(|x| x * x).sum();
            let spec = fft_real(&padded);
            let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
        }

        #[test]
        fn linearity(
            a in proptest::collection::vec(-10.0f64..10.0, 16),
            b in proptest::collection::vec(-10.0f64..10.0, 16),
            k in -5.0f64..5.0,
        ) {
            let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + k * y).collect();
            let fa = fft_real(&a);
            let fb = fft_real(&b);
            let fsum = fft_real(&sum);
            for i in 0..16 {
                let expect = fa[i] + fb[i].scale(k);
                prop_assert!((fsum[i] - expect).abs() < 1e-7);
            }
        }
    }
}
