//! Iterative radix-2 Cooley–Tukey FFT.
//!
//! The ACTION detector (paper Algorithm 2, line 2) computes the power
//! spectrum of every candidate window via FFT; the paper fixes the window
//! length to 4096 samples precisely because "FFT requires the length of the
//! signal to be a power of 2". This module implements that FFT from scratch:
//! an in-place, iterative, decimation-in-time radix-2 transform with
//! precomputed twiddle tables (see [`FftPlan`]) so the detector's inner loop
//! does no trigonometry.
//!
//! Conventions: [`fft`] computes the unnormalized DFT
//! `X[k] = Σ_n x[n]·e^{-2πi·kn/N}`; [`ifft`] divides by `N`, so
//! `ifft(fft(x)) == x` up to floating-point error.

use crate::complex::Complex64;

/// A reusable FFT plan for a fixed power-of-two size.
///
/// The plan precomputes the bit-reversal permutation and the twiddle-factor
/// table. Reusing a plan across the thousands of windows scanned by the
/// ACTION detector avoids recomputing `sin`/`cos` per window.
///
/// # Example
///
/// ```
/// use piano_dsp::fft::FftPlan;
/// use piano_dsp::Complex64;
///
/// let plan = FftPlan::new(8);
/// let mut buf: Vec<Complex64> = (0..8).map(|n| Complex64::from_real(n as f64)).collect();
/// let copy = buf.clone();
/// plan.forward(&mut buf);
/// plan.inverse(&mut buf);
/// for (a, b) in buf.iter().zip(&copy) {
///     assert!((*a - *b).abs() < 1e-9);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct FftPlan {
    size: usize,
    /// Bit-reversed index for every position.
    rev: Vec<u32>,
    /// Twiddles for the forward transform: `e^{-2πi·k/N}` for `k < N/2`.
    twiddles: Vec<Complex64>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two.
    pub fn new(size: usize) -> Self {
        assert!(size.is_power_of_two() && size > 0, "FFT size must be a power of two, got {size}");
        let bits = size.trailing_zeros();
        let rev = (0..size as u32)
            .map(|i| i.reverse_bits() >> (32 - bits.max(1)))
            .collect::<Vec<_>>();
        let twiddles = (0..size / 2)
            .map(|k| Complex64::cis(-2.0 * std::f64::consts::PI * k as f64 / size as f64))
            .collect();
        // For size == 1 the shift above is degenerate; fix up explicitly.
        let rev = if size == 1 { vec![0] } else { rev };
        FftPlan { size, rev, twiddles }
    }

    /// Transform length this plan was built for.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// In-place forward DFT.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.size()`.
    pub fn forward(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.size, "buffer length must match plan size");
        if self.size <= 1 {
            return;
        }
        self.permute(buf);
        self.butterflies(buf, false);
    }

    /// In-place inverse DFT (normalized by `1/N`).
    ///
    /// # Panics
    ///
    /// Panics if `buf.len() != self.size()`.
    pub fn inverse(&self, buf: &mut [Complex64]) {
        assert_eq!(buf.len(), self.size, "buffer length must match plan size");
        if self.size <= 1 {
            return;
        }
        self.permute(buf);
        self.butterflies(buf, true);
        let scale = 1.0 / self.size as f64;
        for z in buf.iter_mut() {
            *z = z.scale(scale);
        }
    }

    fn permute(&self, buf: &mut [Complex64]) {
        for i in 0..self.size {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
    }

    fn butterflies(&self, buf: &mut [Complex64], inverse: bool) {
        let n = self.size;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let tw = self.twiddles[k * stride];
                    let tw = if inverse { tw.conj() } else { tw };
                    let even = buf[start + k];
                    let odd = buf[start + k + half] * tw;
                    buf[start + k] = even + odd;
                    buf[start + k + half] = even - odd;
                }
            }
            len <<= 1;
        }
    }
}

/// One-shot forward FFT of a complex buffer. Returns a new vector.
///
/// Prefer [`FftPlan`] in hot loops.
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut buf = input.to_vec();
    FftPlan::new(input.len()).forward(&mut buf);
    buf
}

/// One-shot inverse FFT (normalized by `1/N`). Returns a new vector.
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let mut buf = input.to_vec();
    FftPlan::new(input.len()).inverse(&mut buf);
    buf
}

/// Forward FFT of a real signal; returns the full complex spectrum.
///
/// The result has the conjugate symmetry `X[N-k] = X[k]*`, which the ACTION
/// detector exploits implicitly: the paper indexes candidate frequencies
/// above Nyquist directly (`⌊f/f_s·|W|⌋` for f up to 35 kHz at
/// f_s = 44.1 kHz), which lands on the mirrored bins of the full spectrum.
///
/// # Panics
///
/// Panics if `input.len()` is not a power of two.
pub fn fft_real(input: &[f64]) -> Vec<Complex64> {
    let buf: Vec<Complex64> = input.iter().map(|&x| Complex64::from_real(x)).collect();
    fft(&buf)
}

/// Next power of two `>= n` (with `next_pow2(0) == 1`).
#[inline]
pub fn next_pow2(n: usize) -> usize {
    n.next_power_of_two().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tone;
    use proptest::prelude::*;

    fn naive_dft(x: &[Complex64]) -> Vec<Complex64> {
        let n = x.len();
        (0..n)
            .map(|k| {
                (0..n)
                    .map(|t| {
                        x[t] * Complex64::cis(-2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64)
                    })
                    .sum()
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex64> = (0..32)
            .map(|n| Complex64::new((n as f64 * 0.7).sin(), (n as f64 * 0.3).cos()))
            .collect();
        let fast = fft(&x);
        let slow = naive_dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9, "fast {a} vs slow {b}");
        }
    }

    #[test]
    fn size_one_is_identity() {
        let x = vec![Complex64::new(2.0, -3.0)];
        assert_eq!(fft(&x), x);
        assert_eq!(ifft(&x), x);
    }

    #[test]
    fn size_two_butterfly() {
        let x = vec![Complex64::from_real(1.0), Complex64::from_real(2.0)];
        let y = fft(&x);
        assert!((y[0] - Complex64::from_real(3.0)).abs() < 1e-12);
        assert!((y[1] - Complex64::from_real(-1.0)).abs() < 1e-12);
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Complex64::ZERO; 16];
        x[0] = Complex64::ONE;
        for z in fft(&x) {
            assert!((z - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_tone_concentrates_in_one_bin() {
        let n = 1024;
        let fs = 44_100.0;
        let bin = 100;
        let f = bin as f64 * fs / n as f64;
        let x = tone::sine(f, 0.0, 1.0, fs, n);
        let spec = fft_real(&x);
        // Amplitude-1 sine on an exact bin: |X[bin]| == N/2.
        assert!((spec[bin].abs() - n as f64 / 2.0).abs() < 1e-6);
        // Mirror bin carries the conjugate.
        assert!((spec[n - bin].abs() - n as f64 / 2.0).abs() < 1e-6);
        // Everything else is numerically zero.
        let leak: f64 = (0..n)
            .filter(|&k| k != bin && k != n - bin)
            .map(|k| spec[k].abs())
            .fold(0.0, f64::max);
        assert!(leak < 1e-6, "max leakage {leak}");
    }

    #[test]
    fn conjugate_symmetry_for_real_input() {
        let x: Vec<f64> = (0..64).map(|n| ((n * n) as f64).sin()).collect();
        let spec = fft_real(&x);
        for k in 1..32 {
            assert!((spec[64 - k] - spec[k].conj()).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = FftPlan::new(12);
    }

    #[test]
    #[should_panic(expected = "must match plan size")]
    fn rejects_mismatched_buffer() {
        let plan = FftPlan::new(8);
        let mut buf = vec![Complex64::ZERO; 4];
        plan.forward(&mut buf);
    }

    #[test]
    fn next_pow2_examples() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(5), 8);
        assert_eq!(next_pow2(4096), 4096);
        assert_eq!(next_pow2(4097), 8192);
    }

    proptest! {
        #[test]
        fn roundtrip_recovers_input(
            data in proptest::collection::vec(-1000.0f64..1000.0, 1..=128),
        ) {
            let n = next_pow2(data.len());
            let mut padded = data.clone();
            padded.resize(n, 0.0);
            let spec = fft_real(&padded);
            let back = ifft(&spec);
            for (a, b) in padded.iter().zip(&back) {
                prop_assert!((a - b.re).abs() < 1e-8);
                prop_assert!(b.im.abs() < 1e-8);
            }
        }

        #[test]
        fn parseval_energy_preserved(
            data in proptest::collection::vec(-100.0f64..100.0, 1..=64),
        ) {
            let n = next_pow2(data.len());
            let mut padded = data.clone();
            padded.resize(n, 0.0);
            let time_energy: f64 = padded.iter().map(|x| x * x).sum();
            let spec = fft_real(&padded);
            let freq_energy: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
            prop_assert!((time_energy - freq_energy).abs() < 1e-6 * (1.0 + time_energy));
        }

        #[test]
        fn linearity(
            a in proptest::collection::vec(-10.0f64..10.0, 16),
            b in proptest::collection::vec(-10.0f64..10.0, 16),
            k in -5.0f64..5.0,
        ) {
            let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + k * y).collect();
            let fa = fft_real(&a);
            let fb = fft_real(&b);
            let fsum = fft_real(&sum);
            for i in 0..16 {
                let expect = fa[i] + fb[i].scale(k);
                prop_assert!((fsum[i] - expect).abs() < 1e-7);
            }
        }
    }
}
