//! Runtime-dispatched SIMD kernels for the hot DSP inner loops.
//!
//! Algorithm 1's cost is dominated by three scalar inner loops: the
//! radix-2 butterfly stages ([`crate::fft::FftPlan`] /
//! [`crate::fft::RealFftPlan`]), the sliding-DFT per-bin rotate/correct
//! loop ([`crate::sparse::SlidingDft`]), and the Goertzel bank
//! ([`crate::sparse::GoertzelBank`]). This module vectorizes all three
//! behind a single dispatch point:
//!
//! * **x86_64** — an SSE2 baseline (always present on x86_64) and an
//!   AVX2 path (two complexes / four Goertzel lanes per 256-bit register),
//!   selected via [`std::arch::is_x86_feature_detected!`].
//! * **aarch64** — NEON (baseline on aarch64, so compile-time gated).
//! * **every other target** — the scalar kernels, which are also the
//!   universal reference every SIMD path is tested against.
//!
//! # Numerical contract: bit-exact, by construction
//!
//! Every SIMD kernel executes the **same IEEE-754 operation sequence per
//! output value** as the scalar reference: identical multiplies, adds and
//! subtracts, in identical order, with no FMA contraction and no
//! reassociated accumulators (vector lanes hold *independent* outputs —
//! bins or butterflies — never partial sums of one output). Subtraction
//! is implemented either natively (`addsub`, NEON lane recombination) or
//! as addition of the negated operand, which IEEE 754 defines to be the
//! same operation on every non-NaN value. Consequently each backend is
//! **bit-identical** to [`DspBackend::Scalar`] for all finite inputs —
//! not merely ULP-close — and threshold comparisons downstream
//! (`piano-core`'s grant/deny decisions) cannot depend on the backend.
//! (Only NaN *payload and sign* propagation is outside the contract:
//! the emulated addsub and commuted addends may pick a different NaN
//! bit pattern than scalar. Non-finite samples never reach these
//! kernels in production — they are rejected at wire decode and zeroed
//! at the streaming ingest boundary — and a NaN stays a NaN on every
//! backend, so even then no threshold comparison can flip.)
//! `tests/simd_equivalence.rs` pins this with `f64::to_bits` equality;
//! `tests/simd_decisions.rs` pins end-to-end decision invariance.
//!
//! # Selection
//!
//! The process-wide active backend is chosen once, on first use, in this
//! order:
//!
//! 1. [`set_backend`], if a caller already forced one.
//! 2. The `PIANO_DSP_SIMD` environment variable:
//!    `off`/`scalar` → scalar; `auto` (or unset) → best available;
//!    a backend name (`sse2`, `avx2`, `neon`) → that backend if the CPU
//!    has it, otherwise **scalar** (never a silently different SIMD
//!    path); any unrecognized value → scalar. Forcing an unavailable or
//!    unknown name falls back to the reference implementation so a
//!    mis-pinned CI job degrades to correct-but-slow, never to UB.
//! 3. Best available: AVX2 → SSE2 → NEON → scalar.
//!
//! [`set_backend`] may also be called at any time (benches force each
//! path in one process); plans and banks hold no backend state, so the
//! switch takes effect on the next kernel call.
//!
//! # Example
//!
//! ```
//! use piano_dsp::simd::{self, DspBackend};
//!
//! // Scalar is always available; the active backend always is too.
//! assert!(DspBackend::Scalar.is_available());
//! assert!(simd::active_backend().is_available());
//! assert!(simd::available_backends().contains(&DspBackend::Scalar));
//! ```

use crate::complex::Complex64;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

/// A DSP kernel implementation the dispatch layer can select.
///
/// All variants exist on every target so configuration and test code is
/// portable; [`DspBackend::is_available`] reports whether the *running*
/// CPU can execute a variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DspBackend {
    /// Portable scalar kernels — always available, and the reference
    /// implementation every SIMD path must match bit-for-bit.
    Scalar,
    /// x86_64 SSE2 (baseline on x86_64): one complex / two Goertzel
    /// lanes per 128-bit register.
    Sse2,
    /// x86_64 AVX2: two complexes / four Goertzel lanes per 256-bit
    /// register. FMA is deliberately **not** used (it would change
    /// rounding and break the bit-exact contract).
    Avx2,
    /// aarch64 NEON (baseline on aarch64): one complex / two Goertzel
    /// lanes per 128-bit register.
    Neon,
}

impl DspBackend {
    /// All variants, in preference order (fastest first) with the scalar
    /// reference last.
    pub const ALL: [DspBackend; 4] = [
        DspBackend::Avx2,
        DspBackend::Sse2,
        DspBackend::Neon,
        DspBackend::Scalar,
    ];

    /// Canonical lowercase name (`scalar`, `sse2`, `avx2`, `neon`) — the
    /// spelling `PIANO_DSP_SIMD` accepts.
    pub fn name(self) -> &'static str {
        match self {
            DspBackend::Scalar => "scalar",
            DspBackend::Sse2 => "sse2",
            DspBackend::Avx2 => "avx2",
            DspBackend::Neon => "neon",
        }
    }

    /// Parses a canonical backend name (as produced by
    /// [`DspBackend::name`]); `off` is accepted as an alias for `scalar`.
    pub fn parse(name: &str) -> Option<DspBackend> {
        match name {
            "scalar" | "off" => Some(DspBackend::Scalar),
            "sse2" => Some(DspBackend::Sse2),
            "avx2" => Some(DspBackend::Avx2),
            "neon" => Some(DspBackend::Neon),
            _ => None,
        }
    }

    /// Whether the running CPU can execute this backend.
    pub fn is_available(self) -> bool {
        match self {
            DspBackend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            DspBackend::Sse2 => std::arch::is_x86_feature_detected!("sse2"),
            #[cfg(target_arch = "x86_64")]
            DspBackend::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "aarch64")]
            DspBackend::Neon => true,
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }
}

impl fmt::Display for DspBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned by [`set_backend`] for a backend the running CPU
/// cannot execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BackendUnavailable(pub DspBackend);

impl fmt::Display for BackendUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DSP backend {} is not available on this CPU", self.0)
    }
}

impl std::error::Error for BackendUnavailable {}

/// Backends the running CPU can execute, in preference order; always
/// ends with (and at minimum contains) [`DspBackend::Scalar`].
pub fn available_backends() -> Vec<DspBackend> {
    DspBackend::ALL
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// The fastest available backend (what `PIANO_DSP_SIMD=auto` selects).
pub fn best_backend() -> DspBackend {
    *available_backends()
        .first()
        .expect("scalar always available")
}

/// Pure selection rule for a `PIANO_DSP_SIMD` value (`None` = unset).
///
/// Exposed so the env contract is testable without mutating the process
/// environment: unset/`auto` → best available; `off`/`scalar` → scalar;
/// an available backend name → that backend; an unavailable or unknown
/// name → scalar (the reference, never a different SIMD path).
pub fn backend_for_env_value(value: Option<&str>) -> DspBackend {
    match value.map(str::trim) {
        None | Some("") | Some("auto") => best_backend(),
        Some(name) => match DspBackend::parse(name) {
            Some(b) if b.is_available() => b,
            _ => DspBackend::Scalar,
        },
    }
}

/// What the environment selects right now (reads `PIANO_DSP_SIMD`).
pub fn env_backend() -> DspBackend {
    backend_for_env_value(std::env::var("PIANO_DSP_SIMD").ok().as_deref())
}

/// Active backend, `0` = not yet initialized, else `variant index + 1`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(b: DspBackend) -> u8 {
    match b {
        DspBackend::Scalar => 1,
        DspBackend::Sse2 => 2,
        DspBackend::Avx2 => 3,
        DspBackend::Neon => 4,
    }
}

fn decode(v: u8) -> DspBackend {
    match v {
        1 => DspBackend::Scalar,
        2 => DspBackend::Sse2,
        3 => DspBackend::Avx2,
        4 => DspBackend::Neon,
        _ => unreachable!("invalid backend encoding {v}"),
    }
}

/// The backend every dispatching kernel currently uses.
///
/// Initialized from `PIANO_DSP_SIMD` (see the module docs for the
/// selection order) on first call; [`set_backend`] overrides it at any
/// time. The returned backend is always available on this CPU.
pub fn active_backend() -> DspBackend {
    let v = ACTIVE.load(Ordering::Relaxed);
    if v != 0 {
        return decode(v);
    }
    // First use: resolve from the environment. A concurrent set_backend
    // wins the race (compare_exchange only fills the uninitialized slot).
    let from_env = env_backend();
    let _ = ACTIVE.compare_exchange(0, encode(from_env), Ordering::Relaxed, Ordering::Relaxed);
    decode(ACTIVE.load(Ordering::Relaxed))
}

/// Forces the process-wide backend.
///
/// # Errors
///
/// Returns [`BackendUnavailable`] (leaving the active backend unchanged)
/// if the running CPU cannot execute `backend`.
pub fn set_backend(backend: DspBackend) -> Result<(), BackendUnavailable> {
    if !backend.is_available() {
        return Err(BackendUnavailable(backend));
    }
    ACTIVE.store(encode(backend), Ordering::Relaxed);
    Ok(())
}

/// Re-resolves the active backend from `PIANO_DSP_SIMD`, discarding any
/// prior [`set_backend`] override. Tests that force backends restore the
/// environment's choice with this.
pub fn reset_backend_from_env() {
    ACTIVE.store(encode(env_backend()), Ordering::Relaxed);
}

/// The backend a kernel may actually execute: an unavailable request
/// degrades to scalar. `set_backend`/`active_backend` already guarantee
/// availability, but the explicit-backend entry points are safe public
/// API — without this check a caller could reach AVX2 instructions on a
/// CPU that lacks them (illegal instruction, i.e. UB from safe code).
/// The check is one cached-feature load; results are unchanged either
/// way because every backend is bit-identical.
#[inline]
fn effective(backend: DspBackend) -> DspBackend {
    if backend.is_available() {
        backend
    } else {
        DspBackend::Scalar
    }
}

// ---------------------------------------------------------------------------
// Kernel 1: one radix-2 butterfly stage across a whole buffer.
// ---------------------------------------------------------------------------

/// Applies one radix-2 DIT butterfly stage of length `2 × twiddles.len()`
/// across every chunk of `buf`: for each chunk's `(even, odd)` pair `k`,
/// `b = odd·tw[k]`, `even' = even + b`, `odd' = even − b`.
///
/// All backends are bit-identical (see the module docs). A `backend` the
/// running CPU cannot execute runs the scalar reference instead.
///
/// # Panics
///
/// Panics if `twiddles` is empty or `buf.len()` is not a multiple of the
/// stage length.
pub fn radix2_stage(backend: DspBackend, buf: &mut [Complex64], twiddles: &[Complex64]) {
    let half = twiddles.len();
    assert!(half > 0, "stage needs at least one twiddle");
    assert_eq!(
        buf.len() % (2 * half),
        0,
        "buffer length must be a multiple of the stage length"
    );
    match effective(backend) {
        // SAFETY: `effective` yields Sse2 only on x86_64, where SSE2 is
        // baseline; slice preconditions were asserted above.
        #[cfg(target_arch = "x86_64")]
        DspBackend::Sse2 => unsafe { x86::radix2_stage_sse2(buf, twiddles) },
        // SAFETY: `effective` yields Avx2 only after `best_backend`
        // runtime-detected AVX2 on this CPU; preconditions asserted above.
        #[cfg(target_arch = "x86_64")]
        DspBackend::Avx2 => unsafe { x86::radix2_stage_avx2(buf, twiddles) },
        // SAFETY: NEON is baseline on aarch64; preconditions asserted above.
        #[cfg(target_arch = "aarch64")]
        DspBackend::Neon => unsafe { neon::radix2_stage_neon(buf, twiddles) },
        // Scalar, plus any backend this target cannot compile (already
        // rewritten to Scalar by `effective`); the arm keeps the match
        // total on every architecture.
        _ => radix2_stage_scalar(buf, twiddles),
    }
}

/// Scalar reference butterfly stage (the exact loop the pre-SIMD
/// [`crate::fft::FftPlan`] ran).
fn radix2_stage_scalar(buf: &mut [Complex64], twiddles: &[Complex64]) {
    let len = twiddles.len() * 2;
    for chunk in buf.chunks_exact_mut(len) {
        let (evens, odds) = chunk.split_at_mut(len / 2);
        for ((e, o), &tw) in evens.iter_mut().zip(odds.iter_mut()).zip(twiddles) {
            let a = *e;
            let b = *o * tw;
            *e = a + b;
            *o = a - b;
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel 2: sliding-DFT nominal-step advance.
// ---------------------------------------------------------------------------

/// Advances every tracked sliding-DFT bin by one nominal step:
/// `state[i] = (state[i] + Σ_m corr[i·s+m]·(added[m]−dropped[m]))·rot[i]`
/// with `s = dropped.len()` (`corr` is bin-major, one row of `s`
/// twiddles per bin).
///
/// Lanes hold distinct *bins*; each bin's accumulator runs in the exact
/// scalar order, so all backends are bit-identical. A `backend` the
/// running CPU cannot execute runs the scalar reference instead.
///
/// # Panics
///
/// Panics if the slice lengths are inconsistent
/// (`dropped.len() != added.len()` or
/// `corr.len() != state.len() × dropped.len()` or
/// `rot.len() != state.len()`).
pub fn sliding_advance(
    backend: DspBackend,
    state: &mut [Complex64],
    rot: &[Complex64],
    corr: &[Complex64],
    dropped: &[f64],
    added: &[f64],
) {
    let s = dropped.len();
    assert_eq!(s, added.len(), "dropped/added length mismatch");
    assert_eq!(rot.len(), state.len(), "one rotation per tracked bin");
    assert_eq!(
        corr.len(),
        state.len() * s,
        "one correction twiddle row per tracked bin"
    );
    match effective(backend) {
        // SAFETY: `effective` yields Sse2 only on x86_64, where SSE2 is
        // baseline; slice preconditions were asserted above.
        #[cfg(target_arch = "x86_64")]
        DspBackend::Sse2 => unsafe { x86::sliding_advance_sse2(state, rot, corr, dropped, added) },
        // SAFETY: `effective` yields Avx2 only after `best_backend`
        // runtime-detected AVX2 on this CPU; preconditions asserted above.
        #[cfg(target_arch = "x86_64")]
        DspBackend::Avx2 => unsafe { x86::sliding_advance_avx2(state, rot, corr, dropped, added) },
        // SAFETY: NEON is baseline on aarch64; preconditions asserted above.
        #[cfg(target_arch = "aarch64")]
        DspBackend::Neon => unsafe { neon::sliding_advance_neon(state, rot, corr, dropped, added) },
        _ => sliding_advance_scalar(state, rot, corr, dropped, added),
    }
}

/// Scalar reference advance (the exact loop the pre-SIMD
/// [`crate::sparse::SlidingDft`] ran on nominal steps).
fn sliding_advance_scalar(
    state: &mut [Complex64],
    rot: &[Complex64],
    corr: &[Complex64],
    dropped: &[f64],
    added: &[f64],
) {
    let s = dropped.len();
    for (i, x) in state.iter_mut().enumerate() {
        let tw = &corr[i * s..(i + 1) * s];
        let mut acc = Complex64::ZERO;
        for m in 0..s {
            acc += tw[m].scale(added[m] - dropped[m]);
        }
        *x = (*x + acc) * rot[i];
    }
}

// ---------------------------------------------------------------------------
// Kernel 3: Goertzel bank.
// ---------------------------------------------------------------------------

/// Runs one second-order Goertzel recurrence per coefficient over
/// `signal`, appending `|X|² = s1² + s2² − coeff·s1·s2` to `out` in
/// coefficient order (`out` is *not* cleared).
///
/// Lanes hold distinct *bins*; each bin's `(s1, s2)` recurrence runs in
/// the exact scalar order, so all backends are bit-identical. A
/// `backend` the running CPU cannot execute runs the scalar reference
/// instead.
pub fn goertzel_powers(backend: DspBackend, coeffs: &[f64], signal: &[f64], out: &mut Vec<f64>) {
    out.reserve(coeffs.len());
    match effective(backend) {
        // SAFETY: `effective` yields Sse2 only on x86_64, where SSE2 is
        // baseline; the kernel takes any slice lengths.
        #[cfg(target_arch = "x86_64")]
        DspBackend::Sse2 => unsafe { x86::goertzel_powers_sse2(coeffs, signal, out) },
        // SAFETY: `effective` yields Avx2 only after `best_backend`
        // runtime-detected AVX2 on this CPU.
        #[cfg(target_arch = "x86_64")]
        DspBackend::Avx2 => unsafe { x86::goertzel_powers_avx2(coeffs, signal, out) },
        // SAFETY: NEON is baseline on aarch64.
        #[cfg(target_arch = "aarch64")]
        DspBackend::Neon => unsafe { neon::goertzel_powers_neon(coeffs, signal, out) },
        _ => goertzel_powers_scalar(coeffs, signal, out),
    }
}

/// Scalar reference bank (the exact loop the pre-SIMD
/// [`crate::sparse::GoertzelBank`] ran).
fn goertzel_powers_scalar(coeffs: &[f64], signal: &[f64], out: &mut Vec<f64>) {
    for &coeff in coeffs {
        let (mut s1, mut s2) = (0.0f64, 0.0f64);
        for &x in signal {
            let s0 = x + coeff * s1 - s2;
            s2 = s1;
            s1 = s0;
        }
        out.push(s1 * s1 + s2 * s2 - coeff * s1 * s2);
    }
}

// ---------------------------------------------------------------------------
// x86_64 implementations.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! SSE2 / AVX2 kernels. `Complex64` is `#[repr(C)]` (`re` then `im`),
    //! so a `&[Complex64]` is safely viewable as interleaved
    //! `[re, im, re, im, …]` f64 memory for vector loads/stores.
    //!
    //! Complex multiplication uses the classic shuffle/addsub form, whose
    //! per-lane operations are exactly the scalar expansion
    //! `(a·c − b·d, a·d + b·c)`:
    //!
    //! ```text
    //! p1 = [a, b] · [c, c] = [a·c, b·c]
    //! p2 = [b, a] · [d, d] = [b·d, a·d]
    //! addsub(p1, p2)       = [a·c − b·d, b·c + a·d]
    //! ```
    //!
    //! No FMA anywhere: fused rounding would break the bit-exact
    //! contract against the scalar reference.

    use super::Complex64;
    use core::arch::x86_64::*;

    /// SSE2 has no `addsub`; adding a sign-flipped operand is the IEEE
    /// 754-identical substitute (`a − b ≡ a + (−b)`). Lane 0 (the real
    /// part) carries the flip.
    ///
    /// # Safety
    ///
    /// Requires SSE2 (baseline on x86_64); callers are SSE2-gated.
    #[inline(always)]
    unsafe fn sse2_addsub(p1: __m128d, p2: __m128d) -> __m128d {
        let flip = _mm_set_pd(0.0, -0.0);
        _mm_add_pd(p1, _mm_xor_pd(p2, flip))
    }

    /// `a · b` for one packed complex per register, scalar-identical.
    ///
    /// # Safety
    ///
    /// Requires SSE2 (baseline on x86_64); callers are SSE2-gated.
    #[inline(always)]
    unsafe fn cmul_sse2(a: __m128d, b: __m128d) -> __m128d {
        let b_re = _mm_shuffle_pd(b, b, 0b00);
        let b_im = _mm_shuffle_pd(b, b, 0b11);
        let a_sw = _mm_shuffle_pd(a, a, 0b01);
        sse2_addsub(_mm_mul_pd(a, b_re), _mm_mul_pd(a_sw, b_im))
    }

    /// `a · b` for two packed complexes per register, scalar-identical.
    ///
    /// # Safety
    ///
    /// Requires AVX (implied by the callers' AVX2 gate).
    #[inline(always)]
    unsafe fn cmul_avx(a: __m256d, b: __m256d) -> __m256d {
        let b_re = _mm256_movedup_pd(b);
        let b_im = _mm256_permute_pd(b, 0b1111);
        let a_sw = _mm256_permute_pd(a, 0b0101);
        _mm256_addsub_pd(_mm256_mul_pd(a, b_re), _mm256_mul_pd(a_sw, b_im))
    }

    /// # Safety
    ///
    /// Requires SSE2 (baseline on x86_64). Slice preconditions are
    /// checked by the dispatching wrapper.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn radix2_stage_sse2(buf: &mut [Complex64], twiddles: &[Complex64]) {
        let half = twiddles.len();
        let len = half * 2;
        let tp = twiddles.as_ptr() as *const f64;
        for chunk in buf.chunks_exact_mut(len) {
            let (evens, odds) = chunk.split_at_mut(half);
            let ep = evens.as_mut_ptr() as *mut f64;
            let op = odds.as_mut_ptr() as *mut f64;
            for k in 0..half {
                let tw = _mm_loadu_pd(tp.add(2 * k));
                let o = _mm_loadu_pd(op.add(2 * k));
                let e = _mm_loadu_pd(ep.add(2 * k));
                let b = cmul_sse2(o, tw);
                _mm_storeu_pd(ep.add(2 * k), _mm_add_pd(e, b));
                _mm_storeu_pd(op.add(2 * k), _mm_sub_pd(e, b));
            }
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 (runtime-detected by the dispatch layer before this
    /// backend is selectable). Slice preconditions are checked by the
    /// dispatching wrapper.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn radix2_stage_avx2(buf: &mut [Complex64], twiddles: &[Complex64]) {
        let half = twiddles.len();
        let len = half * 2;
        let tp = twiddles.as_ptr() as *const f64;
        for chunk in buf.chunks_exact_mut(len) {
            let (evens, odds) = chunk.split_at_mut(half);
            let ep = evens.as_mut_ptr() as *mut f64;
            let op = odds.as_mut_ptr() as *mut f64;
            let mut k = 0;
            while k + 2 <= half {
                let tw = _mm256_loadu_pd(tp.add(2 * k));
                let o = _mm256_loadu_pd(op.add(2 * k));
                let e = _mm256_loadu_pd(ep.add(2 * k));
                let b = cmul_avx(o, tw);
                _mm256_storeu_pd(ep.add(2 * k), _mm256_add_pd(e, b));
                _mm256_storeu_pd(op.add(2 * k), _mm256_sub_pd(e, b));
                k += 2;
            }
            // Odd trailing butterfly (only for stages of length 2: the
            // FFT's table-driven stages all have half ≥ 4).
            for ((e, o), &tw) in evens[k..]
                .iter_mut()
                .zip(odds[k..].iter_mut())
                .zip(&twiddles[k..])
            {
                let a = *e;
                let b = *o * tw;
                *e = a + b;
                *o = a - b;
            }
        }
    }

    /// # Safety
    ///
    /// Requires SSE2 (baseline on x86_64). Slice preconditions are
    /// checked by the dispatching wrapper.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn sliding_advance_sse2(
        state: &mut [Complex64],
        rot: &[Complex64],
        corr: &[Complex64],
        dropped: &[f64],
        added: &[f64],
    ) {
        let s = dropped.len();
        let rp = rot.as_ptr() as *const f64;
        let sp = state.as_mut_ptr() as *mut f64;
        for i in 0..state.len() {
            let row = corr.as_ptr().add(i * s) as *const f64;
            let mut acc = _mm_setzero_pd();
            for m in 0..s {
                let d = _mm_set1_pd(added[m] - dropped[m]);
                let tw = _mm_loadu_pd(row.add(2 * m));
                acc = _mm_add_pd(acc, _mm_mul_pd(tw, d));
            }
            let x = _mm_loadu_pd(sp.add(2 * i));
            let r = _mm_loadu_pd(rp.add(2 * i));
            _mm_storeu_pd(sp.add(2 * i), cmul_sse2(_mm_add_pd(x, acc), r));
        }
    }

    /// # Safety
    ///
    /// Requires AVX2 (runtime-detected by the dispatch layer before this
    /// backend is selectable). Slice preconditions are checked by the
    /// dispatching wrapper.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sliding_advance_avx2(
        state: &mut [Complex64],
        rot: &[Complex64],
        corr: &[Complex64],
        dropped: &[f64],
        added: &[f64],
    ) {
        let s = dropped.len();
        let n = state.len();
        let rp = rot.as_ptr() as *const f64;
        let sp = state.as_mut_ptr() as *mut f64;
        let mut i = 0;
        while i + 2 <= n {
            // Two bins per register; each lane pair accumulates its own
            // bin in scalar order (the shared `added−dropped` delta is
            // the same IEEE operation both scalar iterations perform).
            let row0 = corr.as_ptr().add(i * s) as *const f64;
            let row1 = corr.as_ptr().add((i + 1) * s) as *const f64;
            let mut acc = _mm256_setzero_pd();
            for m in 0..s {
                let d = _mm256_set1_pd(added[m] - dropped[m]);
                let lo = _mm_loadu_pd(row0.add(2 * m));
                let hi = _mm_loadu_pd(row1.add(2 * m));
                let tw = _mm256_insertf128_pd(_mm256_castpd128_pd256(lo), hi, 1);
                acc = _mm256_add_pd(acc, _mm256_mul_pd(tw, d));
            }
            let x = _mm256_loadu_pd(sp.add(2 * i));
            let r = _mm256_loadu_pd(rp.add(2 * i));
            _mm256_storeu_pd(sp.add(2 * i), cmul_avx(_mm256_add_pd(x, acc), r));
            i += 2;
        }
        if i < n {
            sliding_advance_sse2(&mut state[i..], &rot[i..], &corr[i * s..], dropped, added);
        }
    }

    /// # Safety
    ///
    /// Requires SSE2 (baseline on x86_64).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn goertzel_powers_sse2(coeffs: &[f64], signal: &[f64], out: &mut Vec<f64>) {
        let mut i = 0;
        while i + 2 <= coeffs.len() {
            let cf = _mm_loadu_pd(coeffs.as_ptr().add(i));
            let mut s1 = _mm_setzero_pd();
            let mut s2 = _mm_setzero_pd();
            for &x in signal {
                let xv = _mm_set1_pd(x);
                let s0 = _mm_sub_pd(_mm_add_pd(xv, _mm_mul_pd(cf, s1)), s2);
                s2 = s1;
                s1 = s0;
            }
            let p = _mm_sub_pd(
                _mm_add_pd(_mm_mul_pd(s1, s1), _mm_mul_pd(s2, s2)),
                _mm_mul_pd(_mm_mul_pd(cf, s1), s2),
            );
            let mut lanes = [0.0f64; 2];
            _mm_storeu_pd(lanes.as_mut_ptr(), p);
            out.extend_from_slice(&lanes);
            i += 2;
        }
        super::goertzel_powers_scalar(&coeffs[i..], signal, out);
    }

    /// # Safety
    ///
    /// Requires AVX2 (runtime-detected by the dispatch layer before this
    /// backend is selectable).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn goertzel_powers_avx2(coeffs: &[f64], signal: &[f64], out: &mut Vec<f64>) {
        let mut i = 0;
        while i + 4 <= coeffs.len() {
            let cf = _mm256_loadu_pd(coeffs.as_ptr().add(i));
            let mut s1 = _mm256_setzero_pd();
            let mut s2 = _mm256_setzero_pd();
            for &x in signal {
                let xv = _mm256_set1_pd(x);
                let s0 = _mm256_sub_pd(_mm256_add_pd(xv, _mm256_mul_pd(cf, s1)), s2);
                s2 = s1;
                s1 = s0;
            }
            let p = _mm256_sub_pd(
                _mm256_add_pd(_mm256_mul_pd(s1, s1), _mm256_mul_pd(s2, s2)),
                _mm256_mul_pd(_mm256_mul_pd(cf, s1), s2),
            );
            let mut lanes = [0.0f64; 4];
            _mm256_storeu_pd(lanes.as_mut_ptr(), p);
            out.extend_from_slice(&lanes);
            i += 4;
        }
        goertzel_powers_sse2(&coeffs[i..], signal, out);
    }
}

// ---------------------------------------------------------------------------
// aarch64 implementations.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    //! NEON kernels — structurally the SSE2 kernels (one complex / two
    //! Goertzel lanes per 128-bit register). NEON is baseline on
    //! aarch64, so these are compile-time gated rather than
    //! runtime-detected. The `[a·c − b·d, b·c + a·d]` lane pair is built
    //! by recombining the low lane of a full subtract with the high lane
    //! of a full add — each lane is the exact scalar operation. No FMA
    //! (`vfmaq_f64`) anywhere: fused rounding would break the bit-exact
    //! contract.

    use super::Complex64;
    use core::arch::aarch64::*;

    /// `[p1.0 − p2.0, p1.1 + p2.1]` — the addsub lane pair.
    ///
    /// # Safety
    ///
    /// NEON is baseline on aarch64.
    #[inline(always)]
    unsafe fn addsub(p1: float64x2_t, p2: float64x2_t) -> float64x2_t {
        let sub = vsubq_f64(p1, p2);
        let add = vaddq_f64(p1, p2);
        vcombine_f64(vget_low_f64(sub), vget_high_f64(add))
    }

    /// `a · b` for one packed complex per register, scalar-identical.
    ///
    /// # Safety
    ///
    /// NEON is baseline on aarch64.
    #[inline(always)]
    unsafe fn cmul(a: float64x2_t, b: float64x2_t) -> float64x2_t {
        let b_re = vdupq_laneq_f64(b, 0);
        let b_im = vdupq_laneq_f64(b, 1);
        let a_sw = vextq_f64(a, a, 1);
        addsub(vmulq_f64(a, b_re), vmulq_f64(a_sw, b_im))
    }

    /// # Safety
    ///
    /// NEON is baseline on aarch64. Slice preconditions are checked by
    /// the dispatching wrapper.
    pub(super) unsafe fn radix2_stage_neon(buf: &mut [Complex64], twiddles: &[Complex64]) {
        let half = twiddles.len();
        let len = half * 2;
        let tp = twiddles.as_ptr() as *const f64;
        for chunk in buf.chunks_exact_mut(len) {
            let (evens, odds) = chunk.split_at_mut(half);
            let ep = evens.as_mut_ptr() as *mut f64;
            let op = odds.as_mut_ptr() as *mut f64;
            for k in 0..half {
                let tw = vld1q_f64(tp.add(2 * k));
                let o = vld1q_f64(op.add(2 * k));
                let e = vld1q_f64(ep.add(2 * k));
                let b = cmul(o, tw);
                vst1q_f64(ep.add(2 * k), vaddq_f64(e, b));
                vst1q_f64(op.add(2 * k), vsubq_f64(e, b));
            }
        }
    }

    /// # Safety
    ///
    /// NEON is baseline on aarch64. Slice preconditions are checked by
    /// the dispatching wrapper.
    pub(super) unsafe fn sliding_advance_neon(
        state: &mut [Complex64],
        rot: &[Complex64],
        corr: &[Complex64],
        dropped: &[f64],
        added: &[f64],
    ) {
        let s = dropped.len();
        let rp = rot.as_ptr() as *const f64;
        let sp = state.as_mut_ptr() as *mut f64;
        for i in 0..state.len() {
            let row = corr.as_ptr().add(i * s) as *const f64;
            let mut acc = vdupq_n_f64(0.0);
            for m in 0..s {
                let d = vdupq_n_f64(added[m] - dropped[m]);
                let tw = vld1q_f64(row.add(2 * m));
                acc = vaddq_f64(acc, vmulq_f64(tw, d));
            }
            let x = vld1q_f64(sp.add(2 * i));
            let r = vld1q_f64(rp.add(2 * i));
            vst1q_f64(sp.add(2 * i), cmul(vaddq_f64(x, acc), r));
        }
    }

    /// # Safety
    ///
    /// NEON is baseline on aarch64.
    pub(super) unsafe fn goertzel_powers_neon(coeffs: &[f64], signal: &[f64], out: &mut Vec<f64>) {
        let mut i = 0;
        while i + 2 <= coeffs.len() {
            let cf = vld1q_f64(coeffs.as_ptr().add(i));
            let mut s1 = vdupq_n_f64(0.0);
            let mut s2 = vdupq_n_f64(0.0);
            for &x in signal {
                let xv = vdupq_n_f64(x);
                let s0 = vsubq_f64(vaddq_f64(xv, vmulq_f64(cf, s1)), s2);
                s2 = s1;
                s1 = s0;
            }
            let p = vsubq_f64(
                vaddq_f64(vmulq_f64(s1, s1), vmulq_f64(s2, s2)),
                vmulq_f64(vmulq_f64(cf, s1), s2),
            );
            let mut lanes = [0.0f64; 2];
            vst1q_f64(lanes.as_mut_ptr(), p);
            out.extend_from_slice(&lanes);
            i += 2;
        }
        super::goertzel_powers_scalar(&coeffs[i..], signal, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_is_always_available() {
        assert!(DspBackend::Scalar.is_available());
        let avail = available_backends();
        assert_eq!(*avail.last().unwrap(), DspBackend::Scalar);
        assert!(avail.contains(&best_backend()));
        assert!(active_backend().is_available());
    }

    #[test]
    fn names_round_trip() {
        for b in DspBackend::ALL {
            assert_eq!(DspBackend::parse(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(DspBackend::parse("off"), Some(DspBackend::Scalar));
        assert_eq!(DspBackend::parse("AVX2"), None, "names are lowercase");
    }

    #[test]
    fn env_selection_contract() {
        assert_eq!(backend_for_env_value(None), best_backend());
        assert_eq!(backend_for_env_value(Some("auto")), best_backend());
        assert_eq!(backend_for_env_value(Some("")), best_backend());
        assert_eq!(backend_for_env_value(Some("off")), DspBackend::Scalar);
        assert_eq!(backend_for_env_value(Some("scalar")), DspBackend::Scalar);
        // Unknown names fall back to the scalar reference, never to a
        // different SIMD path.
        assert_eq!(backend_for_env_value(Some("sse9")), DspBackend::Scalar);
        // Named backends are honored iff available, else scalar.
        for b in [DspBackend::Sse2, DspBackend::Avx2, DspBackend::Neon] {
            let chosen = backend_for_env_value(Some(b.name()));
            if b.is_available() {
                assert_eq!(chosen, b);
            } else {
                assert_eq!(chosen, DspBackend::Scalar);
            }
        }
    }

    #[test]
    fn set_backend_rejects_unavailable() {
        for b in DspBackend::ALL {
            if !b.is_available() {
                let err = set_backend(b).unwrap_err();
                assert_eq!(err, BackendUnavailable(b));
                assert!(err.to_string().contains(b.name()));
            }
        }
        // The active backend survives a rejected set.
        assert!(active_backend().is_available());
    }

    #[test]
    fn unavailable_backend_requests_degrade_to_scalar() {
        // The explicit-backend entry points are safe public API: asking
        // for a backend this CPU lacks must run the scalar reference,
        // never reach for instructions the CPU cannot execute.
        let unavailable: Vec<DspBackend> = DspBackend::ALL
            .into_iter()
            .filter(|b| !b.is_available())
            .collect();
        let tw = [Complex64::cis(-0.7)];
        let signal = [1.0f64, -2.0, 0.5];
        for b in unavailable {
            let mut buf = [Complex64::new(1.0, 2.0), Complex64::new(-3.0, 0.5)];
            let mut want = buf;
            radix2_stage(b, &mut buf, &tw);
            radix2_stage(DspBackend::Scalar, &mut want, &tw);
            assert_eq!(buf, want, "{b} butterfly must degrade to scalar");

            let mut pow = Vec::new();
            let mut want = Vec::new();
            goertzel_powers(b, &[1.3], &signal, &mut pow);
            goertzel_powers(DspBackend::Scalar, &[1.3], &signal, &mut want);
            assert_eq!(pow, want, "{b} goertzel must degrade to scalar");

            let rot = [Complex64::cis(0.3)];
            let corr = [Complex64::cis(-0.1), Complex64::cis(-0.2)];
            let mut state = [Complex64::new(0.5, -0.5)];
            let mut want = state;
            sliding_advance(b, &mut state, &rot, &corr, &[0.1, 0.2], &[0.3, 0.4]);
            sliding_advance(
                DspBackend::Scalar,
                &mut want,
                &rot,
                &corr,
                &[0.1, 0.2],
                &[0.3, 0.4],
            );
            assert_eq!(state, want, "{b} sliding advance must degrade to scalar");
        }
    }

    #[test]
    fn kernels_accept_every_available_backend() {
        // Smoke-level: each kernel runs under each available backend and
        // produces bitwise-scalar results on a tiny case (the full
        // differential suite lives in tests/simd_equivalence.rs).
        let tw: Vec<Complex64> = (0..4)
            .map(|k| Complex64::cis(-std::f64::consts::PI * k as f64 / 4.0))
            .collect();
        let base: Vec<Complex64> = (0..8)
            .map(|t| Complex64::new(t as f64 * 0.3 - 1.0, (t as f64).cos()))
            .collect();
        let signal: Vec<f64> = (0..64).map(|t| (t as f64 * 0.7).sin()).collect();
        let coeffs = [1.2f64, -0.4, 0.9, 1.99, -1.7];
        let rot: Vec<Complex64> = (0..3).map(|k| Complex64::cis(0.1 * k as f64)).collect();
        let corr: Vec<Complex64> = (0..6).map(|k| Complex64::cis(-0.2 * k as f64)).collect();

        let mut ref_buf = base.clone();
        radix2_stage(DspBackend::Scalar, &mut ref_buf, &tw);
        let mut ref_pow = Vec::new();
        goertzel_powers(DspBackend::Scalar, &coeffs, &signal, &mut ref_pow);
        let mut ref_state: Vec<Complex64> = (0..3).map(|k| Complex64::new(k as f64, 1.0)).collect();
        sliding_advance(
            DspBackend::Scalar,
            &mut ref_state,
            &rot,
            &corr,
            &[0.5, -0.25],
            &[1.0, 2.0],
        );

        for b in available_backends() {
            let mut buf = base.clone();
            radix2_stage(b, &mut buf, &tw);
            for (got, want) in buf.iter().zip(&ref_buf) {
                assert_eq!(got.re.to_bits(), want.re.to_bits(), "{b} re");
                assert_eq!(got.im.to_bits(), want.im.to_bits(), "{b} im");
            }
            let mut pow = Vec::new();
            goertzel_powers(b, &coeffs, &signal, &mut pow);
            assert_eq!(pow.len(), ref_pow.len());
            for (got, want) in pow.iter().zip(&ref_pow) {
                assert_eq!(got.to_bits(), want.to_bits(), "{b} goertzel");
            }
            let mut state: Vec<Complex64> = (0..3).map(|k| Complex64::new(k as f64, 1.0)).collect();
            sliding_advance(b, &mut state, &rot, &corr, &[0.5, -0.25], &[1.0, 2.0]);
            for (got, want) in state.iter().zip(&ref_state) {
                assert_eq!(got.re.to_bits(), want.re.to_bits(), "{b} sliding re");
                assert_eq!(got.im.to_bits(), want.im.to_bits(), "{b} sliding im");
            }
        }
    }
}
