//! Power spectra with the paper's amplitude-squared normalization.
//!
//! Algorithm 2 of the paper compares window powers `P_f` against reference
//! powers `R_f = (32000/n)²`, i.e. against the *squared amplitude* of each
//! synthesized tone. To make those comparisons direct, [`power_spectrum`]
//! scales the raw periodogram by `(2/N)²` so that a full-length sine of
//! amplitude `B` whose frequency sits exactly on a bin reads `B²` at that
//! bin. Off-bin tones leak into neighbours; the detector recovers the power
//! by aggregating `2θ+1` bins (Algorithm 2, line 5), which is also how it
//! tolerates the *frequency smoothing* the paper describes.
//!
//! Every spectrum here is computed through plans that dispatch into the
//! [`crate::simd`] kernel layer — callers pick up the active backend
//! transparently, and the result is bit-identical whichever backend runs.

use crate::complex::Complex64;
use crate::fft::{cached_real_plan, FftPlan, RealFftPlan};
use crate::window::WindowKind;
use std::ops::Range;

/// Computes the amplitude²-normalized power spectrum of a real window.
///
/// Returns a full-length spectrum (`len == window.len()`); bins above
/// Nyquist mirror the lower half, which lets callers index candidate
/// frequencies above Nyquist exactly as the paper's Algorithm 2 does.
///
/// Runs on the cached real-input plan ([`cached_real_plan`]), so repeated
/// one-shot calls at the same size never rebuild twiddle tables.
///
/// # Panics
///
/// Panics if `window.len()` is not a power of two.
pub fn power_spectrum(window: &[f64]) -> Vec<f64> {
    if window.len() < 2 {
        // Degenerate sizes keep the documented contract: length 0 panics
        // (not a power of two) and length 1 follows the (2/N)² convention.
        assert!(
            window.len().is_power_of_two(),
            "FFT size must be a power of two, got {}",
            window.len()
        );
        return window.iter().map(|&x| (2.0 * x) * (2.0 * x)).collect();
    }
    let plan = cached_real_plan(window.len());
    let mut scratch = Vec::new();
    let mut out = Vec::new();
    real_power_spectrum_with(&plan, window, &mut scratch, &mut out);
    out
}

/// Power spectrum using a caller-provided plan and scratch buffer.
///
/// This is the hot path of the ACTION detector: one call per scanned window.
/// `scratch` must have the same length as the plan size; `out` is resized as
/// needed.
///
/// # Panics
///
/// Panics if `window.len() != plan.size()`.
pub fn power_spectrum_with(
    plan: &FftPlan,
    window: &[f64],
    scratch: &mut Vec<Complex64>,
    out: &mut Vec<f64>,
) {
    assert_eq!(
        window.len(),
        plan.size(),
        "window length must match plan size"
    );
    scratch.clear();
    scratch.extend(window.iter().map(|&x| Complex64::from_real(x)));
    plan.forward(scratch);
    let n = plan.size() as f64;
    let scale = (2.0 / n) * (2.0 / n);
    out.clear();
    out.extend(scratch.iter().map(|z| z.norm_sqr() * scale));
}

/// [`power_spectrum_with`] on the half-size real-input transform: the same
/// normalized full-length spectrum at roughly half the butterflies.
///
/// `scratch` is the plan's half-size work buffer; `out` is resized to the
/// window length.
///
/// # Panics
///
/// Panics if `window.len() != plan.size()`.
pub fn real_power_spectrum_with(
    plan: &RealFftPlan,
    window: &[f64],
    scratch: &mut Vec<Complex64>,
    out: &mut Vec<f64>,
) {
    plan.power_into(window, scratch, out);
    let n = plan.size() as f64;
    let scale = (2.0 / n) * (2.0 / n);
    for p in out.iter_mut() {
        *p *= scale;
    }
}

/// Reusable per-call scratch for [`SpectrumAnalyzer::compute`].
///
/// Keeping the scratch outside the analyzer makes the analyzer itself
/// immutable (and therefore `Sync`-shareable across scan workers); each
/// worker owns one `SpectrumScratch`.
#[derive(Debug, Default, Clone)]
pub struct SpectrumScratch {
    windowed: Vec<f64>,
    freq: Vec<Complex64>,
}

/// A reusable windowed-spectrum analyzer.
///
/// Applies a window function before the FFT and compensates the window's
/// coherent gain so a sine of amplitude `B` still reads `B²` at its bin —
/// keeping Algorithm 2's comparisons against `R_f = (32000/n)²` direct
/// while suppressing the rectangular window's slowly decaying sidelobes
/// (Hann: −31 dB first sidelobe, −18 dB/octave rolloff vs rect's −13 dB
/// and −6 dB/octave). The PIANO detector needs that suppression: with a
/// rectangular window, off-bin tone leakage into unchosen candidate
/// clusters sits near the paper's β = 0.5 %·R_f ceiling for loud (close)
/// signals.
#[derive(Debug, Clone)]
pub struct SpectrumAnalyzer {
    plan: RealFftPlan,
    kind: WindowKind,
    coeffs: Vec<f64>,
    scale: f64,
}

impl SpectrumAnalyzer {
    /// Builds an analyzer for windows of `len` samples.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a power of two ≥ 2.
    pub fn new(len: usize, window: WindowKind) -> Self {
        let coeffs = window.coefficients(len);
        let cg = window.coherent_gain(len).max(1e-12);
        SpectrumAnalyzer {
            plan: RealFftPlan::new(len),
            kind: window,
            coeffs,
            scale: 1.0 / (cg * cg),
        }
    }

    /// Window length.
    pub fn len(&self) -> usize {
        self.plan.size()
    }

    /// Whether the analyzer length is zero (never true; see [`Self::new`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The window function this analyzer applies.
    pub fn window_kind(&self) -> WindowKind {
        self.kind
    }

    /// The coherent-gain power compensation applied to every bin.
    pub fn power_scale(&self) -> f64 {
        self.scale
    }

    /// Applies the analysis window coefficients to `signal`, writing the
    /// tapered samples into `out` (resized to the analyzer length).
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the analyzer length.
    pub fn apply_window(&self, signal: &[f64], out: &mut Vec<f64>) {
        assert_eq!(
            signal.len(),
            self.len(),
            "signal length must match analyzer length"
        );
        out.clear();
        out.extend(signal.iter().zip(&self.coeffs).map(|(&s, &c)| s * c));
    }

    /// Computes the coherent-gain-compensated power spectrum of `signal`
    /// into `out`, using caller-owned `scratch`.
    ///
    /// The analyzer itself is immutable (`&self`), so one analyzer can be
    /// shared by many scan workers, each with its own scratch.
    ///
    /// # Panics
    ///
    /// Panics if `signal.len()` differs from the analyzer length.
    pub fn compute(&self, signal: &[f64], scratch: &mut SpectrumScratch, out: &mut Vec<f64>) {
        assert_eq!(
            signal.len(),
            self.len(),
            "signal length must match analyzer length"
        );
        scratch.windowed.resize(self.len(), 0.0);
        for ((w, &s), &c) in scratch.windowed.iter_mut().zip(signal).zip(&self.coeffs) {
            *w = s * c;
        }
        real_power_spectrum_with(&self.plan, &scratch.windowed, &mut scratch.freq, out);
        for p in out.iter_mut() {
            *p *= self.scale;
        }
    }

    /// One-shot convenience over [`Self::compute`].
    pub fn power_spectrum(&self, signal: &[f64]) -> Vec<f64> {
        let mut scratch = SpectrumScratch::default();
        let mut out = Vec::new();
        self.compute(signal, &mut scratch, &mut out);
        out
    }
}

/// Sums spectrum power over bins `center-θ ..= center+θ`, clamped to the
/// spectrum bounds — line 5 of the paper's Algorithm 2.
pub fn band_power(spectrum: &[f64], center: usize, theta: usize) -> f64 {
    if spectrum.is_empty() {
        return 0.0;
    }
    let lo = center.saturating_sub(theta);
    let hi = (center + theta).min(spectrum.len() - 1);
    spectrum[lo..=hi].iter().sum()
}

/// Index of the maximum-power bin within `range` (clamped to bounds).
///
/// Returns the lower bound if the range is empty after clamping.
pub fn peak_bin(spectrum: &[f64], range: Range<usize>) -> usize {
    let lo = range.start.min(spectrum.len());
    let hi = range.end.min(spectrum.len());
    (lo..hi)
        .max_by(|&a, &b| spectrum[a].total_cmp(&spectrum[b]))
        .unwrap_or(lo)
}

/// Frequency (Hz) corresponding to a bin index for the given window size.
#[inline]
pub fn bin_to_freq(bin: usize, sample_rate: f64, window_len: usize) -> f64 {
    bin as f64 * sample_rate / window_len as f64
}

/// Bin index for a frequency — the paper's `⌊f/f_s·|W|⌋` (Algorithm 2,
/// line 4). Frequencies above Nyquist map to upper-half (mirror) bins.
#[inline]
pub fn freq_to_bin(freq_hz: f64, sample_rate: f64, window_len: usize) -> usize {
    ((freq_hz / sample_rate) * window_len as f64).floor() as usize % window_len
}

/// Total power in the spectrum between two frequencies (inclusive bins),
/// counting both the direct and mirrored halves of the spectrum.
pub fn power_in_range(spectrum: &[f64], lo_hz: f64, hi_hz: f64, sample_rate: f64) -> f64 {
    let n = spectrum.len();
    let lo = freq_to_bin(lo_hz.min(hi_hz), sample_rate, n).min(n / 2);
    let hi = freq_to_bin(lo_hz.max(hi_hz), sample_rate, n).min(n / 2);
    let direct: f64 = spectrum[lo..=hi].iter().sum();
    let mirror: f64 = spectrum[(n - hi).min(n - 1)..=(n - lo).min(n - 1)]
        .iter()
        .sum();
    direct + mirror
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tone;
    use proptest::prelude::*;

    const FS: f64 = 44_100.0;

    #[test]
    fn on_bin_sine_reads_amplitude_squared() {
        let n = 4096;
        let bin = 1310; // ≈ 14.1 kHz: the folded image of a 30 kHz candidate
        let f = bin as f64 * FS / n as f64;
        let amp = 32_000.0 / 15.0;
        let sig = tone::sine(f, 0.4, amp, FS, n);
        let ps = power_spectrum(&sig);
        assert!(
            (ps[bin] - amp * amp).abs() < 1e-6 * amp * amp,
            "bin power {} vs amplitude² {}",
            ps[bin],
            amp * amp
        );
    }

    #[test]
    fn above_nyquist_candidate_lands_on_its_literal_bin() {
        // The paper's Algorithm 2 computes i = ⌊f/fs·|W|⌋ even for f > fs/2.
        // A 30 kHz synthesized tone must therefore read its power at the
        // literal 30 kHz bin (which is the mirror of the folded bin).
        let n = 4096;
        let f = 30_000.0;
        let sig = tone::sine(f, 0.0, 100.0, FS, n);
        let ps = power_spectrum(&sig);
        let idx = freq_to_bin(f, FS, n);
        let p = band_power(&ps, idx, 5);
        assert!(p > 0.9 * 100.0 * 100.0, "aggregated power {p} too small");
    }

    #[test]
    fn off_bin_power_recovered_by_aggregation() {
        let n = 4096;
        let f = 10_000.3; // deliberately between bins
        let amp = 50.0;
        let sig = tone::sine(f, 1.1, amp, FS, n);
        let ps = power_spectrum(&sig);
        let idx = freq_to_bin(f, FS, n);
        let single = ps[idx];
        let aggregated = band_power(&ps, idx, 5);
        assert!(aggregated > single, "aggregation should capture leakage");
        assert!(aggregated > 0.85 * amp * amp, "aggregated {aggregated}");
    }

    #[test]
    fn degenerate_sizes_keep_the_contract() {
        // Length 1 follows the (2/N)² convention (N = 1 ⇒ scale 4)…
        assert_eq!(power_spectrum(&[3.0]), vec![36.0]);
        // …and length 0 panics like any other non-power-of-two.
        let empty = std::panic::catch_unwind(|| power_spectrum(&[]));
        assert!(empty.is_err(), "length 0 must panic");
    }

    #[test]
    fn band_power_clamps_at_edges() {
        let ps = vec![1.0; 10];
        assert_eq!(band_power(&ps, 0, 3), 4.0); // bins 0..=3
        assert_eq!(band_power(&ps, 9, 3), 4.0); // bins 6..=9
        assert_eq!(band_power(&[], 5, 3), 0.0);
    }

    #[test]
    fn peak_bin_finds_tone() {
        let n = 1024;
        let bin = 200;
        let sig = tone::sine(bin as f64 * FS / n as f64, 0.0, 1.0, FS, n);
        let ps = power_spectrum(&sig);
        assert_eq!(peak_bin(&ps, 1..n / 2), bin);
    }

    #[test]
    fn peak_bin_empty_range_returns_lower_bound() {
        let ps = vec![1.0; 8];
        assert_eq!(peak_bin(&ps, 5..5), 5);
    }

    #[test]
    fn freq_bin_roundtrip() {
        let n = 4096;
        for &f in &[6_000.0, 14_100.0, 25_166.0, 34_833.0] {
            let b = freq_to_bin(f, FS, n);
            let back = bin_to_freq(b, FS, n);
            assert!((back - f).abs() <= FS / n as f64, "f={f} back={back}");
        }
    }

    #[test]
    fn power_in_range_counts_mirror() {
        let n = 4096;
        let sig = tone::sine(5_000.0, 0.0, 10.0, FS, n);
        let ps = power_spectrum(&sig);
        let p = power_in_range(&ps, 4_000.0, 6_000.0, FS);
        // Direct + mirror each read amplitude², so together ≈ 2·amp².
        assert!(p > 1.8 * 100.0 && p < 2.2 * 100.0, "p={p}");
    }

    #[test]
    fn with_plan_matches_one_shot() {
        let sig = tone::sine(9_000.0, 0.2, 3.0, FS, 512);
        let plan = FftPlan::new(512);
        let mut scratch = Vec::new();
        let mut out = Vec::new();
        power_spectrum_with(&plan, &sig, &mut scratch, &mut out);
        let reference = power_spectrum(&sig);
        for (a, b) in out.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn real_plan_path_matches_complex_plan_path() {
        let sig = tone::sine(11_000.0, 0.9, 7.0, FS, 1024);
        let complex_plan = FftPlan::new(1024);
        let real_plan = RealFftPlan::new(1024);
        let mut scratch = Vec::new();
        let mut dense = Vec::new();
        let mut real = Vec::new();
        power_spectrum_with(&complex_plan, &sig, &mut scratch, &mut dense);
        real_power_spectrum_with(&real_plan, &sig, &mut scratch, &mut real);
        assert_eq!(dense.len(), real.len());
        for (a, b) in dense.iter().zip(&real) {
            assert!((a - b).abs() < 1e-9 * (1.0 + a), "{a} vs {b}");
        }
    }

    #[test]
    fn analyzer_is_shareable_and_deterministic() {
        let analyzer = SpectrumAnalyzer::new(512, WindowKind::Hann);
        let sig = tone::sine(8_000.0, 0.0, 2.0, FS, 512);
        // &self compute: two scratches, same analyzer, identical output.
        let mut s1 = SpectrumScratch::default();
        let mut s2 = SpectrumScratch::default();
        let (mut o1, mut o2) = (Vec::new(), Vec::new());
        analyzer.compute(&sig, &mut s1, &mut o1);
        analyzer.compute(&sig, &mut s2, &mut o2);
        assert_eq!(o1, o2);
        fn assert_sync<T: Sync + Send>(_: &T) {}
        assert_sync(&analyzer);
        assert_eq!(analyzer.window_kind(), WindowKind::Hann);
    }

    proptest! {
        #[test]
        fn spectrum_is_nonnegative_and_symmetric(
            data in proptest::collection::vec(-100.0f64..100.0, 64),
        ) {
            let ps = power_spectrum(&data);
            for &p in &ps {
                prop_assert!(p >= 0.0);
            }
            for k in 1..32 {
                prop_assert!((ps[k] - ps[64 - k]).abs() < 1e-6 * (1.0 + ps[k]));
            }
        }
    }
}
