//! Bluetooth simulation errors.

use std::error::Error;
use std::fmt;

use crate::identity::DeviceId;

/// Errors raised by the simulated Bluetooth layer.
#[derive(Clone, Debug, PartialEq)]
pub enum BluetoothError {
    /// The peers are farther apart than the radio range; the link is down.
    ///
    /// This is the error PIANO's authentication phase maps to an immediate
    /// denial ("PIANO first checks whether the vouching device is still
    /// paired … if not … PIANO rejects the access").
    OutOfRange {
        /// Actual distance between the peers in meters.
        distance_m: f64,
        /// Radio range in meters.
        range_m: f64,
    },
    /// No bond exists between the two devices (registration never ran).
    NotPaired(DeviceId, DeviceId),
    /// A frame failed authentication (wrong key or tampered ciphertext).
    AuthenticationFailure,
    /// A frame's nonce was already seen (replayed ciphertext).
    ReplayDetected {
        /// The repeated nonce value.
        nonce: u64,
    },
}

impl fmt::Display for BluetoothError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BluetoothError::OutOfRange {
                distance_m,
                range_m,
            } => write!(
                f,
                "peers are {distance_m:.2} m apart, beyond the {range_m:.1} m radio range"
            ),
            BluetoothError::NotPaired(a, b) => {
                write!(f, "no bond between {a} and {b}; run registration first")
            }
            BluetoothError::AuthenticationFailure => {
                write!(f, "frame failed authentication (bad key or tampered data)")
            }
            BluetoothError::ReplayDetected { nonce } => {
                write!(f, "frame nonce {nonce} was already accepted (replay)")
            }
        }
    }
}

impl Error for BluetoothError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = BluetoothError::OutOfRange {
            distance_m: 12.5,
            range_m: 10.0,
        };
        assert!(e.to_string().contains("12.50"));
        let e = BluetoothError::NotPaired(DeviceId::new(1), DeviceId::new(2));
        assert!(e.to_string().contains("registration"));
        assert!(BluetoothError::AuthenticationFailure
            .to_string()
            .contains("authentication"));
        assert!(BluetoothError::ReplayDetected { nonce: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync>() {}
        assert_error::<BluetoothError>();
    }
}
