//! Device identities.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Opaque identifier for a Bluetooth-capable device (stand-in for a BD_ADDR).
///
/// # Example
///
/// ```
/// use piano_bluetooth::DeviceId;
///
/// let watch = DeviceId::new(1);
/// let phone = DeviceId::new(2);
/// assert_ne!(watch, phone);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(u64);

impl DeviceId {
    /// Creates a device id from a raw integer.
    pub const fn new(raw: u64) -> Self {
        DeviceId(raw)
    }

    /// The raw integer value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev-{:04x}", self.0)
    }
}

impl From<u64> for DeviceId {
    fn from(raw: u64) -> Self {
        DeviceId::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_and_display() {
        let id = DeviceId::new(0xBEEF);
        assert_eq!(id.raw(), 0xBEEF);
        assert_eq!(id.to_string(), "dev-beef");
        assert_eq!(DeviceId::from(7u64), DeviceId::new(7));
    }

    #[test]
    fn usable_as_map_key() {
        let mut set = HashSet::new();
        set.insert(DeviceId::new(1));
        set.insert(DeviceId::new(1));
        set.insert(DeviceId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn ordering_is_by_raw_value() {
        assert!(DeviceId::new(1) < DeviceId::new(2));
    }
}
