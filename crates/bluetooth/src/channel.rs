//! The secure channel and the range-gated link.
//!
//! Step II of ACTION: "The authenticating device securely transmits the two
//! reference signals S_A and S_V to the vouching device via Bluetooth. The
//! communication channel is secure so an attacker cannot eavesdrop the
//! reference signals."
//!
//! [`SecureChannel`] seals and opens opaque byte payloads with a
//! ChaCha-keystream XOR plus a keyed 64-bit tag and a monotone nonce. This
//! is **simulation-grade** cryptography: within the simulation it gives the
//! threat model exactly the guarantees the paper assumes (confidentiality
//! against the attacker models in `piano-attacks`, integrity, replay
//! detection), but it is not a vetted AEAD and must not be used outside the
//! simulation.
//!
//! [`BluetoothLink`] models the physical radio: a 10 m range gate (beyond
//! which transmission fails, which PIANO maps to immediate denial), a
//! per-message latency, and a transfer log consumed by the timing/energy
//! models of `piano-acoustics`.

use bytes::Bytes;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;

use piano_acoustics::Position;

use crate::error::BluetoothError;
use crate::pairing::LinkKey;

/// An encrypted, authenticated frame as observed "on the air".
///
/// Attacker models receive these via [`BluetoothLink::eavesdropped`]; the
/// tests demonstrate that ciphertext reveals nothing usable and that
/// tampering or replaying is detected.
#[derive(Clone, Debug, PartialEq)]
pub struct EncryptedFrame {
    /// Monotone per-sender nonce.
    pub nonce: u64,
    /// Keystream-XORed payload.
    pub ciphertext: Bytes,
    /// Keyed integrity tag.
    pub tag: u64,
}

impl EncryptedFrame {
    /// Size of the frame on the wire in bytes (nonce + tag + payload).
    pub fn wire_len(&self) -> usize {
        8 + 8 + self.ciphertext.len()
    }
}

/// One endpoint's view of the secure channel for a bonded pair.
///
/// Both peers construct a `SecureChannel` from the same [`LinkKey`]; each
/// maintains its own send nonce and the set of nonces it has accepted.
#[derive(Debug)]
pub struct SecureChannel {
    key: LinkKey,
    next_nonce: u64,
    seen_nonces: HashSet<u64>,
}

impl SecureChannel {
    /// Creates a channel endpoint from a link key.
    ///
    /// `nonce_base` separates the two directions: conventionally the
    /// authenticating device uses 0 and the vouching device a large offset,
    /// so their nonces never collide.
    pub fn new(key: LinkKey, nonce_base: u64) -> Self {
        SecureChannel {
            key,
            next_nonce: nonce_base,
            seen_nonces: HashSet::new(),
        }
    }

    fn keystream(key: &LinkKey, nonce: u64, len: usize) -> Vec<u8> {
        // Seed a ChaCha stream from (key subkey, nonce).
        let seed = key.subkey(0x01) ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut ks = vec![0u8; len];
        rng.fill_bytes(&mut ks);
        ks
    }

    fn compute_tag(key: &LinkKey, nonce: u64, ciphertext: &[u8]) -> u64 {
        // Keyed FNV-1a over nonce ‖ ciphertext. Simulation-grade.
        let mut h = key.subkey(0x02);
        for &b in nonce.to_le_bytes().iter().chain(ciphertext) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Encrypts and authenticates a payload.
    pub fn seal(&mut self, plaintext: &[u8]) -> EncryptedFrame {
        let nonce = self.next_nonce;
        self.next_nonce += 1;
        let ks = Self::keystream(&self.key, nonce, plaintext.len());
        let ciphertext: Vec<u8> = plaintext.iter().zip(&ks).map(|(p, k)| p ^ k).collect();
        let tag = Self::compute_tag(&self.key, nonce, &ciphertext);
        EncryptedFrame {
            nonce,
            ciphertext: Bytes::from(ciphertext),
            tag,
        }
    }

    /// Verifies and decrypts a frame.
    ///
    /// # Errors
    ///
    /// * [`BluetoothError::AuthenticationFailure`] if the tag does not
    ///   verify (wrong key or tampered frame).
    /// * [`BluetoothError::ReplayDetected`] if the nonce was seen before.
    pub fn open(&mut self, frame: &EncryptedFrame) -> Result<Vec<u8>, BluetoothError> {
        let expected = Self::compute_tag(&self.key, frame.nonce, &frame.ciphertext);
        if expected != frame.tag {
            return Err(BluetoothError::AuthenticationFailure);
        }
        if !self.seen_nonces.insert(frame.nonce) {
            return Err(BluetoothError::ReplayDetected { nonce: frame.nonce });
        }
        let ks = Self::keystream(&self.key, frame.nonce, frame.ciphertext.len());
        Ok(frame
            .ciphertext
            .iter()
            .zip(&ks)
            .map(|(c, k)| c ^ k)
            .collect())
    }
}

/// Record of one transmitted frame, for the timing/energy models.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TransferRecord {
    /// World time the send was initiated (seconds).
    pub sent_world_s: f64,
    /// World time the frame arrived (seconds).
    pub arrived_world_s: f64,
    /// Bytes on the wire.
    pub wire_bytes: usize,
}

/// The physical radio link between two positions.
#[derive(Clone, Debug)]
pub struct BluetoothLink {
    /// Radio range in meters.
    pub range_m: f64,
    /// One-way message latency in seconds.
    pub latency_s: f64,
    log: Vec<TransferRecord>,
    airwaves: Vec<EncryptedFrame>,
}

impl BluetoothLink {
    /// A link with the default commodity range and latency.
    pub fn new() -> Self {
        BluetoothLink {
            range_m: crate::BLUETOOTH_RANGE_M,
            latency_s: 0.035,
            log: Vec::new(),
            airwaves: Vec::new(),
        }
    }

    /// Whether two positions are within radio range.
    pub fn in_range(&self, a: &Position, b: &Position) -> bool {
        a.distance_to(b) <= self.range_m
    }

    /// Transmits a frame from `from` to `to` at world time `now_world_s`.
    ///
    /// On success, returns the arrival world time. The frame is also
    /// appended to the public airwaves log (ciphertext is broadcast;
    /// attackers can see it, per the threat model).
    ///
    /// # Errors
    ///
    /// Returns [`BluetoothError::OutOfRange`] when the peers are too far
    /// apart.
    pub fn transmit(
        &mut self,
        now_world_s: f64,
        from: &Position,
        to: &Position,
        frame: &EncryptedFrame,
    ) -> Result<f64, BluetoothError> {
        let distance_m = from.distance_to(to);
        if distance_m > self.range_m {
            return Err(BluetoothError::OutOfRange {
                distance_m,
                range_m: self.range_m,
            });
        }
        let arrived = now_world_s + self.latency_s;
        self.log.push(TransferRecord {
            sent_world_s: now_world_s,
            arrived_world_s: arrived,
            wire_bytes: frame.wire_len(),
        });
        self.airwaves.push(frame.clone());
        Ok(arrived)
    }

    /// All successfully transmitted frames, as an eavesdropper sees them.
    pub fn eavesdropped(&self) -> &[EncryptedFrame] {
        &self.airwaves
    }

    /// Transfer log for timing/energy accounting.
    pub fn transfers(&self) -> &[TransferRecord] {
        &self.log
    }

    /// Total bytes transmitted so far.
    pub fn total_bytes(&self) -> usize {
        self.log.iter().map(|t| t.wire_bytes).sum()
    }

    /// Number of messages transmitted so far.
    pub fn message_count(&self) -> usize {
        self.log.len()
    }
}

impl Default for BluetoothLink {
    fn default() -> Self {
        BluetoothLink::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pairing::PairingRegistry;
    use crate::DeviceId;
    use rand::SeedableRng;

    fn bonded_key() -> LinkKey {
        let mut reg = PairingRegistry::new();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        reg.pair(DeviceId::new(1), DeviceId::new(2), &mut rng)
    }

    #[test]
    fn seal_open_roundtrip() {
        let key = bonded_key();
        let mut sender = SecureChannel::new(key, 0);
        let mut receiver = SecureChannel::new(key, 1 << 32);
        let msg = b"two randomized reference signals".to_vec();
        let frame = sender.seal(&msg);
        assert_eq!(receiver.open(&frame).unwrap(), msg);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let key = bonded_key();
        let mut sender = SecureChannel::new(key, 0);
        let msg = vec![0u8; 64]; // worst case: all zeros exposes keystream reuse
        let f1 = sender.seal(&msg);
        let f2 = sender.seal(&msg);
        assert_ne!(&f1.ciphertext[..], &msg[..]);
        // Same plaintext, different nonce ⇒ different ciphertext.
        assert_ne!(f1.ciphertext, f2.ciphertext);
    }

    #[test]
    fn wrong_key_fails_authentication() {
        let mut sender = SecureChannel::new(bonded_key(), 0);
        let mut eve = SecureChannel::new(LinkKey::from_bytes([9; 16]), 0);
        let frame = sender.seal(b"secret");
        assert_eq!(eve.open(&frame), Err(BluetoothError::AuthenticationFailure));
    }

    #[test]
    fn tampering_is_detected() {
        let key = bonded_key();
        let mut sender = SecureChannel::new(key, 0);
        let mut receiver = SecureChannel::new(key, 1 << 32);
        let mut frame = sender.seal(b"payload");
        let mut bytes = frame.ciphertext.to_vec();
        bytes[0] ^= 0xFF;
        frame.ciphertext = Bytes::from(bytes);
        assert_eq!(
            receiver.open(&frame),
            Err(BluetoothError::AuthenticationFailure)
        );
    }

    #[test]
    fn replayed_frame_is_rejected() {
        let key = bonded_key();
        let mut sender = SecureChannel::new(key, 0);
        let mut receiver = SecureChannel::new(key, 1 << 32);
        let frame = sender.seal(b"once");
        assert!(receiver.open(&frame).is_ok());
        assert_eq!(
            receiver.open(&frame),
            Err(BluetoothError::ReplayDetected { nonce: 0 })
        );
    }

    #[test]
    fn link_enforces_range() {
        let mut link = BluetoothLink::new();
        let frame = SecureChannel::new(bonded_key(), 0).seal(b"x");
        let near = link.transmit(
            0.0,
            &Position::ORIGIN,
            &Position::new(9.9, 0.0, 0.0),
            &frame,
        );
        assert!(near.is_ok());
        let far = link.transmit(
            0.0,
            &Position::ORIGIN,
            &Position::new(10.1, 0.0, 0.0),
            &frame,
        );
        assert_eq!(
            far.unwrap_err(),
            BluetoothError::OutOfRange {
                distance_m: 10.1,
                range_m: 10.0
            }
        );
    }

    #[test]
    fn link_logs_and_delays() {
        let mut link = BluetoothLink::new();
        let frame = SecureChannel::new(bonded_key(), 0).seal(&[0u8; 100]);
        let arrival = link
            .transmit(
                1.0,
                &Position::ORIGIN,
                &Position::new(1.0, 0.0, 0.0),
                &frame,
            )
            .unwrap();
        assert!((arrival - 1.035).abs() < 1e-12);
        assert_eq!(link.message_count(), 1);
        assert_eq!(link.total_bytes(), 116); // 100 + nonce + tag
        assert_eq!(link.eavesdropped().len(), 1);
    }

    #[test]
    fn in_range_matches_transmit_behaviour() {
        let link = BluetoothLink::new();
        assert!(link.in_range(&Position::ORIGIN, &Position::new(10.0, 0.0, 0.0)));
        assert!(!link.in_range(&Position::ORIGIN, &Position::new(10.0001, 0.0, 0.0)));
    }

    #[test]
    fn eavesdropper_cannot_decrypt_without_key() {
        // The Sec. V premise: ciphertext on the air does not reveal the
        // reference signals. Recover attempt with a guessed key must fail.
        let key = bonded_key();
        let mut sender = SecureChannel::new(key, 0);
        let mut link = BluetoothLink::new();
        let secret = b"frequency indices: 3 7 11 19".to_vec();
        let frame = sender.seal(&secret);
        link.transmit(
            0.0,
            &Position::ORIGIN,
            &Position::new(1.0, 0.0, 0.0),
            &frame,
        )
        .unwrap();

        let observed = &link.eavesdropped()[0];
        for guess in 0u8..8 {
            let mut eve = SecureChannel::new(LinkKey::from_bytes([guess; 16]), 0);
            assert!(eve.open(observed).is_err());
        }
    }
}
