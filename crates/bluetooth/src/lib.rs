//! # piano-bluetooth
//!
//! Simulated Bluetooth substrate for the PIANO reproduction (Gong et al.,
//! ICDCS 2017).
//!
//! PIANO uses Bluetooth for three things, all modeled here:
//!
//! 1. **Registration** ([`pairing`]): the one-time pairing of the vouching
//!    and authenticating devices, which establishes a shared link key.
//! 2. **Presence gating**: authentication is refused outright when the
//!    devices are no longer connected; since Bluetooth reaches roughly 10 m
//!    on commodity phones, the paper's FAR is 0 beyond that range
//!    (Sec. VI-C). [`channel::BluetoothLink`] enforces the range check.
//! 3. **A secure channel** ([`channel`]): the randomized reference signals
//!    travel from the authenticating device to the vouching device
//!    encrypted and authenticated, so "an attacker cannot eavesdrop the
//!    reference signals" (Step II) — the premise of the guessing-attack
//!    analysis in Sec. V.
//!
//! The cryptography is **simulation-grade**, not production cryptography: a
//! ChaCha-keystream XOR with a keyed 64-bit tag provides the *properties
//! the threat model needs inside the simulation* (attacker models in
//! `piano-attacks` can observe ciphertext but cannot read or forge
//! plaintext), while keeping the workspace free of real crypto libraries.
//! Every relevant type documents this explicitly.

#![forbid(unsafe_code)]

pub mod channel;
pub mod error;
pub mod identity;
pub mod pairing;

pub use channel::{BluetoothLink, EncryptedFrame, SecureChannel, TransferRecord};
pub use error::BluetoothError;
pub use identity::DeviceId;
pub use pairing::{LinkKey, PairingRegistry};

/// Nominal Bluetooth range on commodity mobile devices, in meters.
///
/// The paper: "FAR is 0 when the real distance between the two devices is
/// larger than 10 meters, which is roughly the communication range of
/// Bluetooth on many commodity mobile devices."
pub const BLUETOOTH_RANGE_M: f64 = 10.0;
