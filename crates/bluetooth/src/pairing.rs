//! Registration-phase pairing.
//!
//! "In the registration phase, a user pairs the vouching device with the
//! authenticating device using Bluetooth. This pairing process could
//! involve human interactions … but the pairing process only needs to be
//! done once." (paper Sec. IV)
//!
//! [`PairingRegistry`] is the bond database: pairing two devices mints a
//! shared [`LinkKey`] that both sides later use to build a
//! [`SecureChannel`](crate::channel::SecureChannel).

use rand::RngCore;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

use crate::error::BluetoothError;
use crate::identity::DeviceId;

/// A 128-bit link key shared by a bonded device pair.
///
/// Simulation-grade secret: it gates who can construct a working secure
/// channel inside the simulation; it is not a real Bluetooth link key.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct LinkKey([u8; 16]);

impl LinkKey {
    /// Creates a key from raw bytes (useful in tests).
    pub const fn from_bytes(bytes: [u8; 16]) -> Self {
        LinkKey(bytes)
    }

    /// Raw key bytes.
    pub const fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Derives a 64-bit subkey for a given purpose label — used to separate
    /// the encryption and tag keys.
    pub fn subkey(&self, purpose: u8) -> u64 {
        // FNV-1a over key bytes plus the purpose byte; simulation-grade.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in self.0.iter().chain(std::iter::once(&purpose)) {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }
}

// Debug intentionally redacts the key material so accidental logging of a
// bond cannot leak it into experiment reports.
impl std::fmt::Debug for LinkKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LinkKey(<redacted>)")
    }
}

/// The bond database mapping unordered device pairs to link keys.
#[derive(Debug, Default)]
pub struct PairingRegistry {
    bonds: HashMap<(DeviceId, DeviceId), LinkKey>,
}

impl PairingRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        PairingRegistry::default()
    }

    fn canonical(a: DeviceId, b: DeviceId) -> (DeviceId, DeviceId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Pairs two devices, minting a fresh link key from `rng`. Re-pairing
    /// an existing bond replaces the key (as re-running registration
    /// would). Returns the new key.
    pub fn pair(&mut self, a: DeviceId, b: DeviceId, rng: &mut ChaCha8Rng) -> LinkKey {
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        let key = LinkKey(bytes);
        self.bonds.insert(Self::canonical(a, b), key);
        key
    }

    /// Whether the two devices share a bond.
    pub fn is_paired(&self, a: DeviceId, b: DeviceId) -> bool {
        self.bonds.contains_key(&Self::canonical(a, b))
    }

    /// Looks up the link key for a bonded pair.
    ///
    /// # Errors
    ///
    /// Returns [`BluetoothError::NotPaired`] if no bond exists.
    pub fn key_for(&self, a: DeviceId, b: DeviceId) -> Result<LinkKey, BluetoothError> {
        self.bonds
            .get(&Self::canonical(a, b))
            .copied()
            .ok_or(BluetoothError::NotPaired(a, b))
    }

    /// Removes a bond ("forget this device"). Returns whether one existed.
    pub fn unpair(&mut self, a: DeviceId, b: DeviceId) -> bool {
        self.bonds.remove(&Self::canonical(a, b)).is_some()
    }

    /// Number of bonds stored.
    pub fn len(&self) -> usize {
        self.bonds.len()
    }

    /// Whether the registry has no bonds.
    pub fn is_empty(&self) -> bool {
        self.bonds.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    #[test]
    fn pairing_is_symmetric() {
        let mut reg = PairingRegistry::new();
        let (a, b) = (DeviceId::new(1), DeviceId::new(2));
        let key = reg.pair(a, b, &mut rng());
        assert!(reg.is_paired(a, b));
        assert!(reg.is_paired(b, a));
        assert_eq!(reg.key_for(a, b).unwrap(), key);
        assert_eq!(reg.key_for(b, a).unwrap(), key);
    }

    #[test]
    fn unpaired_lookup_errors() {
        let reg = PairingRegistry::new();
        let err = reg.key_for(DeviceId::new(1), DeviceId::new(2)).unwrap_err();
        assert_eq!(
            err,
            BluetoothError::NotPaired(DeviceId::new(1), DeviceId::new(2))
        );
    }

    #[test]
    fn repairing_replaces_key() {
        let mut reg = PairingRegistry::new();
        let (a, b) = (DeviceId::new(1), DeviceId::new(2));
        let mut r = rng();
        let k1 = reg.pair(a, b, &mut r);
        let k2 = reg.pair(a, b, &mut r);
        assert_ne!(k1, k2);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.key_for(a, b).unwrap(), k2);
    }

    #[test]
    fn unpair_removes_bond() {
        let mut reg = PairingRegistry::new();
        let (a, b) = (DeviceId::new(1), DeviceId::new(2));
        reg.pair(a, b, &mut rng());
        assert!(reg.unpair(b, a));
        assert!(!reg.is_paired(a, b));
        assert!(!reg.unpair(a, b));
        assert!(reg.is_empty());
    }

    #[test]
    fn distinct_pairs_get_distinct_keys() {
        let mut reg = PairingRegistry::new();
        let mut r = rng();
        let k1 = reg.pair(DeviceId::new(1), DeviceId::new(2), &mut r);
        let k2 = reg.pair(DeviceId::new(1), DeviceId::new(3), &mut r);
        assert_ne!(k1, k2);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn debug_redacts_key_material() {
        let key = LinkKey::from_bytes([0xAA; 16]);
        let dbg = format!("{key:?}");
        assert!(dbg.contains("redacted"));
        assert!(!dbg.contains("aa"), "debug output leaked key bytes: {dbg}");
    }

    #[test]
    fn subkeys_differ_by_purpose() {
        let key = LinkKey::from_bytes([7; 16]);
        assert_ne!(key.subkey(0), key.subkey(1));
        // And are stable.
        assert_eq!(key.subkey(0), key.subkey(0));
    }
}
