//! Integration tests of the attack suite against the full stack, through
//! the facade API.

use piano::attacks::{run_trials, AttackKind};
use piano::prelude::*;

#[test]
fn gauntlet_never_grants() {
    let env = Environment::office();
    let kinds = [
        AttackKind::ZeroEffort,
        AttackKind::GuessingReplay,
        AttackKind::AllFrequency {
            tone_amplitude: 8_000.0,
        },
        AttackKind::AllFrequency {
            tone_amplitude: 1_000.0,
        },
        AttackKind::AllFrequency {
            tone_amplitude: 50.0,
        },
    ];
    for (i, kind) in kinds.into_iter().enumerate() {
        let stats = run_trials(kind, &env, 6.0, 3, 0xBAD0 + i as u64);
        assert_eq!(stats.successes, 0, "{kind:?} succeeded: {stats:?}");
        assert_eq!(stats.trials, 3);
    }
}

#[test]
fn replay_denials_are_signal_absent_or_too_far() {
    // The attacker's guessed frequencies never match, so the legitimate
    // detector either sees nothing usable (absent) or, rarely, measures
    // something far. Never a grant; never a protocol failure.
    let stats = run_trials(
        AttackKind::GuessingReplay,
        &Environment::office(),
        6.0,
        4,
        0xFACE,
    );
    assert_eq!(stats.successes, 0);
    for reason in stats.denial_reasons.keys() {
        assert!(
            reason == "signal-absent" || reason == "distance-exceeds-threshold",
            "unexpected denial reason {reason}"
        );
    }
}

#[test]
fn guessing_probability_consistency_between_theory_and_sampler() {
    use piano::attacks::analysis::{collision_probability, monte_carlo_collision};
    // Small-N Monte Carlo agrees with the closed form for the sampler that
    // the default configuration actually uses.
    let sampler = ActionConfig::default().sampler;
    let exact = collision_probability(sampler, 8);
    let mc = monte_carlo_collision(sampler, 8, 40_000, 99);
    let rel = (mc - exact).abs() / exact;
    assert!(rel < 0.3, "MC {mc} vs exact {exact}");
    let _ = SignalSampler::TwoStage; // facade export exercised
}

#[test]
fn all_frequency_attack_denies_rather_than_misleads() {
    // With the spoof active near the authenticating device, ensure the
    // legit-user-away scenario produces no *measured* short distance.
    let stats = run_trials(
        AttackKind::AllFrequency {
            tone_amplitude: 2_000.0,
        },
        &Environment::home(),
        6.0,
        3,
        0xD1CE,
    );
    assert_eq!(stats.successes, 0);
}
