//! Wire-level properties for the framed ingestion path: arbitrary
//! `AudioBatch` payloads round-trip bit-exactly, truncation at every
//! boundary is rejected, caps are enforced on hand-crafted headers, the
//! frame reader reassembles any segmentation of a frame stream, and the
//! ingest feed's sequence/backpressure accounting holds for arbitrary
//! chunk/batch interleavings.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::wire::{
    FrameReader, IngestFeed, Message, MAX_AUDIO_BATCH_SAMPLES, MAX_FRAME_BYTES,
};

/// Deterministic pseudo-audio for one chunk.
fn chunk_samples(len: usize, seed: u64) -> Vec<f64> {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-32768.0..32768.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn audio_batches_roundtrip(
        session in proptest::prelude::any::<u64>(),
        start_seq in proptest::prelude::any::<u32>(),
        chunk_lens in proptest::collection::vec(0usize..2048, 0..12),
        seed in proptest::prelude::any::<u64>(),
    ) {
        let chunks: Vec<Vec<f64>> = chunk_lens
            .iter()
            .enumerate()
            .map(|(i, &n)| chunk_samples(n, seed ^ i as u64))
            .collect();
        let msg = Message::AudioBatch { session, start_seq, chunks: chunks.into() };
        let bytes = msg.encode();
        prop_assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn truncated_audio_batches_always_error(
        chunk_lens in proptest::collection::vec(0usize..64, 1..5),
        cut_frac in 0.0f64..1.0,
        seed in proptest::prelude::any::<u64>(),
    ) {
        let chunks: Vec<Vec<f64>> = chunk_lens
            .iter()
            .enumerate()
            .map(|(i, &n)| chunk_samples(n, seed ^ i as u64))
            .collect();
        let bytes = Message::AudioBatch { session: 1, start_seq: 0, chunks: chunks.into() }.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(Message::decode(&bytes[..cut]).is_err(), "cut at {}", cut);
    }

    #[test]
    fn any_segmentation_reassembles_the_frame_stream(
        msg_sel in proptest::collection::vec(0usize..4, 1..8),
        split_sizes in proptest::collection::vec(1usize..512, 1..6),
        seed in proptest::prelude::any::<u64>(),
    ) {
        let msgs: Vec<Message> = msg_sel
            .iter()
            .enumerate()
            .map(|(i, &sel)| match sel {
                0 => Message::AudioChunk {
                    session: seed,
                    seq: i as u32,
                    samples: chunk_samples(i * 37 % 300, seed ^ i as u64).into(),
                },
                1 => Message::AudioBatch {
                    session: seed,
                    start_seq: i as u32,
                    chunks: vec![chunk_samples(64, seed ^ i as u64), Vec::new()].into(),
                },
                2 => Message::Busy {
                    session: seed,
                    buffered_samples: i as u64 * 1000,
                    high_water: 88_200,
                },
                _ => Message::Credit { session: seed, samples: i as u64 },
            })
            .collect();
        let stream: Vec<u8> = msgs.iter().flat_map(|m| m.encode_framed()).collect();

        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        let mut pos = 0usize;
        let mut k = 0usize;
        while pos < stream.len() {
            let take = split_sizes[k % split_sizes.len()].min(stream.len() - pos);
            reader.push(&stream[pos..pos + take]);
            while let Some(m) = reader.next_frame().unwrap() {
                got.push(m);
            }
            pos += take;
            k += 1;
        }
        prop_assert_eq!(got, msgs);
        prop_assert_eq!(reader.buffered(), 0);
        prop_assert!(!reader.is_poisoned());
    }

    #[test]
    fn ingest_feed_tracks_any_chunk_batch_interleaving(
        plan in proptest::collection::vec((0usize..2, 1usize..4, 0usize..600), 1..20),
        high_water in 256usize..4096,
    ) {
        let mut feed = IngestFeed::new(42, high_water);
        let mut seq = 0u32;
        let mut expected_buffered = 0usize;
        let mut expected_peak = 0usize;
        let mut busy_replies = 0usize;
        let mut credit_replies = 0usize;
        for (i, &(kind, n_chunks, chunk_len)) in plan.iter().enumerate() {
            let msg = if kind == 0 {
                let m = Message::AudioChunk {
                    session: 42,
                    seq,
                    samples: chunk_samples(chunk_len, i as u64).into(),
                };
                seq += 1;
                m
            } else {
                let m = Message::AudioBatch {
                    session: 42,
                    start_seq: seq,
                    chunks: (0..n_chunks)
                        .map(|j| chunk_samples(chunk_len, (i * 31 + j) as u64))
                        .collect::<Vec<_>>()
                        .into(),
                };
                seq += n_chunks as u32;
                m
            };
            let accepted = feed.accept(&msg).unwrap();
            expected_buffered += accepted;
            expected_peak = expected_peak.max(expected_buffered);
            prop_assert_eq!(feed.buffered(), expected_buffered);
            prop_assert_eq!(feed.next_seq(), seq);
            // A gap or wrong session is rejected without advancing state.
            prop_assert!(feed
                .accept(&Message::AudioChunk {
                    session: 42,
                    seq: seq + 1,
                    samples: vec![0.0; 4].into(),
                })
                .is_err());
            prop_assert!(feed
                .accept(&Message::AudioChunk {
                    session: 43,
                    seq,
                    samples: vec![0.0; 4].into(),
                })
                .is_err());
            prop_assert_eq!(feed.next_seq(), seq);
            // Busy exactly when the mark is crossed while not yet busy.
            while let Some(reply) = feed.poll_reply() {
                match reply {
                    Message::Busy { buffered_samples, high_water: hw, .. } => {
                        busy_replies += 1;
                        prop_assert!(buffered_samples as usize > hw as usize);
                    }
                    Message::Credit { samples, .. } => {
                        credit_replies += 1;
                        prop_assert!(samples as usize >= high_water / 2);
                    }
                    other => prop_assert!(false, "unexpected reply {:?}", other),
                }
            }
            // Drain roughly half the backlog each tick, like a scan would.
            let take = expected_buffered / 2;
            let taken = feed.take_pending(take);
            prop_assert_eq!(taken.len(), take);
            expected_buffered -= take;
        }
        prop_assert_eq!(feed.peak_buffered(), expected_peak);
        // Fully drain: every Busy is eventually answered by a Credit.
        let _ = feed.take_pending(usize::MAX);
        while let Some(reply) = feed.poll_reply() {
            if matches!(reply, Message::Credit { .. }) {
                credit_replies += 1;
            }
        }
        prop_assert_eq!(busy_replies, credit_replies);
        prop_assert!(!feed.is_busy());
    }
}

#[test]
fn frame_cap_admits_the_largest_legal_batch_and_nothing_larger() {
    // The maximal legal batch must fit the frame cap…
    let max_chunk = piano::core::wire::MAX_AUDIO_CHUNK_SAMPLES;
    let chunks: Vec<Vec<f64>> = (0..MAX_AUDIO_BATCH_SAMPLES / max_chunk)
        .map(|_| vec![0.0; max_chunk])
        .collect();
    let framed = Message::AudioBatch {
        session: 1,
        start_seq: 0,
        chunks: chunks.into(),
    }
    .encode_framed();
    assert!(framed.len() - 4 <= MAX_FRAME_BYTES);
    let mut reader = FrameReader::new();
    reader.push(&framed);
    assert!(matches!(
        reader.next_frame(),
        Ok(Some(Message::AudioBatch { .. }))
    ));
    // …and a prefix claiming more than the cap is rejected up front.
    let mut reader = FrameReader::new();
    reader.push(((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
    assert!(reader.next_frame().is_err());
}
