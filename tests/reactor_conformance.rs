//! Readiness-reactor conformance: [`ReactorServer`] must be
//! wire-indistinguishable from the threaded [`piano::net::ServerLoop`]
//! — and therefore from direct ingestion.
//!
//! * **Fleet conformance:** decisions for 100 concurrent feeds ingested
//!   through the reactor — codec off on one shard, i16-delta on four
//!   shards — are identical to feeding the same quantized recordings
//!   into an unsharded `AuthService` directly. Shard-strided session
//!   ids are an implementation detail the wire never sees.
//! * **Fault conformance:** the survivable-fault schedule from
//!   `tests/fault_injection.rs` (write cut, read cut, chaos), with
//!   clients resuming through the reactor's suspension registry, still
//!   matches the direct baseline byte for byte.
//! * Shedding stays typed (`PianoError::Overloaded` + hint) and a
//!   retrying client is admitted when the backlog drains; a stalled
//!   feed times out alone under `DropCause::Timeout` within its idle
//!   deadline; the `_timeout` wait returns typed errors.

use std::io;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::error::PianoError;
use piano::net::fault::{FaultPlan, FaultyTransport};
use piano::net::fixtures::{feed_recording, hub_recording_for, hub_recording_reactor};
use piano::net::transport::{memory_hub, Listener, MemoryListener, MemoryStream, Transport};
use piano::net::{FeedHandle, ReactorServer, ResilientFeed, RetryPolicy, ServerConfig};
use piano::prelude::*;

const SEED: u64 = 0xF1EE7;

fn reactor_server(shards: usize, tweak: impl FnOnce(&mut ServerConfig)) -> ReactorServer {
    let mut cfg = ServerConfig::default();
    tweak(&mut cfg);
    ReactorServer::new(
        ShardedAuthService::new(PianoConfig::with_threshold(1.0), shards),
        ChaCha8Rng::seed_from_u64(SEED),
        cfg,
    )
}

fn action_config(server: &ReactorServer) -> ActionConfig {
    server
        .service()
        .with_default(|s| s.config().action.clone())
        .expect("shard 0 exists")
}

/// Registers every accepted connection with the reactor until the hub
/// closes — resumed connections arrive at unpredictable times, so the
/// fixed-count accept pattern does not fit fault runs.
fn spawn_register_loop(server: &ReactorServer, mut listener: MemoryListener) {
    let server = server.clone();
    std::thread::spawn(move || {
        while let Ok(conn) = listener.accept_conn() {
            server.register(conn);
        }
    });
}

/// The fleet without any transport: voucher sessions fed directly into
/// an unsharded service, reports routed by hand, hub scanned on the
/// service. Seeded exactly like the reactor runs — the baseline every
/// reactor configuration must reproduce.
fn direct_decisions(feeds: usize) -> Vec<AuthDecision> {
    let mut service = AuthService::new(PianoConfig::with_threshold(1.0));
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let config = service.config().action.clone();
    let mut ids = Vec::with_capacity(feeds);
    for _ in 0..feeds {
        let id = service.open_session(false, &mut rng);
        let challenge = service.poll_transmit(id).expect("challenge");
        let mut voucher = AuthSession::voucher_with(Arc::clone(service.detector()));
        let rec = feed_recording(&challenge, &config);
        voucher.handle_message(challenge).expect("challenge ok");
        for chunk in rec.chunks(1_024) {
            let _ = voucher.push_audio(chunk);
        }
        let _ = voucher.finish_audio();
        let report = voucher.poll_transmit().expect("report");
        service.handle_message(id, report).expect("routed");
        ids.push(id);
    }
    let hub = hub_recording_for(&service, &ids);
    for chunk in hub.chunks(16_384) {
        let _ = service.push_audio(chunk);
    }
    let _ = service.finish_audio();
    ids.iter()
        .map(|id| service.decision(*id).expect("decided").clone())
        .collect()
}

/// Runs `feeds` concurrent clients through a fresh reactor over
/// `shards` service shards with `codec`, returning decisions in
/// handshake order.
fn reactor_decisions(feeds: usize, codec: WireCodec, shards: usize) -> Vec<AuthDecision> {
    let server = reactor_server(shards, |_| {});
    let reactor = server.start();
    let (connector, mut listener) = memory_hub();
    let config = action_config(&server);

    // Handshakes run sequentially (`FeedHandle::connect` blocks on the
    // Accept) so session randomness binds to feed index exactly as in
    // the direct run; streaming is fully concurrent on the client side.
    let mut handles = Vec::with_capacity(feeds);
    for _ in 0..feeds {
        let transport = connector.connect().expect("hub open");
        let conn = listener.accept_conn().expect("accept");
        server.register(conn);
        handles.push(FeedHandle::connect(transport, &[codec]).expect("handshake"));
    }
    let clients: Vec<_> = handles
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                assert_eq!(feed.codec(), codec, "reactor honors the offer");
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).expect("stream");
                feed.finish().expect("stream end");
                feed.await_decision().expect("verdict")
            })
        })
        .collect();

    assert_eq!(server.wait_for_reports(feeds), feeds, "every feed reports");
    // The zero-copy scan entry point: the reactor borrows this shared
    // recording instead of cloning the waveform into its inbox.
    let hub: std::sync::Arc<[f64]> = hub_recording_reactor(&server).into();
    assert_eq!(
        server.scan_and_decide_arc(hub, 16_384),
        feeds,
        "every session decides"
    );
    let decisions: Vec<AuthDecision> = clients
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    // The verdict each client received is the one the reactor recorded
    // for that feed's session.
    let ids = server.session_ids();
    assert_eq!(ids.len(), feeds);
    let outcomes = server.outcomes();
    for (id, decision) in ids.iter().zip(&decisions) {
        let recorded = outcomes.iter().find(|(oid, _)| oid == id).map(|(_, d)| d);
        assert_eq!(recorded, Some(decision), "outcome mismatch for {id:?}");
    }

    let stats = server.stats();
    assert_eq!(stats.connections, feeds as u64);
    assert_eq!(stats.connections_dropped, 0);
    assert_eq!(stats.sessions_decided, feeds as u64);
    assert_eq!(stats.busy_replies, stats.credit_replies);
    match codec {
        WireCodec::Raw => assert_eq!(stats.wire_audio_bytes, stats.raw_audio_bytes),
        WireCodec::I16Delta => assert!(
            stats.compression_ratio() >= 3.5,
            "fleet compression only {:.2}x",
            stats.compression_ratio()
        ),
    }
    assert!(
        server.peak_conn_bytes() > 0,
        "footprint accounting saw the fleet"
    );

    server.shutdown();
    reactor.join().expect("reactor thread");
    decisions
}

#[test]
fn reactor_fleet_runs_under_the_env_selected_codec() {
    // The CI matrix sets PIANO_WIRE_CODEC ∈ {off, i16-delta}; a small
    // fleet on two shards negotiates whatever the environment selected.
    let decisions = reactor_decisions(3, WireCodec::from_env(), 2);
    assert!(decisions.iter().all(AuthDecision::is_granted));
}

#[test]
fn reactor_decisions_match_direct_ingestion_for_100_feeds() {
    const FEEDS: usize = 100;
    let direct = direct_decisions(FEEDS);
    for d in &direct {
        match d {
            AuthDecision::Granted { distance_m } => {
                assert!(
                    (distance_m - 0.5).abs() < 0.1,
                    "direct distance {distance_m}"
                )
            }
            other => panic!("direct path denied: {other:?}"),
        }
    }
    let raw = reactor_decisions(FEEDS, WireCodec::Raw, 1);
    let compressed = reactor_decisions(FEEDS, WireCodec::I16Delta, 4);
    assert_eq!(raw, direct, "codec-off reactor diverged from direct");
    assert_eq!(
        compressed, direct,
        "i16-delta four-shard reactor diverged from direct"
    );
}

#[test]
fn reactor_survivable_faults_yield_byte_identical_decisions() {
    const FEEDS: usize = 4;
    let baseline = direct_decisions(FEEDS);

    let server = reactor_server(1, |cfg| {
        cfg.resume_window = Duration::from_secs(10);
    });
    let reactor = server.start();
    let (connector, listener) = memory_hub();
    spawn_register_loop(&server, listener);
    let config = action_config(&server);

    // Sequential handshakes on fault-wrapped transports (no plan cuts
    // the handshake itself, so session randomness binds to feed order
    // exactly as in the direct run), then script per-feed cuts relative
    // to the bytes each link has actually seen.
    let mut fleet = Vec::with_capacity(FEEDS);
    for i in 0..FEEDS {
        let plan = match i {
            // Feed 0 runs clean; feed 1 loses its write direction in the
            // middle of an audio batch; feed 2 loses its read direction
            // just past the handshake; feed 3 suffers seeded
            // segmentation + latency chaos, no cuts.
            0 => FaultPlan::clean(SEED),
            1 => FaultPlan::clean(SEED + 1).with_write_disconnect(4_000),
            2 => FaultPlan::clean(SEED + 2),
            _ => FaultPlan::chaos(SEED + 3),
        };
        let t = FaultyTransport::new(connector.connect().expect("hub open"), plan);
        let mut handle =
            FeedHandle::connect(t, &[WireCodec::I16Delta]).expect("faulty handshake survives");
        if i == 2 {
            let seen = handle.transport_mut().read_bytes();
            handle.transport_mut().set_read_disconnect(seen + 10);
        }
        let connector = connector.clone();
        let mut redials = 0u64;
        let dial = move || -> io::Result<FaultyTransport<MemoryStream>> {
            redials += 1;
            Ok(FaultyTransport::new(
                connector.connect()?,
                FaultPlan::clean(SEED ^ redials),
            ))
        };
        fleet.push(ResilientFeed::adopt(
            handle,
            dial,
            RetryPolicy {
                jitter_seed: SEED + i as u64,
                ..RetryPolicy::default()
            },
        ));
    }

    let clients: Vec<_> = fleet
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.handle().challenge(), &config);
                feed.send_recording(&rec, 1_024, 4)
                    .expect("stream survives faults");
                let decision = feed
                    .finish_and_await(Duration::from_secs(60))
                    .expect("verdict survives faults");
                (decision, feed.stats())
            })
        })
        .collect();

    assert_eq!(
        server
            .wait_for_reports_timeout(FEEDS, Duration::from_secs(60))
            .expect("every feed reports despite faults"),
        FEEDS
    );
    let hub = hub_recording_reactor(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), FEEDS);

    let results: Vec<(AuthDecision, piano::net::FeedStats)> =
        clients.into_iter().map(|t| t.join().unwrap()).collect();
    let decisions: Vec<AuthDecision> = results.iter().map(|(d, _)| d.clone()).collect();
    assert_eq!(
        decisions, baseline,
        "faulted reactor fleet diverged from the direct run"
    );

    let client_resumes: u64 = results.iter().map(|(_, s)| s.resumes).sum();
    assert!(
        client_resumes >= 2,
        "both cut feeds resumed: {client_resumes}"
    );
    let stats = server.stats();
    assert!(
        stats.resumes >= 2,
        "the reactor acked the resumes: {}",
        stats.resumes
    );
    assert!(
        stats.connections_suspended >= 1,
        "a mid-stream loss suspended: {}",
        stats.connections_suspended
    );
    assert_eq!(
        stats.drops.total(),
        stats.connections_dropped,
        "per-cause drops account for every drop"
    );
    assert_eq!(stats.sessions_decided, FEEDS as u64);
    server.shutdown();
    reactor.join().expect("reactor thread");
}

#[test]
fn reactor_stalled_feed_times_out_alone_within_the_deadline() {
    const GOOD: usize = 3;
    let baseline = direct_decisions(GOOD);

    let server = reactor_server(1, |cfg| {
        cfg.idle_timeout = Duration::from_millis(200);
    });
    let reactor = server.start();
    let (connector, mut listener) = memory_hub();
    let config = action_config(&server);

    // Healthy feeds handshake first (their session randomness matches
    // the 3-feed baseline); the staller connects last.
    let mut handles = Vec::new();
    for _ in 0..GOOD + 1 {
        let transport = connector.connect().unwrap();
        let conn = listener.accept_conn().unwrap();
        server.register(conn);
        handles.push(FeedHandle::connect(transport, &[WireCodec::I16Delta]).unwrap());
    }
    let mut stalled = handles.pop().unwrap();
    stalled.send_batch(&[vec![0.25; 512]]).unwrap();
    // ... and then nothing: the connection stays open but silent.

    let clients: Vec<_> = handles
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).unwrap();
                feed.finish().unwrap();
                feed.await_decision().unwrap()
            })
        })
        .collect();

    let waited = Instant::now();
    let reported = server
        .wait_for_reports_timeout(GOOD + 1, Duration::from_secs(30))
        .expect("the stalled feed's drop unblocks the wait");
    assert_eq!(reported, GOOD, "only healthy feeds report");
    assert!(
        waited.elapsed() < Duration::from_secs(10),
        "the timer wheel fired the idle watchdog promptly"
    );

    let hub = hub_recording_reactor(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), GOOD);
    let decisions: Vec<AuthDecision> = clients.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(decisions, baseline, "healthy feeds unaffected by the stall");

    let stats = server.stats();
    assert_eq!(stats.connections_dropped, 1, "only the staller dropped");
    assert_eq!(stats.drops.get(DropCause::Timeout), 1, "under Timeout");
    drop(stalled);
    server.shutdown();
    reactor.join().expect("reactor thread");
}

#[test]
fn reactor_shedding_is_typed_and_recoverable() {
    const FEEDS: usize = 3;
    let server = reactor_server(1, |cfg| {
        cfg.max_active_feeds = 1;
        cfg.retry_after_ms = 10;
    });
    let reactor = server.start();
    let (connector, listener) = memory_hub();
    spawn_register_loop(&server, listener);
    let config = action_config(&server);

    // Fill the single admission slot.
    let first = FeedHandle::connect(connector.connect().unwrap(), &[WireCodec::I16Delta]).unwrap();

    // The next Hello is shed with a typed, hint-carrying error — before
    // any session state was allocated.
    match FeedHandle::connect(connector.connect().unwrap(), &[WireCodec::I16Delta]) {
        Err(PianoError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 10),
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Stream the admitted feed; retrying clients are admitted as the
    // slot frees up at report time.
    let mut clients = Vec::new();
    {
        let config = config.clone();
        let mut feed = first;
        clients.push(std::thread::spawn(move || {
            let rec = feed_recording(feed.challenge(), &config);
            feed.send_recording(&rec, 1_024, 4).unwrap();
            feed.finish().unwrap();
            feed.await_decision().unwrap()
        }));
    }
    for i in 0..FEEDS - 1 {
        let connector = connector.clone();
        let config = config.clone();
        clients.push(std::thread::spawn(move || {
            let dial = move || connector.connect();
            let mut feed = ResilientFeed::connect(
                dial,
                &[WireCodec::I16Delta],
                RetryPolicy {
                    max_attempts: 50,
                    jitter_seed: SEED + i as u64,
                    ..RetryPolicy::default()
                },
            )
            .expect("admitted once the backlog drains");
            assert!(feed.stats().sheds_seen > 0 || feed.stats().retries == 0);
            let rec = feed_recording(feed.handle().challenge(), &config);
            feed.send_recording(&rec, 1_024, 4).unwrap();
            feed.finish_and_await(Duration::from_secs(60)).unwrap()
        }));
    }

    assert_eq!(
        server
            .wait_for_reports_timeout(FEEDS, Duration::from_secs(60))
            .expect("all three admitted and reported"),
        FEEDS
    );
    let hub = hub_recording_reactor(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), FEEDS);
    for c in clients {
        assert!(c.join().unwrap().is_granted(), "every feed granted");
    }
    let stats = server.stats();
    assert!(stats.connections_shed >= 1, "the probe was shed");
    assert_eq!(stats.connections_dropped, 0, "shedding is not dropping");
    server.shutdown();
    reactor.join().expect("reactor thread");
}

#[test]
fn reactor_timeout_wait_is_typed() {
    let server = reactor_server(1, |_| {});
    match server.wait_for_reports_timeout(1, Duration::from_millis(50)) {
        Err(PianoError::Timeout(_)) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
}

#[test]
fn reactor_sees_a_hangup_behind_a_partial_frame_in_the_same_edge() {
    // A peer that writes a final partial frame and dies delivers BOTH
    // edges — bytes and EOF — under one readiness token. The reactor's
    // read loop used to stop at the short read, miss the close, and
    // leave the feed parked until the idle timer (which *drops* instead
    // of suspending, stranding any resume probe). The suspension must
    // land promptly and the resumed stream must still conclude.
    let server = reactor_server(2, |cfg| {
        cfg.resume_window = Duration::from_secs(10);
        cfg.idle_timeout = Duration::from_secs(10);
    });
    let reactor = server.start();
    let (connector, listener) = memory_hub();
    spawn_register_loop(&server, listener);
    let config = action_config(&server);

    let mut feed = FeedHandle::connect(connector.connect().unwrap(), &[WireCodec::I16Delta])
        .expect("handshake");
    let session = feed.session();
    let codec = feed.codec();
    let rec = feed_recording(feed.challenge(), &config);
    let chunks: Vec<Vec<f64>> = rec.chunks(1_024).map(<[f64]>::to_vec).collect();
    feed.send_batch(&chunks[0..4]).expect("first batch");

    // Let the reactor drain the batch completely: a non-empty backlog
    // would keep the connection runnable and hand the next turn a free
    // `try_read` that notices the close anyway. The miss needs an
    // otherwise-parked connection.
    std::thread::sleep(Duration::from_millis(300));

    // Two bytes of a frame header, then hang up — back to back, so the
    // write and the close coalesce into one wake on the reactor side.
    let mut t = feed.into_transport();
    t.write_all(&[0x00, 0x01]).expect("partial frame prefix");
    let cut_at = Instant::now();
    drop(t);

    let (mut handle, ack_seq, ended) =
        FeedHandle::resume(connector.connect().unwrap(), session, 4, codec)
            .expect("prompt resume — the reactor noticed the hangup");
    assert!(!ended, "the stream was cut mid-flight");
    assert!(
        cut_at.elapsed() < Duration::from_secs(2),
        "attach after {:?} — the EOF behind the partial frame was missed",
        cut_at.elapsed()
    );
    assert!(ack_seq <= 4, "server cursor never exceeds what was sent");

    for batch in chunks[ack_seq as usize..].chunks(4) {
        handle.send_batch(batch).expect("replayed batch");
    }
    handle.finish().expect("stream end");
    assert_eq!(server.wait_for_reports(1), 1);
    let hub = hub_recording_reactor(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), 1);
    assert!(handle.await_decision().expect("verdict").is_granted());

    let stats = server.stats();
    assert_eq!(stats.resumes, 1, "the probe's attach was acked");
    assert_eq!(stats.connections_suspended, 1);
    assert_eq!(stats.connections_dropped, 0, "a resumed feed is no drop");
    server.shutdown();
    reactor.join().expect("reactor thread");
}
