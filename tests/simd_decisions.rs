//! End-to-end decision invariance across DSP backends.
//!
//! The kernel-level contract (`tests/simd_equivalence.rs`) is that every
//! SIMD backend is bit-identical to scalar; this suite closes the loop at
//! the system level: the streaming-equivalence scenario and the
//! net-transport conformance scenario, forced to each available backend
//! via `simd::set_backend` (the programmatic equivalent of running the
//! process under `PIANO_DSP_SIMD=<name>`, which the CI matrix also does),
//! must produce **identical** early-detection events, `finish()` scan
//! results, and grant/deny decisions to the scalar run.
//!
//! Backend forcing is process-global, so every test here serializes on
//! one lock and restores the environment's choice before releasing it.

use std::sync::{Arc, Mutex, OnceLock};

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use piano::core::detect::{Detector, ScanResult, SignalSignature};
use piano::core::stream::StreamEvent;
use piano::core::wire::WireCodec;
use piano::dsp::simd::{self, DspBackend};
use piano::net::fixtures::{feed_recording, hub_recording};
use piano::net::transport::{memory_hub, Listener};
use piano::net::{FeedHandle, ServerConfig, ServerLoop};
use piano::prelude::*;

/// Serializes backend forcing across this binary's test threads.
fn backend_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Runs `scenario` once per available backend (scalar first) and returns
/// `(backend, result)` pairs, restoring the env-selected backend after.
fn per_backend<T>(scenario: impl Fn() -> T) -> Vec<(DspBackend, T)> {
    let _guard = backend_lock().lock().expect("backend lock");
    let mut runs = Vec::new();
    simd::set_backend(DspBackend::Scalar).expect("scalar always available");
    runs.push((DspBackend::Scalar, scenario()));
    for backend in simd::available_backends() {
        if backend == DspBackend::Scalar {
            continue;
        }
        simd::set_backend(backend).expect("listed as available");
        assert_eq!(simd::active_backend(), backend);
        runs.push((backend, scenario()));
    }
    simd::reset_backend_from_env();
    runs
}

/// The streaming-equivalence scenario: two signatures embedded in a noisy
/// recording, streamed in audio-callback chunks. Returns everything the
/// stream produced: provisional events and the exact finish result.
fn streaming_scenario() -> (Vec<StreamEvent>, ScanResult) {
    let cfg = ActionConfig::default();
    let detector = Arc::new(Detector::new(&cfg));
    let mut rng = ChaCha8Rng::seed_from_u64(0xDEC1DE);
    let sa = ReferenceSignal::random(&cfg, &mut rng);
    let sv = ReferenceSignal::random(&cfg, &mut rng);
    let mut rec: Vec<f64> = (0..cfg.recording_len())
        .map(|_| rng.gen_range(-0.01..0.01))
        .collect();
    for (i, &v) in sa.waveform().iter().enumerate() {
        rec[23_017 + i] += 0.35 * v;
    }
    for (i, &v) in sv.waveform().iter().enumerate() {
        rec[51_234 + i] += 0.3 * v;
    }
    let sigs = vec![
        SignalSignature::of(&sa, &cfg),
        SignalSignature::of(&sv, &cfg),
    ];
    let mut stream = StreamingDetector::new(detector, sigs);
    let mut events = Vec::new();
    for chunk in rec.chunks(1_024) {
        events.extend(stream.push(chunk));
    }
    (events, stream.finish())
}

/// The net-transport conformance scenario: `feeds` concurrent clients
/// over the in-memory transport into one `ServerLoop`, hub scanned once.
/// Returns decisions in handshake order.
fn transport_scenario(feeds: usize, codec: WireCodec) -> Vec<AuthDecision> {
    let server = ServerLoop::new(
        AuthService::new(PianoConfig::with_threshold(1.0)),
        ChaCha8Rng::seed_from_u64(0xF1EE7),
        ServerConfig::default(),
    );
    let (connector, mut listener) = memory_hub();
    let config = server.with_service(|s| s.config().action.clone());

    let mut handles = Vec::with_capacity(feeds);
    let mut server_threads = Vec::with_capacity(feeds);
    for _ in 0..feeds {
        let transport = connector.connect().expect("hub open");
        let server_clone = server.clone();
        let conn = listener.accept_conn().expect("accept");
        server_threads.push(std::thread::spawn(move || server_clone.serve(conn)));
        handles.push(FeedHandle::connect(transport, &[codec]).expect("handshake"));
    }
    let client_threads: Vec<_> = handles
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).expect("stream");
                feed.finish().expect("stream end");
                feed.await_decision().expect("verdict")
            })
        })
        .collect();

    assert_eq!(server.wait_for_reports(feeds), feeds, "every feed reports");
    let hub = hub_recording(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), feeds);
    let decisions: Vec<AuthDecision> = client_threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    for t in server_threads {
        let _ = t.join().expect("server thread");
    }
    decisions
}

#[test]
fn streaming_events_and_finish_are_identical_on_every_backend() {
    let runs = per_backend(streaming_scenario);
    let (_, (ref scalar_events, ref scalar_finish)) = runs[0];
    assert!(
        scalar_events
            .iter()
            .any(|e| matches!(e, StreamEvent::EarlyDetection { .. })),
        "scenario must exercise provisional detections"
    );
    assert!(scalar_finish.detections.iter().all(|d| d.is_found()));
    for (backend, (events, finish)) in &runs[1..] {
        assert_eq!(events, scalar_events, "{backend}: early events diverged");
        assert_eq!(finish, scalar_finish, "{backend}: finish() diverged");
    }
}

#[test]
fn transport_decisions_are_identical_on_every_backend() {
    for codec in [WireCodec::Raw, WireCodec::I16Delta] {
        let runs = per_backend(|| transport_scenario(8, codec));
        let (_, ref scalar) = runs[0];
        assert_eq!(scalar.len(), 8);
        assert!(
            scalar.iter().all(|d| d.is_granted()),
            "the 0.50 m fixture geometry must grant under every codec"
        );
        for (backend, decisions) in &runs[1..] {
            assert_eq!(
                decisions, scalar,
                "{backend}/{codec:?}: decisions diverged from scalar"
            );
        }
    }
}
