//! Property-based integration tests: protocol invariants that must hold
//! across random seeds, geometries and environments.

use piano::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn authenticate_once(distance_m: f64, env_idx: usize, seed: u64) -> AuthDecision {
    let envs = [
        Environment::office(),
        Environment::home(),
        Environment::street(),
        Environment::restaurant(),
    ];
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let a = Device::phone(1, Position::ORIGIN, seed ^ 0x1);
    let v = Device::phone(2, Position::new(distance_m, 0.0, 0.0), seed ^ 0x2);
    let mut authn = AuthService::new(PianoConfig::default());
    authn.register(&a, &v, &mut rng);
    let mut field = AcousticField::new(envs[env_idx % envs.len()].clone(), seed ^ 0x3);
    authn.authenticate_pair(&mut field, &a, &v, 0.0, &mut rng)
}

proptest! {
    // The acoustic protocol is expensive; keep the case counts modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Beyond Bluetooth range the decision is always an immediate denial,
    /// regardless of seed/environment (paper: FAR = 0 beyond 10 m).
    #[test]
    fn beyond_bluetooth_always_denied(
        d in 10.1f64..30.0,
        env in 0usize..4,
        seed in 0u64..1000,
    ) {
        let decision = authenticate_once(d, env, seed);
        prop_assert_eq!(
            decision,
            AuthDecision::Denied { reason: DenialReason::BluetoothUnreachable }
        );
    }

    /// Within easy acoustic range, a measured estimate stays within gross
    /// physical bounds (no negative-beyond-noise, no beyond-Bluetooth
    /// readings) — the Eq. 3 arithmetic can't run away.
    #[test]
    fn estimates_are_physically_bounded(
        d in 0.4f64..1.6,
        env in 0usize..4,
        seed in 0u64..1000,
    ) {
        match authenticate_once(d, env, seed) {
            AuthDecision::Granted { distance_m } => {
                prop_assert!(distance_m > -0.5 && distance_m < 10.0);
            }
            AuthDecision::Denied { reason: DenialReason::TooFar { distance_m } } => {
                prop_assert!(distance_m > -0.5 && distance_m < 10.0);
            }
            // Occasional signal-absent under heavy jitter draws is legal.
            AuthDecision::Denied { reason: DenialReason::SignalAbsent } => {}
            other => prop_assert!(false, "unexpected decision {:?}", other),
        }
    }

    /// A grant implies the measured distance respected the threshold.
    #[test]
    fn grants_respect_threshold(
        d in 0.4f64..2.2,
        seed in 0u64..1000,
    ) {
        if let AuthDecision::Granted { distance_m } = authenticate_once(d, 0, seed) {
            prop_assert!(distance_m <= PianoConfig::default().threshold_m);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reference-signal wire transport is lossless for arbitrary sessions.
    #[test]
    fn signal_specs_roundtrip(seed in 0u64..10_000) {
        use piano::core::wire::{Message, SignalSpec};
        let config = ActionConfig::default();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sa = ReferenceSignal::random(&config, &mut rng);
        let sv = ReferenceSignal::random(&config, &mut rng);
        let msg = Message::ReferenceSignals {
            session: seed,
            sa: SignalSpec::of(&sa),
            sv: SignalSpec::of(&sv),
        };
        let decoded = Message::decode(&msg.encode()).expect("roundtrip");
        prop_assert_eq!(decoded, msg);
    }

    /// Both samplers always construct paper-legal signals (0 < n < N) and
    /// the power rule `n·amplitude = 32000` holds exactly.
    #[test]
    fn signal_construction_invariants(seed in 0u64..10_000, uniform in any::<bool>()) {
        let sampler =
            if uniform { SignalSampler::UniformSubset } else { SignalSampler::TwoStage };
        let config = ActionConfig { sampler, ..ActionConfig::default() };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sig = ReferenceSignal::random(&config, &mut rng);
        prop_assert!(sig.n_tones() >= 1);
        prop_assert!(sig.n_tones() < config.grid.len());
        prop_assert!((sig.amplitude() * sig.n_tones() as f64 - 32_000.0).abs() < 1e-9);
        // Peak bounded: the mixed waveform cannot clip a 16-bit DAC.
        let peak = sig.waveform().iter().fold(0.0f64, |m, &x| m.max(x.abs()));
        prop_assert!(peak <= 32_000.0 + 1e-9);
    }
}
