//! Cross-crate determinism: every layer of the stack must be bit-for-bit
//! reproducible from its seeds, because the evaluation's scientific claim
//! ("these numbers regenerate") depends on it.

use piano::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn acoustic_render_is_reproducible() {
    let render = || {
        let mut field = AcousticField::new(Environment::restaurant(), 404);
        let device = Device::phone(1, Position::ORIGIN, 405);
        let mut rng = ChaCha8Rng::seed_from_u64(406);
        let wave = piano::dsp::tone::sine(14_000.0, 0.0, 2_000.0, 44_100.0, 4_096);
        device.play(&mut field, &wave, 0.1, 44_100.0, &mut rng);
        let (rec, _) = Device::phone(2, Position::new(1.0, 0.0, 0.0), 407)
            .record(&mut field, 0.0, 0.5, 44_100.0, &mut rng);
        rec
    };
    assert_eq!(render(), render());
}

#[test]
fn signal_generation_is_reproducible_and_seed_sensitive() {
    let config = ActionConfig::default();
    let gen = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        ReferenceSignal::random(&config, &mut rng)
    };
    assert_eq!(gen(9), gen(9));
    assert_ne!(gen(9), gen(10));
}

#[test]
fn trial_harness_is_reproducible_across_parallelism() {
    use piano::eval::trials::{run_trial, run_trials, TrialSetup};
    let setup = TrialSetup::new(Environment::street(), 1.2, 0x5EED);
    let parallel = run_trials(&setup, 6);
    let sequential: Vec<_> = (0..6).map(|i| run_trial(&setup, i as u64)).collect();
    assert_eq!(parallel, sequential);
}

#[test]
fn experiment_results_are_reproducible() {
    let a = piano::eval::fig1::run(2, 77);
    let b = piano::eval::fig1::run(2, 77);
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.mean_abs_error_m.to_bits(), y.mean_abs_error_m.to_bits());
        assert_eq!(x.absent, y.absent);
    }
}

#[test]
fn parallel_detection_is_bit_identical_to_serial_across_worker_counts() {
    use piano::core::detect::{ScanMode, SignalSignature};
    use piano::core::Detector;

    let config = ActionConfig::default();
    let detector = Detector::new(&config);
    let mut rng = ChaCha8Rng::seed_from_u64(0xACED);
    let sa = ReferenceSignal::random(&config, &mut rng);
    let sv = ReferenceSignal::random(&config, &mut rng);
    let mut recording = vec![0.0; config.recording_len()];
    for (i, &v) in sa.waveform().iter().enumerate() {
        recording[17_001 + i] += 0.3 * v;
    }
    for (i, &v) in sv.waveform().iter().enumerate() {
        recording[52_424 + i] += 0.25 * v;
    }
    let siga = SignalSignature::of(&sa, &config);
    let sigv = SignalSignature::of(&sv, &config);

    let serial = detector.detect_many(&recording, &[&siga, &sigv]);
    for workers in [1, 2, 3, 5, 8, 32] {
        let parallel = detector.detect_many_parallel_with(&recording, &[&siga, &sigv], workers);
        assert_eq!(
            serial, parallel,
            "parallel scan diverged at {workers} workers"
        );
    }
    // The sparse fine scan (the default here: rectangular analysis window)
    // must land on the same windows as the dense reference path.
    let dense = detector.detect_many_mode(&recording, &[&siga, &sigv], ScanMode::Dense);
    assert_eq!(dense.ffts_used, serial.ffts_used);
    for (d, s) in dense.detections.iter().zip(&serial.detections) {
        assert_eq!(d.location(), s.location());
    }
}

#[test]
fn attack_batches_are_reproducible() {
    use piano::attacks::{run_trials, AttackKind};
    let run = || {
        run_trials(
            AttackKind::GuessingReplay,
            &Environment::office(),
            6.0,
            2,
            0xD00F,
        )
    };
    assert_eq!(run(), run());
}
