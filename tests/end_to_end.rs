//! End-to-end integration tests across the whole workspace: registration,
//! authentication, denial paths, and personalization through the public
//! facade API only.

use piano::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn pairings(distance_m: f64, seed: u64) -> (AuthService, Device, Device, ChaCha8Rng) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let auth_dev = Device::phone(1, Position::ORIGIN, seed + 1);
    let vouch_dev = Device::phone(2, Position::new(distance_m, 0.0, 0.0), seed + 2);
    let mut authn = AuthService::new(PianoConfig::default());
    authn.register(&auth_dev, &vouch_dev, &mut rng);
    (authn, auth_dev, vouch_dev, rng)
}

#[test]
fn grant_when_close_in_every_paper_environment() {
    for (i, env) in Environment::paper_environments().into_iter().enumerate() {
        let (mut authn, a, v, mut rng) = pairings(0.5, 100 + i as u64);
        let mut field = AcousticField::new(env.clone(), 50 + i as u64);
        let decision = authn.authenticate_pair(&mut field, &a, &v, 0.0, &mut rng);
        assert!(
            decision.is_granted(),
            "close-range grant failed in {}: {decision:?}",
            env.name
        );
    }
}

#[test]
fn deny_when_user_away_in_every_paper_environment() {
    for (i, env) in Environment::paper_environments().into_iter().enumerate() {
        let (mut authn, a, v, mut rng) = pairings(6.0, 200 + i as u64);
        let mut field = AcousticField::new(env.clone(), 60 + i as u64);
        let decision = authn.authenticate_pair(&mut field, &a, &v, 0.0, &mut rng);
        assert!(
            !decision.is_granted(),
            "user-away grant in {}: {decision:?}",
            env.name
        );
    }
}

#[test]
fn measured_distance_is_accurate_at_one_meter() {
    // True distance 1.0 m with τ = 1.0 m would be a coin flip (half the
    // error distribution crosses the threshold); use a threshold with
    // margin so this test asserts *accuracy*, not threshold luck.
    let (mut authn, a, v, mut rng) = pairings(1.0, 300);
    authn.set_threshold_m(1.6);
    let mut field = AcousticField::new(Environment::office(), 70);
    match authn.authenticate_pair(&mut field, &a, &v, 0.0, &mut rng) {
        AuthDecision::Granted { distance_m } => {
            assert!((distance_m - 1.0).abs() < 0.35, "estimate {distance_m} m");
        }
        other => panic!("expected grant: {other:?}"),
    }
    // Diagnostics are exposed for the efficiency models.
    let outcome = authn.last_outcome().expect("outcome recorded");
    assert!(outcome.diagnostics.ffts_auth > 0);
    assert!(outcome.diagnostics.bluetooth_messages >= 2);
}

#[test]
fn registration_is_required_and_durable() {
    let mut rng = ChaCha8Rng::seed_from_u64(400);
    let a = Device::phone(1, Position::ORIGIN, 401);
    let v = Device::phone(2, Position::new(0.5, 0.0, 0.0), 402);
    let mut authn = AuthService::new(PianoConfig::default());
    assert!(!authn.is_registered(&a, &v));
    let mut field = AcousticField::new(Environment::office(), 403);
    assert!(!authn
        .authenticate_pair(&mut field, &a, &v, 0.0, &mut rng)
        .is_granted());

    authn.register(&a, &v, &mut rng);
    assert!(authn.is_registered(&a, &v));
    // Multiple authentications on one registration (the paper: pairing
    // "only needs to be done once").
    for t in 0..2 {
        let mut field = AcousticField::new(Environment::office(), 404 + t);
        assert!(authn
            .authenticate_pair(&mut field, &a, &v, t as f64 * 10.0, &mut rng)
            .is_granted());
    }
}

#[test]
fn threshold_separates_grant_from_too_far() {
    let (mut authn, a, v, mut rng) = pairings(1.5, 500);
    authn.set_threshold_m(0.5);
    let mut field = AcousticField::new(Environment::anechoic(), 501);
    match authn.authenticate_pair(&mut field, &a, &v, 0.0, &mut rng) {
        AuthDecision::Denied {
            reason: DenialReason::TooFar { distance_m },
        } => {
            assert!((distance_m - 1.5).abs() < 0.3);
        }
        other => panic!("expected TooFar: {other:?}"),
    }
}

#[test]
fn full_protocol_is_deterministic() {
    let run = || {
        let (mut authn, a, v, mut rng) = pairings(1.0, 600);
        let mut field = AcousticField::new(Environment::street(), 601);
        format!(
            "{:?}",
            authn.authenticate_pair(&mut field, &a, &v, 0.0, &mut rng)
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn action_protocol_exposed_directly() {
    // The lower-level run_action API works without the authenticator.
    let mut rng = ChaCha8Rng::seed_from_u64(700);
    let mut field = AcousticField::new(Environment::office(), 701);
    let mut link = BluetoothLink::new();
    let mut registry = PairingRegistry::new();
    let a = Device::phone(1, Position::ORIGIN, 702);
    let v = Device::phone(2, Position::new(0.8, 0.0, 0.0), 703);
    registry.pair(a.id, v.id, &mut rng);
    let outcome = run_action(
        &ActionConfig::default(),
        &mut field,
        &mut link,
        &registry,
        &a,
        &v,
        0.0,
        &mut rng,
    )
    .expect("protocol runs");
    let d = outcome.estimate.distance_m().expect("measured");
    assert!((d - 0.8).abs() < 0.35, "estimate {d}");
}
