//! Regression pins for the two blocking-wait bugs this layer shipped
//! with:
//!
//! * **Client double-sleep on shed:** `ResilientFeed::connect` used to
//!   sleep the server's `Retry` hint *and then* the jittered backoff on
//!   the same failed attempt — and honored the hint uncapped, so a
//!   hostile or misconfigured server could stall a client for an hour.
//!   Every failed attempt now sleeps exactly once, and a shed hint is
//!   clamped to [`RetryPolicy::max_delay`]. `FeedStats::backoff_total`
//!   records every slept interval, which is what makes the "exactly
//!   once" property assertable.
//! * **Server resume-attach busy-poll:** a `Resume` probe racing the
//!   suspension of the connection it resumes used to spin on the
//!   registry at a fixed tick. It now waits on a condvar that
//!   `ServerLoop::park` signals, so the attach is prompt and the
//!   handshake deadline is honored without overshoot.

use std::io;
use std::time::{Duration, Instant};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::error::PianoError;
use piano::net::fixtures::{feed_recording, hub_recording};
use piano::net::transport::{
    memory_hub, memory_pair, Listener, MemoryListener, MemoryStream, Transport,
};
use piano::net::{FeedHandle, ResilientFeed, RetryPolicy, ServerConfig, ServerLoop};
use piano::prelude::*;

const SEED: u64 = 0xBACC0FF;

fn server_with(tweak: impl FnOnce(&mut ServerConfig)) -> ServerLoop {
    let mut cfg = ServerConfig::default();
    tweak(&mut cfg);
    ServerLoop::new(
        AuthService::new(PianoConfig::with_threshold(1.0)),
        ChaCha8Rng::seed_from_u64(SEED),
        cfg,
    )
}

fn spawn_accept_loop(server: &ServerLoop, mut listener: MemoryListener) {
    let server = server.clone();
    std::thread::spawn(move || {
        while let Ok(conn) = listener.accept_conn() {
            let s = server.clone();
            std::thread::spawn(move || {
                let _ = s.serve(conn);
            });
        }
    });
}

/// A transport whose peer immediately answers the handshake with a
/// `Retry` carrying `hint_ms`. The peer end is returned too — drop it
/// early and the client's `Hello` write dies before the shed is read.
fn shed_transport(hint_ms: u64) -> (MemoryStream, MemoryStream) {
    let (client, mut server) = memory_pair();
    server
        .write_all(
            &Message::Retry {
                retry_after_ms: hint_ms,
            }
            .encode_framed(),
        )
        .expect("scripted shed");
    (client, server)
}

#[test]
fn shed_sleeps_once_with_the_hint_clamped() {
    // First dial: a scripted shed advertising a one-HOUR hint. Second
    // dial: a real server. The clamp (max_delay = 200 ms) and the
    // single-sleep rule mean the whole connect finishes in ~200 ms with
    // backoff_total exactly equal to the clamped hint — the pre-fix code
    // would have slept 1 h (uncapped hint), or hint + jittered backoff
    // (double sleep), both visible here as a bigger backoff_total.
    let server = server_with(|_| {});
    let (connector, listener) = memory_hub();
    spawn_accept_loop(&server, listener);

    let (shed_client, _shed_peer) = shed_transport(3_600_000);
    let mut scripted = vec![shed_client];
    let dial = move || -> io::Result<MemoryStream> {
        match scripted.pop() {
            Some(t) => Ok(t),
            None => connector.connect(),
        }
    };
    let policy = RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(200),
        jitter_seed: SEED,
    };
    let started = Instant::now();
    let feed = ResilientFeed::connect(dial, &[WireCodec::Raw], policy).expect("admitted");
    let elapsed = started.elapsed();

    assert!(
        elapsed >= Duration::from_millis(190),
        "the clamped hint was slept: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "a shed must cost one clamped sleep, not the raw hint: {elapsed:?}"
    );
    let stats = feed.stats();
    assert_eq!(stats.sheds_seen, 1, "one shed absorbed");
    assert_eq!(stats.retries, 1, "one retry for one failed attempt");
    assert_eq!(
        stats.backoff_total,
        Duration::from_millis(200),
        "exactly one sleep, exactly the clamped hint"
    );
}

#[test]
fn transport_failures_sleep_one_jittered_backoff_each() {
    let server = server_with(|_| {});
    let (connector, listener) = memory_hub();
    spawn_accept_loop(&server, listener);

    let mut failures = 2u32;
    let dial = move || -> io::Result<MemoryStream> {
        if failures > 0 {
            failures -= 1;
            return Err(io::Error::new(io::ErrorKind::ConnectionRefused, "down"));
        }
        connector.connect()
    };
    let policy = RetryPolicy {
        max_attempts: 4,
        base_delay: Duration::from_millis(4),
        max_delay: Duration::from_millis(100),
        jitter_seed: SEED + 1,
    };
    let feed = ResilientFeed::connect(dial, &[WireCodec::Raw], policy).expect("admitted");
    let stats = feed.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.sheds_seen, 0);
    // Two jittered exponential sleeps: 4 ms·j + 8 ms·j with j ∈
    // [0.5, 1.0) — one sleep per attempt, never more.
    assert!(
        stats.backoff_total >= Duration::from_millis(6)
            && stats.backoff_total < Duration::from_millis(12),
        "backoff_total {:?} outside one-sleep-per-attempt bounds",
        stats.backoff_total
    );
}

#[test]
fn exhausted_attempts_surface_the_shed_without_sleeping() {
    // max_attempts = 0: the first failure is final, and no time is spent
    // sleeping a hint that will never be used.
    let (shed_client, _shed_peer) = shed_transport(44);
    let mut scripted = vec![shed_client];
    let dial = move || -> io::Result<MemoryStream> {
        Ok(scripted.pop().expect("single scripted attempt"))
    };
    let started = Instant::now();
    match ResilientFeed::connect(
        dial,
        &[WireCodec::Raw],
        RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        },
    ) {
        Err(PianoError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 44),
        Err(other) => panic!("expected Overloaded, got {other:?}"),
        Ok(_) => panic!("no attempts left, connect must fail"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(100),
        "a final failure must not sleep first"
    );
}

#[test]
fn resume_probe_racing_the_suspension_attaches_promptly() {
    // The probe arrives while the connection it resumes is still
    // attached; the suspension lands 150 ms later. The condvar in the
    // server's resume wait must pick the entry up immediately — and the
    // resumed stream must still conclude with a verdict.
    let server = server_with(|cfg| {
        cfg.resume_window = Duration::from_secs(10);
    });
    let (connector, listener) = memory_hub();
    spawn_accept_loop(&server, listener);
    let config = server.with_service(|s| s.config().action.clone());

    let mut feed = FeedHandle::connect(connector.connect().unwrap(), &[WireCodec::I16Delta])
        .expect("handshake");
    let session = feed.session();
    let codec = feed.codec();
    let rec = feed_recording(feed.challenge(), &config);
    let chunks: Vec<Vec<f64>> = rec.chunks(1_024).map(<[f64]>::to_vec).collect();
    feed.send_batch(&chunks[0..4]).expect("first batch");

    // The probe dials and blocks in the server's resume wait: its
    // session is not suspended yet.
    let probe_transport = connector.connect().unwrap();
    let probe = std::thread::spawn(move || {
        let resumed = FeedHandle::resume(probe_transport, session, 4, codec);
        (resumed, Instant::now())
    });
    std::thread::sleep(Duration::from_millis(150));

    // Now cut the original transport: the serve thread suspends the
    // feed, park() signals, and the waiting probe adopts it.
    let cut_at = Instant::now();
    drop(feed.into_transport());
    let (resumed, attached_at) = probe.join().expect("probe thread");
    let (mut handle, ack_seq, ended) = resumed.expect("prompt attach");
    assert!(!ended, "the stream was cut mid-flight");
    assert!(ack_seq <= 4, "server cursor never exceeds what was sent");
    assert!(
        attached_at.duration_since(cut_at) < Duration::from_secs(2),
        "attach after {:?} — the registry wait polled instead of waking",
        attached_at.duration_since(cut_at)
    );

    // Replay from the server's cursor and finish: the resumed feed
    // decides exactly like an unbroken one.
    for batch in chunks[ack_seq as usize..].chunks(4) {
        handle.send_batch(batch).expect("replayed batch");
    }
    handle.finish().expect("stream end");
    assert_eq!(server.wait_for_reports(1), 1);
    let hub = hub_recording(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), 1);
    assert!(handle.await_decision().expect("verdict").is_granted());

    let stats = server.stats();
    assert_eq!(stats.resumes, 1, "the probe's attach was acked");
    assert_eq!(stats.connections_suspended, 1);
    assert_eq!(stats.connections_dropped, 0, "a resumed feed is no drop");
}

#[test]
fn unknown_session_resume_rejects_at_the_handshake_deadline() {
    // No suspension ever arrives: the probe must be rejected when the
    // handshake deadline lapses — promptly after it, not on some coarser
    // polling grid, and never before it.
    let server = server_with(|cfg| {
        cfg.resume_window = Duration::from_secs(5);
        cfg.handshake_timeout = Duration::from_millis(300);
    });
    let (connector, listener) = memory_hub();
    spawn_accept_loop(&server, listener);

    let started = Instant::now();
    let err = FeedHandle::resume(connector.connect().unwrap(), 0xDEAD_BEEF, 0, WireCodec::Raw)
        .expect_err("unknown session");
    let elapsed = started.elapsed();
    assert!(
        matches!(err, PianoError::Transport(_)),
        "rejection closes the connection: {err:?}"
    );
    assert!(
        elapsed >= Duration::from_millis(290),
        "rejected {elapsed:?} in — before the handshake deadline"
    );
    assert!(
        elapsed < Duration::from_millis(1_500),
        "rejected {elapsed:?} in — the deadline overshot"
    );
}
