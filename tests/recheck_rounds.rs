//! Standing-session wire re-challenge conformance: a granted feed stays
//! connected and is re-verified over its live connection, round after
//! round, with no reconnect and no new wire session.
//!
//! * A re-check round that replays the original 0.50 m geometry grants
//!   again at ≈0.50 m. (Bit-exact batched-vs-sequential conformance is
//!   pinned in `piano_core::continuum` where both paths consume the same
//!   signal draws; over the wire every round carries *fresh* random
//!   signals, so distances agree to the geometry's tolerance, not to the
//!   bit.)
//! * A round answered from too far away is denied *for that feed only*,
//!   the denial does not tear the standing connection down, and the
//!   other feeds' verdicts are untouched.
//! * `end_standing` closes every parked connection; clients observe the
//!   close as a transport error on their next re-challenge wait.

use std::time::Duration;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::error::PianoError;
use piano::net::fixtures::{
    embed, feed_recording, hub_recording, hub_recording_for, hub_recording_reactor,
    hub_recording_sharded, recheck_recording, FEED_REC_LEN, FEED_SA_OFFSET,
};
use piano::net::quantize_samples;
use piano::net::transport::{memory_hub, Listener};
use piano::net::{FeedHandle, ReactorServer, ServerConfig, ServerLoop};
use piano::prelude::*;

const SEED: u64 = 0x057A_D1A6;
const FEEDS: usize = 3;
const ROUNDS: u32 = 2;
const WAIT: Duration = Duration::from_secs(30);

/// An `S_V` placement that ranges ≈1.56 m under the hub's 6 000-sample
/// geometry — past the 1.0 m threshold, so the round must deny.
const FAR_SV_OFFSET: usize = FEED_SA_OFFSET + 5_600;

#[test]
fn standing_feeds_survive_rechallenge_rounds() {
    let server = ServerLoop::new(
        AuthService::new(PianoConfig::with_threshold(1.0)),
        ChaCha8Rng::seed_from_u64(SEED),
        ServerConfig {
            standing: true,
            ..ServerConfig::default()
        },
    );
    let (connector, mut listener) = memory_hub();
    let config = server.with_service(|s| s.config().action.clone());

    // Sequential handshakes (deterministic session randomness), then
    // fully concurrent streaming + standing service.
    let mut handles = Vec::with_capacity(FEEDS);
    let mut server_threads = Vec::with_capacity(FEEDS);
    for _ in 0..FEEDS {
        let transport = connector.connect().expect("hub open");
        let server_clone = server.clone();
        let conn = listener.accept_conn().expect("accept");
        server_threads.push(std::thread::spawn(move || server_clone.serve(conn)));
        handles.push(FeedHandle::connect(transport, &[WireCodec::Raw]).expect("handshake"));
    }
    let client_threads: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(i, mut feed)| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).expect("stream");
                feed.finish().expect("stream end");
                let original = feed.await_decision().expect("verdict");
                assert!(original.is_granted(), "feed {i} grants in the main epoch");

                let mut verdicts = Vec::new();
                for round in 1..=ROUNDS {
                    let recheck = feed.await_recheck(WAIT).expect("re-challenge");
                    let Message::Recheck { round: r, .. } = &recheck else {
                        panic!("await_recheck returned {recheck:?}");
                    };
                    assert_eq!(*r, round, "rounds arrive in order");
                    // Feed 0 answers the final round from too far away;
                    // everyone else replays the granted geometry.
                    let rec = if i == 0 && round == ROUNDS {
                        let Message::Recheck { sa, sv, .. } = &recheck else {
                            unreachable!()
                        };
                        let wave_a = sa.reconstruct(&config).expect("spec").waveform();
                        let wave_v = sv.reconstruct(&config).expect("spec").waveform();
                        let mut far = vec![0.0f64; FEED_REC_LEN];
                        embed(&mut far, &wave_a, FEED_SA_OFFSET, 0.3);
                        embed(&mut far, &wave_v, FAR_SV_OFFSET, 0.4);
                        quantize_samples(&far)
                    } else {
                        recheck_recording(&recheck, &config)
                    };
                    feed.answer_recheck(round, &rec, 1_024).expect("answer");
                    verdicts.push(
                        feed.await_recheck_verdict(round, WAIT)
                            .expect("round verdict"),
                    );
                }
                // The server ended standing service: the connection
                // closes instead of opening round ROUNDS+1.
                let closed = feed.await_recheck(WAIT);
                assert!(
                    matches!(closed, Err(PianoError::Transport(_))),
                    "standing end surfaces as a transport close, got {closed:?}"
                );
                (original, verdicts)
            })
        })
        .collect();

    assert_eq!(server.wait_for_reports(FEEDS), FEEDS);
    let hub = hub_recording(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), FEEDS);

    // Drive the re-challenge rounds.
    assert_eq!(
        server.wait_for_standing(FEEDS, WAIT).expect("feeds park"),
        FEEDS
    );
    for _ in 0..ROUNDS {
        server.begin_recheck_round();
        let ready = server
            .wait_for_recheck_reports(FEEDS, WAIT)
            .expect("round reports");
        assert_eq!(ready, FEEDS, "every standing feed answers each round");
        let ids = server.recheck_session_ids();
        assert_eq!(ids.len(), FEEDS);
        let hub = server.with_service(|s| hub_recording_for(s, &ids));
        assert_eq!(server.recheck_scan_and_decide(&hub, 16_384), FEEDS);
    }
    // Per-round sessions must not accumulate: every round's sessions are
    // closed once their verdicts are delivered.
    server.end_standing();

    let results: Vec<(AuthDecision, Vec<AuthDecision>)> = client_threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    for t in server_threads {
        assert!(
            t.join().expect("server thread").is_some(),
            "standing connections conclude as Done"
        );
    }

    for (i, (original, verdicts)) in results.iter().enumerate() {
        assert_eq!(verdicts.len(), ROUNDS as usize);
        let AuthDecision::Granted { distance_m } = original else {
            panic!("feed {i} was granted")
        };
        assert!(
            (distance_m - 0.50).abs() < 0.1,
            "feed {i}: original epoch ranged {distance_m} m, expected ≈0.50"
        );
        // Round 1 replays the granted geometry for everyone.
        let AuthDecision::Granted { distance_m: r1 } = &verdicts[0] else {
            panic!("feed {i} round 1 grants, got {:?}", verdicts[0])
        };
        assert!(
            (r1 - 0.50).abs() < 0.1,
            "feed {i}: round 1 ranged {r1} m, expected ≈0.50"
        );
        if i == 0 {
            assert!(
                matches!(verdicts[1], AuthDecision::Denied { .. }),
                "feed 0 answered round {ROUNDS} from ~1.56 m, got {:?}",
                verdicts[1]
            );
        } else {
            let AuthDecision::Granted { distance_m: r2 } = &verdicts[1] else {
                panic!("feed {i} round 2 grants, got {:?}", verdicts[1])
            };
            assert!(
                (r2 - 0.50).abs() < 0.1,
                "feed {i}: round 2 ranged {r2} m, expected ≈0.50"
            );
        }
    }

    // Standing service left no per-round session behind.
    assert_eq!(
        server.with_service(|s| s.session_count()) - FEEDS,
        0,
        "re-check sessions are closed after their rounds"
    );
}

/// The readiness reactor serves the same standing protocol: granted
/// connections park in its `Standing` phase (re-challenge deadlines on
/// the timer wheel, no thread per feed), answer the same rounds, and
/// close cleanly on `end_standing`.
#[test]
fn reactor_standing_feeds_survive_rechallenge_rounds() {
    let server = ReactorServer::new(
        ShardedAuthService::new(PianoConfig::with_threshold(1.0), 1),
        ChaCha8Rng::seed_from_u64(SEED),
        ServerConfig {
            standing: true,
            ..ServerConfig::default()
        },
    );
    let reactor = server.start();
    let (connector, mut listener) = memory_hub();
    let config = server
        .service()
        .with_default(|s| s.config().action.clone())
        .expect("shard 0 exists");

    let mut handles = Vec::with_capacity(FEEDS);
    for _ in 0..FEEDS {
        let transport = connector.connect().expect("hub open");
        let conn = listener.accept_conn().expect("accept");
        server.register(conn);
        handles.push(FeedHandle::connect(transport, &[WireCodec::Raw]).expect("handshake"));
    }
    let client_threads: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(i, mut feed)| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).expect("stream");
                feed.finish().expect("stream end");
                let original = feed.await_decision().expect("verdict");
                assert!(original.is_granted(), "feed {i} grants in the main epoch");

                let mut verdicts = Vec::new();
                for round in 1..=ROUNDS {
                    let recheck = feed.await_recheck(WAIT).expect("re-challenge");
                    let Message::Recheck { round: r, .. } = &recheck else {
                        panic!("await_recheck returned {recheck:?}");
                    };
                    assert_eq!(*r, round, "rounds arrive in order");
                    let rec = recheck_recording(&recheck, &config);
                    feed.answer_recheck(round, &rec, 1_024).expect("answer");
                    verdicts.push(
                        feed.await_recheck_verdict(round, WAIT)
                            .expect("round verdict"),
                    );
                }
                let closed = feed.await_recheck(WAIT);
                assert!(
                    matches!(closed, Err(PianoError::Transport(_))),
                    "standing end surfaces as a transport close, got {closed:?}"
                );
                verdicts
            })
        })
        .collect();

    assert_eq!(server.wait_for_reports(FEEDS), FEEDS);
    let hub = hub_recording_reactor(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), FEEDS);

    assert_eq!(
        server.wait_for_standing(FEEDS, WAIT).expect("feeds park"),
        FEEDS
    );
    for _ in 0..ROUNDS {
        server.begin_recheck_round();
        let ready = server
            .wait_for_recheck_reports(FEEDS, WAIT)
            .expect("round reports");
        assert_eq!(ready, FEEDS, "every standing feed answers each round");
        let ids = server.recheck_session_ids();
        assert_eq!(ids.len(), FEEDS);
        let hub = hub_recording_sharded(server.service(), &ids);
        assert_eq!(server.recheck_scan_and_decide(&hub, 16_384), FEEDS);
    }
    server.end_standing();

    for t in client_threads {
        let verdicts = t.join().expect("client thread");
        assert_eq!(verdicts.len(), ROUNDS as usize);
        for (r, verdict) in verdicts.iter().enumerate() {
            let AuthDecision::Granted { distance_m } = verdict else {
                panic!("round {} grants, got {verdict:?}", r + 1)
            };
            assert!(
                (distance_m - 0.50).abs() < 0.1,
                "round {} ranged {distance_m} m, expected ≈0.50",
                r + 1
            );
        }
    }

    // A clean standing teardown is not a fault: no drop was counted,
    // and no per-round session survived its round.
    assert_eq!(server.stats().connections_dropped, 0);
    assert_eq!(
        server
            .service()
            .with_default(|s| s.session_count())
            .expect("shard 0 exists")
            - FEEDS,
        0,
        "re-check sessions are closed after their rounds"
    );
    server.shutdown();
    reactor.join().expect("reactor thread");
}
