//! Allocation discipline of the zero-copy ingest path: a counting global
//! allocator proves that once the pool and scan scratch are warm, pushing
//! an audio frame through decode → feed → detector touches the heap
//! **zero** times, and that a 200-feed fleet sharing one [`FramePool`]
//! keeps a bounded resident slab set instead of scaling allocations with
//! traffic.
//!
//! Everything runs inside a single `#[test]` because the allocator
//! counters are process-global: concurrent tests would pollute the
//! steady-state delta.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::config::ActionConfig;
use piano::core::detect::{Detector, SignalSignature};
use piano::core::pool::{FramePool, MAX_FREE_SLABS};
use piano::core::signal::ReferenceSignal;
use piano::core::stream::StreamingDetector;
use piano::core::wire::{FrameReader, IngestFeed, Message};

/// Passes every request through to the system allocator, counting calls
/// and requested bytes. `dealloc` is deliberately uncounted: the test
/// asserts the *allocation* side is silent.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

const SESSION: u64 = 0xA11C;
const CHUNK: usize = 1_024;
/// Frames fed before measuring: enough to warm the pool, the FFT plan
/// cache, the detector's ring/capture/scratch capacities, and to cross
/// the ring's first compaction (`signal_len + fine_radius + slack`).
const WARMUP_FRAMES: usize = 96;
const MEASURED_FRAMES: usize = 64;

/// Pre-encodes the wire frames of a silent stream: raw chunks and
/// i16-codec batches alternating, with contiguous sequence numbers.
/// Silence keeps the detector quiescent (no captures refresh, no early
/// fine scans), which is exactly the steady-state regime of a standing
/// feed between challenges.
fn encode_frames(n_frames: usize) -> Vec<Vec<u8>> {
    let mut frames = Vec::with_capacity(n_frames);
    let mut seq = 0u32;
    for i in 0..n_frames {
        let msg = if i % 2 == 0 {
            let m = Message::AudioChunk {
                session: SESSION,
                seq,
                samples: vec![0.0; CHUNK].into(),
            };
            seq += 1;
            m
        } else {
            let m = Message::AudioBatchI16 {
                session: SESSION,
                start_seq: seq,
                chunks: vec![vec![0i16; CHUNK / 2]; 2].into(),
            };
            seq += 2;
            m
        };
        frames.push(msg.encode_framed());
    }
    frames
}

#[test]
fn pooled_ingest_is_allocation_free_and_the_pool_stays_bounded() {
    // ---- Phase A: zero heap allocations per steady-state frame --------
    let cfg = ActionConfig::default();
    let detector = Arc::new(Detector::new(&cfg));
    let mut rng = ChaCha8Rng::seed_from_u64(0xD15C);
    let sig = SignalSignature::of(&ReferenceSignal::random(&cfg, &mut rng), &cfg);
    let mut det = StreamingDetector::new(Arc::clone(&detector), vec![sig]);

    let pool = FramePool::new();
    let mut reader = FrameReader::with_pool(pool.clone());
    let mut feed = IngestFeed::new(SESSION, 1 << 16);
    feed.set_pool(pool.clone());

    let frames = encode_frames(WARMUP_FRAMES + MEASURED_FRAMES);

    let mut ingest = |frame: &[u8], reader: &mut FrameReader, feed: &mut IngestFeed| {
        reader.push(frame);
        while let Some(msg) = reader.next_frame().expect("clean stream") {
            feed.accept(&msg).expect("in-order audio");
        }
        feed.drain_pending(usize::MAX, |run| {
            let _ = det.push(run);
        });
        assert!(feed.poll_reply().is_none(), "silent stream stays in credit");
    };

    for frame in &frames[..WARMUP_FRAMES] {
        ingest(frame, &mut reader, &mut feed);
    }

    let calls_before = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes_before = ALLOC_BYTES.load(Ordering::Relaxed);
    for frame in &frames[WARMUP_FRAMES..] {
        ingest(frame, &mut reader, &mut feed);
    }
    let calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls_before;
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes_before;
    assert_eq!(
        calls, 0,
        "steady-state pooled ingest must not allocate: {calls} allocations \
         ({bytes} bytes) over {MEASURED_FRAMES} frames"
    );

    // The warm pool no longer grows either: frames in flight reuse the
    // same recycled slabs.
    let warm = pool.stats();
    assert!(
        warm.slabs_recycled > 0,
        "decoded frames recycle their slabs: {warm:?}"
    );

    // ---- Phase B: bounded slab set under a 200-feed fleet -------------
    let fleet_pool = FramePool::new();
    let fleet_frames = encode_frames(8);
    for _wave in 0..4 {
        let mut conns: Vec<(FrameReader, IngestFeed)> = (0..200)
            .map(|_| {
                let mut feed = IngestFeed::new(SESSION, 1 << 16);
                feed.set_pool(fleet_pool.clone());
                (FrameReader::with_pool(fleet_pool.clone()), feed)
            })
            .collect();
        // Interleave like a real fleet: every connection buffers a frame
        // (peak slab demand), then every connection drains.
        let mut sink = 0usize;
        for frame in &fleet_frames {
            for (reader, feed) in &mut conns {
                reader.push(frame);
                while let Some(msg) = reader.next_frame().expect("clean stream") {
                    feed.accept(&msg).expect("in-order audio");
                }
            }
            for (_, feed) in &mut conns {
                feed.drain_pending(usize::MAX, |run| sink += run.len());
            }
        }
        assert!(sink > 0, "the fleet streamed audio");
        // Dropping the fleet returns every slab: to a free list while
        // one has room, to the system past that.
    }
    let stats = fleet_pool.stats();
    // Every slab is either idle on a bounded free list or was discarded;
    // nothing leaks and nothing resident exceeds the caps.
    assert_eq!(
        stats.slabs_created - stats.slabs_discarded,
        stats.slabs_free as u64,
        "all fleet slabs accounted for: {stats:?}"
    );
    assert!(
        stats.slabs_free <= 4 * MAX_FREE_SLABS,
        "free lists stay bounded: {stats:?}"
    );
    assert!(
        stats.slabs_recycled >= stats.slabs_created,
        "a warmed fleet reuses more than it allocates: {stats:?}"
    );
}
