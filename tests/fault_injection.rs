//! Chaos conformance for the transport layer: seeded faults must never
//! change *what* the fleet decides, only *how* the bytes got there.
//!
//! * **Survivable schedules** (short reads/writes, latency, mid-stream
//!   disconnects with resume enabled) yield decisions byte-identical to
//!   a fault-free run of the same seeded fleet — the resume protocol
//!   replays exactly the samples the server never accepted.
//! * **Unsurvivable schedules** (a stalled feed under a server with no
//!   resume window) drop only the afflicted feed, within its idle
//!   deadline, under the right [`DropCause`]; healthy feeds' decisions
//!   still match the clean baseline.
//! * **Overload shedding** turns excess `Hello`s into typed
//!   [`PianoError::Overloaded`] retry hints, and a retrying client is
//!   admitted once the backlog drains.
//! * The `_timeout` API variants return typed [`PianoError::Timeout`]
//!   instead of blocking forever.
//! * A proptest sweeps [`FaultPlan::chaos`] seeds: segmentation and
//!   latency chaos alone (no cuts) never changes decisions.

use std::io;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::error::PianoError;
use piano::net::fault::{FaultPlan, FaultyTransport};
use piano::net::fixtures::{feed_recording, hub_recording};
use piano::net::transport::{memory_hub, Listener, MemoryListener, MemoryStream};
use piano::net::{FeedHandle, ResilientFeed, RetryPolicy, ServerConfig, ServerLoop};
use piano::prelude::*;

const SEED: u64 = 0xFA17;

fn server_with(tweak: impl FnOnce(&mut ServerConfig)) -> ServerLoop {
    let mut cfg = ServerConfig::default();
    tweak(&mut cfg);
    ServerLoop::new(
        AuthService::new(PianoConfig::with_threshold(1.0)),
        ChaCha8Rng::seed_from_u64(SEED),
        cfg,
    )
}

/// Accepts connections until the hub closes, serving each on its own
/// thread — resumed connections arrive at unpredictable times, so the
/// fixed-count accept pattern does not fit chaos runs.
fn spawn_accept_loop(server: &ServerLoop, mut listener: MemoryListener) {
    let server = server.clone();
    std::thread::spawn(move || {
        while let Ok(conn) = listener.accept_conn() {
            let s = server.clone();
            std::thread::spawn(move || {
                let _ = s.serve(conn);
            });
        }
    });
}

/// The fault-free fleet: `feeds` clients over clean in-memory transports
/// against a server seeded exactly like the chaos runs. Decisions in
/// handshake order — the baseline every chaos schedule must reproduce.
fn clean_decisions(feeds: usize) -> Vec<AuthDecision> {
    let server = server_with(|_| {});
    let (connector, mut listener) = memory_hub();
    let config = server.with_service(|s| s.config().action.clone());
    let mut handles = Vec::with_capacity(feeds);
    for _ in 0..feeds {
        let transport = connector.connect().expect("hub open");
        let conn = listener.accept_conn().expect("accept");
        let server_clone = server.clone();
        std::thread::spawn(move || server_clone.serve(conn));
        handles.push(FeedHandle::connect(transport, &[WireCodec::I16Delta]).expect("handshake"));
    }
    let clients: Vec<_> = handles
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).expect("stream");
                feed.finish().expect("stream end");
                feed.await_decision().expect("verdict")
            })
        })
        .collect();
    assert_eq!(server.wait_for_reports(feeds), feeds);
    let hub = hub_recording(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), feeds);
    clients.into_iter().map(|t| t.join().unwrap()).collect()
}

#[test]
fn survivable_faults_yield_byte_identical_decisions() {
    const FEEDS: usize = 4;
    let baseline = clean_decisions(FEEDS);

    let server = server_with(|cfg| {
        cfg.resume_window = Duration::from_secs(10);
    });
    let (connector, listener) = memory_hub();
    spawn_accept_loop(&server, listener);
    let config = server.with_service(|s| s.config().action.clone());

    // Sequential handshakes on fault-wrapped transports (no plan cuts
    // the handshake itself, so session randomness binds to feed order
    // exactly as in the clean run), then script per-feed cuts relative
    // to the bytes each link has actually seen.
    let mut fleet = Vec::with_capacity(FEEDS);
    for i in 0..FEEDS {
        let plan = match i {
            // Feed 0 runs clean; feed 1 loses its write direction in the
            // middle of an audio batch; feed 2 loses its read direction
            // just past the handshake (mid-reply or mid-verdict); feed 3
            // suffers seeded segmentation + latency chaos, no cuts.
            0 => FaultPlan::clean(SEED),
            1 => FaultPlan::clean(SEED + 1).with_write_disconnect(4_000),
            2 => FaultPlan::clean(SEED + 2),
            _ => FaultPlan::chaos(SEED + 3),
        };
        let t = FaultyTransport::new(connector.connect().expect("hub open"), plan);
        let mut handle =
            FeedHandle::connect(t, &[WireCodec::I16Delta]).expect("faulty handshake survives");
        if i == 2 {
            let seen = handle.transport_mut().read_bytes();
            handle.transport_mut().set_read_disconnect(seen + 10);
        }
        let connector = connector.clone();
        let mut redials = 0u64;
        let dial = move || -> io::Result<FaultyTransport<MemoryStream>> {
            redials += 1;
            Ok(FaultyTransport::new(
                connector.connect()?,
                FaultPlan::clean(SEED ^ redials),
            ))
        };
        fleet.push(ResilientFeed::adopt(
            handle,
            dial,
            RetryPolicy {
                jitter_seed: SEED + i as u64,
                ..RetryPolicy::default()
            },
        ));
    }

    let clients: Vec<_> = fleet
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.handle().challenge(), &config);
                feed.send_recording(&rec, 1_024, 4)
                    .expect("stream survives faults");
                let decision = feed
                    .finish_and_await(Duration::from_secs(60))
                    .expect("verdict survives faults");
                (decision, feed.stats())
            })
        })
        .collect();

    assert_eq!(
        server
            .wait_for_reports_timeout(FEEDS, Duration::from_secs(60))
            .expect("every feed reports despite faults"),
        FEEDS
    );
    let hub = hub_recording(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), FEEDS);

    let results: Vec<(AuthDecision, piano::net::FeedStats)> =
        clients.into_iter().map(|t| t.join().unwrap()).collect();
    let decisions: Vec<AuthDecision> = results.iter().map(|(d, _)| d.clone()).collect();
    assert_eq!(
        decisions, baseline,
        "faulted fleet diverged from the clean run"
    );

    let client_resumes: u64 = results.iter().map(|(_, s)| s.resumes).sum();
    assert!(
        client_resumes >= 2,
        "both cut feeds resumed: {client_resumes}"
    );
    let stats = server.stats();
    assert!(
        stats.resumes >= 2,
        "server acked the resumes: {}",
        stats.resumes
    );
    assert!(
        stats.connections_suspended >= 1,
        "a mid-stream loss suspended: {}",
        stats.connections_suspended
    );
    assert_eq!(
        stats.drops.total(),
        stats.connections_dropped,
        "per-cause drops account for every drop"
    );
    assert_eq!(stats.sessions_decided, FEEDS as u64);
}

#[test]
fn stalled_feed_times_out_alone_within_the_deadline() {
    const GOOD: usize = 3;
    let baseline = clean_decisions(GOOD);

    let server = server_with(|cfg| {
        cfg.idle_timeout = Duration::from_millis(200);
    });
    let (connector, mut listener) = memory_hub();
    let config = server.with_service(|s| s.config().action.clone());

    // Healthy feeds handshake first (their session randomness matches
    // the 3-feed baseline); the staller connects last.
    let mut handles = Vec::new();
    for _ in 0..GOOD + 1 {
        let transport = connector.connect().unwrap();
        let conn = listener.accept_conn().unwrap();
        let server_clone = server.clone();
        std::thread::spawn(move || server_clone.serve(conn));
        handles.push(FeedHandle::connect(transport, &[WireCodec::I16Delta]).unwrap());
    }
    let mut stalled = handles.pop().unwrap();
    stalled.send_batch(&[vec![0.25; 512]]).unwrap();
    // ... and then nothing: the connection stays open but silent.

    let clients: Vec<_> = handles
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).unwrap();
                feed.finish().unwrap();
                feed.await_decision().unwrap()
            })
        })
        .collect();

    let waited = Instant::now();
    let reported = server
        .wait_for_reports_timeout(GOOD + 1, Duration::from_secs(30))
        .expect("the stalled feed's drop unblocks the wait");
    assert_eq!(reported, GOOD, "only healthy feeds report");
    assert!(
        waited.elapsed() < Duration::from_secs(10),
        "the idle watchdog fired promptly, not at the outer deadline"
    );

    let hub = hub_recording(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), GOOD);
    let decisions: Vec<AuthDecision> = clients.into_iter().map(|t| t.join().unwrap()).collect();
    assert_eq!(decisions, baseline, "healthy feeds unaffected by the stall");

    let stats = server.stats();
    assert_eq!(stats.connections_dropped, 1, "only the staller dropped");
    assert_eq!(stats.drops.get(DropCause::Timeout), 1, "under Timeout");
    drop(stalled);
}

#[test]
fn overload_shedding_is_typed_and_recoverable() {
    const FEEDS: usize = 4;
    let server = server_with(|cfg| {
        cfg.max_active_feeds = 2;
        cfg.retry_after_ms = 10;
    });
    let (connector, listener) = memory_hub();
    spawn_accept_loop(&server, listener);
    let config = server.with_service(|s| s.config().action.clone());

    // Fill both admission slots.
    let first = FeedHandle::connect(connector.connect().unwrap(), &[WireCodec::I16Delta]).unwrap();
    let second = FeedHandle::connect(connector.connect().unwrap(), &[WireCodec::I16Delta]).unwrap();

    // The third Hello is shed with a typed, hint-carrying error.
    match FeedHandle::connect(connector.connect().unwrap(), &[WireCodec::I16Delta]) {
        Err(PianoError::Overloaded { retry_after_ms }) => assert_eq!(retry_after_ms, 10),
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Stream the admitted pair; retrying clients are admitted as slots
    // free up at report time.
    let mut clients: Vec<_> = [first, second]
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).unwrap();
                feed.finish().unwrap();
                feed.await_decision().unwrap()
            })
        })
        .collect();
    for i in 0..FEEDS - 2 {
        let connector = connector.clone();
        let config = config.clone();
        clients.push(std::thread::spawn(move || {
            let dial = move || connector.connect();
            let mut feed = ResilientFeed::connect(
                dial,
                &[WireCodec::I16Delta],
                RetryPolicy {
                    max_attempts: 50,
                    jitter_seed: SEED + i as u64,
                    ..RetryPolicy::default()
                },
            )
            .expect("admitted once the backlog drains");
            assert!(feed.stats().sheds_seen > 0 || feed.stats().retries == 0);
            let rec = feed_recording(feed.handle().challenge(), &config);
            feed.send_recording(&rec, 1_024, 4).unwrap();
            feed.finish_and_await(Duration::from_secs(60)).unwrap()
        }));
    }

    assert_eq!(
        server
            .wait_for_reports_timeout(FEEDS, Duration::from_secs(60))
            .expect("all four admitted and reported"),
        FEEDS
    );
    let hub = hub_recording(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), FEEDS);
    for c in clients {
        assert!(c.join().unwrap().is_granted(), "every feed granted");
    }
    let stats = server.stats();
    assert!(stats.connections_shed >= 1, "the probe was shed");
    assert_eq!(stats.connections_dropped, 0, "shedding is not dropping");
}

#[test]
fn timeout_variants_return_typed_errors() {
    let server = server_with(|_| {});
    match server.wait_for_reports_timeout(1, Duration::from_millis(50)) {
        Err(PianoError::Timeout(_)) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }

    let (connector, mut listener) = memory_hub();
    let transport = connector.connect().unwrap();
    let conn = listener.accept_conn().unwrap();
    let server_clone = server.clone();
    let server_thread = std::thread::spawn(move || server_clone.serve(conn));
    let mut feed = FeedHandle::connect(transport, &[WireCodec::Raw]).unwrap();
    match feed.await_decision_timeout(Duration::from_millis(80)) {
        Err(PianoError::Timeout(_)) => {}
        other => panic!("expected Timeout, got {other:?}"),
    }
    // Disconnect so the server thread exits (a Disconnect drop).
    drop(feed);
    assert!(server_thread.join().unwrap().is_none());
    assert_eq!(server.stats().drops.get(DropCause::Disconnect), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Segmentation and latency chaos alone — arbitrary short reads and
    // writes on both directions, per-op delays, no cuts — must never
    // change a decision: framing reassembles any byte-stream slicing.
    #[test]
    fn chaos_segmentation_never_changes_decisions(seed in proptest::prelude::any::<u64>()) {
        const FEEDS: usize = 2;
        let baseline = clean_decisions(FEEDS);
        let server = server_with(|_| {});
        let (connector, mut listener) = memory_hub();
        let config = server.with_service(|s| s.config().action.clone());
        let mut handles = Vec::with_capacity(FEEDS);
        for i in 0..FEEDS {
            let t = FaultyTransport::new(
                connector.connect().expect("hub open"),
                FaultPlan::chaos(seed ^ i as u64),
            );
            let conn = listener.accept_conn().expect("accept");
            let server_clone = server.clone();
            std::thread::spawn(move || server_clone.serve(conn));
            handles.push(
                FeedHandle::connect(t, &[WireCodec::I16Delta]).expect("chaos handshake"),
            );
        }
        let clients: Vec<_> = handles
            .into_iter()
            .map(|mut feed| {
                let config = config.clone();
                std::thread::spawn(move || {
                    let rec = feed_recording(feed.challenge(), &config);
                    feed.send_recording(&rec, 1_024, 4).expect("stream");
                    feed.finish().expect("stream end");
                    feed.await_decision().expect("verdict")
                })
            })
            .collect();
        prop_assert_eq!(
            server
                .wait_for_reports_timeout(FEEDS, Duration::from_secs(60))
                .expect("reports"),
            FEEDS
        );
        let hub = hub_recording(&server);
        prop_assert_eq!(server.scan_and_decide(&hub, 16_384), FEEDS);
        let decisions: Vec<AuthDecision> =
            clients.into_iter().map(|t| t.join().unwrap()).collect();
        prop_assert_eq!(decisions, baseline);
    }
}
