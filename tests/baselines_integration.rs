//! Integration tests of the Fig. 2b baselines against ACTION through the
//! facade API: the ordering claims of the paper must hold end to end.

use piano::baselines::echo::EchoCalibration;
use piano::baselines::{run_action_cc, run_echo_secure};
use piano::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn setup(
    d: f64,
    seed: u64,
) -> (
    AcousticField,
    BluetoothLink,
    PairingRegistry,
    Device,
    Device,
    ChaCha8Rng,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let field = AcousticField::new(Environment::office(), seed ^ 0xB15E);
    let link = BluetoothLink::new();
    let mut registry = PairingRegistry::new();
    let a = Device::phone(1, Position::ORIGIN, seed + 1);
    let v = Device::phone(2, Position::new(d, 0.0, 0.0), seed + 2);
    registry.pair(a.id, v.id, &mut rng);
    (field, link, registry, a, v, rng)
}

#[test]
fn fig2b_ordering_holds_end_to_end() {
    let config = ActionConfig::default();
    let trials = 4;

    // ACTION.
    let mut action_err = 0.0;
    for t in 0..trials {
        let (mut field, mut link, reg, a, v, mut rng) = setup(1.0, 1_000 + t);
        let outcome =
            run_action(&config, &mut field, &mut link, &reg, &a, &v, 0.0, &mut rng).unwrap();
        action_err += outcome
            .estimate
            .distance_m()
            .map(|d| (d - 1.0).abs())
            .unwrap_or(2.5);
    }
    action_err /= trials as f64;

    // ACTION-CC.
    let mut cc_err = 0.0;
    for t in 0..trials {
        let (mut field, mut link, reg, a, v, mut rng) = setup(1.0, 2_000 + t);
        let est =
            run_action_cc(&config, &mut field, &mut link, &reg, &a, &v, 0.0, &mut rng).unwrap();
        cc_err += est.distance_m().map(|d| (d - 1.0).abs()).unwrap_or(5.0);
    }
    cc_err /= trials as f64;

    // Echo-Secure (calibrated honestly at contact distance).
    let (mut field, mut link, reg, a, v, mut rng) = setup(0.05, 3_000);
    let cal = EchoCalibration::calibrate(&config, &mut field, &mut link, &reg, &a, &v, 6, &mut rng)
        .unwrap();
    let mut echo_err = 0.0;
    for t in 0..trials {
        let (mut field, mut link, reg, a, v, mut rng) = setup(1.0, 4_000 + t);
        let est = run_echo_secure(
            &config, &mut field, &mut link, &reg, &a, &v, &cal, 0.0, &mut rng,
        )
        .unwrap();
        echo_err += est.distance_m().map(|d| (d - 1.0).abs()).unwrap_or(5.0);
    }
    echo_err /= trials as f64;

    assert!(action_err < 0.3, "ACTION MAE {action_err} m");
    assert!(
        cc_err > 5.0 * action_err,
        "ACTION-CC should be ≫ ACTION: {cc_err} vs {action_err}"
    );
    assert!(
        echo_err > 5.0 * action_err,
        "Echo-Secure should be ≫ ACTION: {echo_err} vs {action_err}"
    );
}

#[test]
fn ambience_comparator_is_spoofable_but_action_is_not() {
    use piano::baselines::ambience::ambience_similarity;
    use piano_acoustics::field::Emission;

    // Attacker plays identical loud material near two far-apart devices.
    let mut field = AcousticField::new(Environment::anechoic(), 5);
    let a = Device::ideal(1, Position::ORIGIN);
    let b = Device::ideal(2, Position::new(8.0, 0.0, 0.0));
    let wave = piano::dsp::tone::multi_tone(
        &[piano::dsp::tone::ToneSpec::new(900.0, 5_000.0)],
        44_100.0,
        44_100,
    );
    for x in [0.4, 7.6] {
        field.emit(Emission {
            waveform: SpeakerModel::ideal().radiate(&wave, 44_100.0),
            start_world_s: 0.0,
            sample_interval_s: 1.0 / 44_100.0,
            position: Position::new(x, 0.0, 0.0),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let score = ambience_similarity(&mut field, &a, &b, 0.1, 0.5, &mut rng);
    assert!(
        score.similarity > 0.8,
        "ambience method fooled into proximity: {}",
        score.similarity
    );
    // ACTION at the same 8 m geometry refuses outright (signal absent).
    let (mut field, mut link, reg, a2, v2, mut rng2) = setup(8.0, 777);
    let outcome = run_action(
        &ActionConfig::default(),
        &mut field,
        &mut link,
        &reg,
        &a2,
        &v2,
        0.0,
        &mut rng2,
    )
    .unwrap();
    assert_eq!(outcome.estimate, DistanceEstimate::SignalAbsent);
}
