//! Early-decision calibration: quantifies how often a *provisional*
//! mid-stream detection disagrees with the exact end-of-stream result
//! under environment-style noise, and pins the documented bound.
//!
//! The streaming detector's provisional gate is `margin · ε·R_S` (margin
//! 1 is the bare presence threshold). The contract documented on
//! [`AuthSession::enable_early_decision_with_confidence`] is:
//!
//! * at the default margin, the provisional-vs-final disagreement rate
//!   stays **≤ 10 %** across the noise sweep below (in practice it is far
//!   lower — the assert is the regression floor);
//! * raising the margin never *increases* disagreement and never makes a
//!   provisional detection fire *earlier* — confidence is traded for
//!   latency monotonically.

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::acoustics::noise::NoiseProfile;
use piano::core::config::ActionConfig;
use piano::core::detect::{Detector, SignalSignature};
use piano::core::signal::ReferenceSignal;
use piano::core::stream::{AuthSession, SessionEvent, StreamEvent, StreamingDetector};

/// One calibration run: stream `rec` at `margin`, returning the first
/// provisional detection (with its firing position) and the exact result.
fn calibrate_run(
    detector: &Arc<Detector>,
    sig: &SignalSignature,
    rec: &[f64],
    margin: f64,
) -> (
    Option<(piano::core::detect::Detection, usize)>,
    piano::core::detect::Detection,
) {
    let mut s = StreamingDetector::new(Arc::clone(detector), vec![sig.clone()]);
    s.set_early_margin(margin);
    let mut early = None;
    for chunk in rec.chunks(1024) {
        for ev in s.push(chunk) {
            let StreamEvent::EarlyDetection {
                detection,
                samples_consumed,
                ..
            } = ev;
            early.get_or_insert((detection, samples_consumed));
        }
    }
    (early, s.finish().detections[0])
}

#[test]
fn provisional_detections_meet_the_documented_disagreement_bound() {
    let cfg = ActionConfig::default();
    let detector = Arc::new(Detector::new(&cfg));
    let fs = cfg.sample_rate;
    let len = 30_000usize;

    // Environment-style noise: the low band carries the bulk (inaudible
    // to the detector's 25–35 kHz candidates), the broadband tail is what
    // actually perturbs Algorithm 2. Swept from silence to a tail far
    // above the office profile.
    let noise_levels = [0.0_f64, 120.0, 480.0];
    let seeds = 0u64..16;

    let mut runs = 0usize;
    let mut stats = std::collections::HashMap::new(); // margin bits -> (fired, disagreed)
    let margins = [1.0_f64, 2.0];
    for &noise_rms in &noise_levels {
        let profile = NoiseProfile::new("calibration", 4.0 * noise_rms, noise_rms);
        for seed in seeds.clone() {
            let mut rng = ChaCha8Rng::seed_from_u64(0xCA11 ^ seed);
            let signal = ReferenceSignal::random(&cfg, &mut rng);
            let sig = SignalSignature::of(&signal, &cfg);
            let mut rec = profile.render(len, fs, &mut rng);
            // Borderline gain: strong enough to detect, weak enough that
            // noise genuinely competes with the provisional gate.
            let offset = 2_000 + (seed as usize * 1_627) % (len - cfg.signal_len - 4_000);
            for (i, &v) in signal.waveform().iter().enumerate() {
                rec[offset + i] += 0.14 * v;
            }
            runs += 1;
            let mut prev_fired_at = None;
            for &margin in &margins {
                let (early, exact) = calibrate_run(&detector, &sig, &rec, margin);
                let entry = stats.entry(margin.to_bits()).or_insert((0usize, 0usize));
                if let Some((det, at)) = early {
                    entry.0 += 1;
                    if det != exact {
                        entry.1 += 1;
                    }
                    // Monotone latency: the stricter margin cannot fire
                    // earlier than the default on the same recording.
                    if margin == 1.0 {
                        prev_fired_at = Some(at);
                    } else if let Some(default_at) = prev_fired_at {
                        assert!(at >= default_at, "margin {margin} fired earlier");
                    }
                }
            }
        }
    }

    let (fired_default, disagreed_default) = stats[&1.0f64.to_bits()];
    let (fired_strict, disagreed_strict) = stats[&2.0f64.to_bits()];
    assert!(
        fired_default >= runs / 2,
        "the sweep must actually exercise the early path: \
         {fired_default}/{runs} provisional detections"
    );
    // The documented bound: ≤ 10 % provisional-vs-final disagreement at
    // the default margin across the sweep.
    assert!(
        10 * disagreed_default <= fired_default,
        "disagreement rate {disagreed_default}/{fired_default} exceeds the documented 10 % bound"
    );
    // Confidence is monotone: a stricter gate never disagrees more often
    // and never fires more often.
    assert!(disagreed_strict <= disagreed_default);
    assert!(fired_strict <= fired_default);
}

#[test]
fn session_confidence_knob_trades_latency_for_certainty() {
    // The same voucher recording, two confidence settings: the default
    // reports mid-stream, the (absurdly) strict one must wait for the
    // exact end-of-stream conclusion.
    let cfg = ActionConfig::default();
    let detector = Arc::new(Detector::new(&cfg));
    let run = |confidence: f64| {
        let mut r = ChaCha8Rng::seed_from_u64(99);
        let mut session_a = AuthSession::authenticator_with(Arc::clone(&detector), 1.0, &mut r);
        let challenge = session_a.poll_transmit().unwrap();
        let mut session_v = AuthSession::voucher_with(Arc::clone(&detector));
        session_v.enable_early_decision_with_confidence(confidence);
        session_v.handle_message(challenge).unwrap();
        let wave_a = session_a.playback_waveform().unwrap();
        let wave_v = session_v.playback_waveform().unwrap();
        let mut rec = vec![0.0; 88_200];
        for (i, &v) in wave_a.iter().enumerate() {
            rec[5_000 + i] += 0.4 * v;
        }
        for (i, &v) in wave_v.iter().enumerate() {
            rec[11_000 + i] += 0.4 * v;
        }
        let mut report_at = None;
        for chunk in rec.chunks(1024) {
            if session_v
                .push_audio(chunk)
                .contains(&SessionEvent::ReportReady)
            {
                report_at = Some(session_v.samples_consumed());
                break;
            }
        }
        (report_at, session_v)
    };
    let (default_at, _) = run(1.0);
    let default_at = default_at.expect("default confidence reports mid-stream");
    assert!(default_at < 88_200);

    let (strict_at, mut strict_session) = run(1e9);
    assert_eq!(strict_at, None, "strict confidence must not report early");
    // The exact conclusion still works, and still yields a report.
    let events = strict_session.finish_audio();
    assert!(events.contains(&SessionEvent::ReportReady));
}
