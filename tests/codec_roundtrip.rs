//! Properties of the i16 delta PCM codec: exact round-trip for arbitrary
//! i16 sequences (including worst-case deltas and cap-sized batches),
//! compression never worse than half the raw encoding, and the ≥3.5×
//! saving on a bench-style recording that the ROADMAP promised.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::config::ActionConfig;
use piano::core::signal::ReferenceSignal;
use piano::core::wire::{
    Message, MAX_AUDIO_BATCH_CHUNKS, MAX_AUDIO_BATCH_SAMPLES, MAX_AUDIO_CHUNK_SAMPLES,
};
use piano::net::codec::{encode_audio_batch, quantize, raw_framed_audio_bytes, widen_chunks};
use piano::prelude::WireCodec;

fn roundtrip(chunks: Vec<Vec<i16>>) {
    let msg = Message::AudioBatchI16 {
        session: 0x51,
        start_seq: 7,
        chunks: chunks.into(),
    };
    let decoded = Message::decode(&msg.encode()).expect("well-formed batch");
    assert_eq!(decoded, msg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn arbitrary_i16_batches_roundtrip_exactly(
        chunk_lens in proptest::collection::vec(0usize..1500, 0..10),
        seed in proptest::prelude::any::<u64>(),
    ) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let chunks: Vec<Vec<i16>> = chunk_lens
            .iter()
            .map(|&n| (0..n).map(|_| rng.gen_range(i32::from(i16::MIN)..=i32::from(i16::MAX)) as i16).collect())
            .collect();
        let msg = Message::AudioBatchI16 { session: 1, start_seq: 0, chunks: chunks.into() };
        let bytes = msg.encode();
        prop_assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn truncated_i16_batches_always_error(
        len in 1usize..600,
        cut_frac in 0.0f64..1.0,
        seed in proptest::prelude::any::<u64>(),
    ) {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let chunk: Vec<i16> = (0..len).map(|_| rng.gen_range(-32768i32..=32767) as i16).collect();
        let bytes = Message::AudioBatchI16 { session: 1, start_seq: 0, chunks: vec![chunk].into() }.encode();
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(Message::decode(&bytes[..cut]).is_err(), "cut at {}", cut);
    }

    #[test]
    fn quantized_encoding_roundtrips_through_f64(
        len in 0usize..800,
        scale in 1.0f64..60_000.0,
        seed in proptest::prelude::any::<u64>(),
    ) {
        // f64 in → quantize → wire → widen: the result is exactly the
        // quantized input, for any amplitude (clipping included).
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let samples: Vec<f64> = (0..len).map(|_| (rng.gen::<f64>() - 0.5) * scale).collect();
        let msg = encode_audio_batch(WireCodec::I16Delta, 2, 0, std::slice::from_ref(&samples));
        let Message::AudioBatchI16 { chunks, .. } = Message::decode(&msg.encode()).unwrap() else {
            panic!("wrong variant");
        };
        let widened = widen_chunks(&chunks);
        let expected: Vec<f64> = samples.iter().map(|&s| quantize(s) as f64).collect();
        prop_assert_eq!(&widened[0], &expected);
    }
}

#[test]
fn worst_case_delta_sequences_roundtrip_and_stay_compressed() {
    let extremes: Vec<i16> = (0..4096)
        .map(|i| if i % 2 == 0 { i16::MIN } else { i16::MAX })
        .collect();
    let ramp: Vec<i16> = (-2048..2048).map(|i| (i * 16) as i16).collect();
    let steps: Vec<i16> = (0..4096)
        .map(|i| if (i / 7) % 2 == 0 { i16::MIN } else { i16::MAX })
        .collect();
    for chunk in [extremes, ramp, steps] {
        let n = chunk.len();
        let msg = Message::AudioBatchI16 {
            session: 3,
            start_seq: 0,
            chunks: vec![chunk].into(),
        };
        let encoded = msg.encode();
        assert_eq!(Message::decode(&encoded).unwrap(), msg);
        // Even pathological inputs stay under half the raw f64 bytes.
        assert!(
            encoded.len() < 4 * n,
            "worst case blew up: {} bytes for {n} samples",
            encoded.len()
        );
    }
}

#[test]
fn empty_and_cap_sized_batches_roundtrip() {
    roundtrip(vec![]);
    roundtrip(vec![vec![]]);
    roundtrip(vec![vec![]; MAX_AUDIO_BATCH_CHUNKS]);
    // A full-cap batch: 256 chunks × 1024 samples = MAX_AUDIO_BATCH_SAMPLES.
    let per_chunk = MAX_AUDIO_BATCH_SAMPLES / MAX_AUDIO_BATCH_CHUNKS;
    let chunk: Vec<i16> = (0..per_chunk)
        .map(|i| (i as i16).wrapping_mul(517))
        .collect();
    roundtrip(vec![chunk; MAX_AUDIO_BATCH_CHUNKS]);
    // A single maximal chunk.
    let big: Vec<i16> = (0..MAX_AUDIO_CHUNK_SAMPLES)
        .map(|i| ((i * i) % 30_011) as i16)
        .collect();
    roundtrip(vec![big]);
}

/// Builds the fleet feed recording the bench and example stream: two
/// reference signals embedded in a 16 384-sample window.
fn bench_style_recording() -> Vec<f64> {
    let cfg = ActionConfig::default();
    let mut rng = ChaCha8Rng::seed_from_u64(0xF1EE7);
    let sa = ReferenceSignal::random(&cfg, &mut rng);
    let sv = ReferenceSignal::random(&cfg, &mut rng);
    let mut rec = vec![0.0f64; 16_384];
    for (i, &v) in sa.waveform().iter().enumerate() {
        rec[2_000 + i] += 0.3 * v;
    }
    for (i, &v) in sv.waveform().iter().enumerate() {
        rec[7_871 + i] += 0.4 * v;
    }
    rec
}

#[test]
fn codec_shrinks_the_bench_recording_at_least_3_5x() {
    let rec = bench_style_recording();
    let chunks: Vec<Vec<f64>> = rec.chunks(1_024).map(<[f64]>::to_vec).collect();
    let mut wire = 0u64;
    let mut raw = 0u64;
    for (b, batch) in chunks.chunks(4).enumerate() {
        let msg = encode_audio_batch(WireCodec::I16Delta, 1, (b * 4) as u32, batch);
        wire += msg.encode_framed().len() as u64;
        raw += raw_framed_audio_bytes(&msg);
    }
    let ratio = raw as f64 / wire as f64;
    assert!(
        ratio >= 3.5,
        "codec saves only {ratio:.2}x on the bench recording ({wire} of {raw} bytes)"
    );
}
