//! End-to-end transport conformance: the byte-stream layer must move
//! audio without changing results.
//!
//! * Framed messages survive any segmentation of a real transport's byte
//!   stream (threads, partial reads — not just the sans-IO reader).
//! * **Server-loop conformance:** decisions for 100 concurrent feeds
//!   ingested over the in-memory transport — with the codec off *and*
//!   with i16-delta — are identical to feeding the same quantized
//!   recordings into an `AuthService` directly.
//! * A connection that loses framing, or ignores `Busy` past the hard
//!   limit, is dropped alone: its poison cause is surfaced and every
//!   other feed still decides.
//! * A loopback-TCP smoke runs the same stack over real sockets,
//!   auto-skipping where binding 127.0.0.1 fails.

use std::sync::Arc;

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::wire::{FrameReader, Message, WireCodec};
use piano::net::fixtures::{feed_recording, hub_recording, hub_recording_for};
use piano::net::transport::{memory_hub, memory_pair, tcp_loopback, Listener, Transport};
use piano::net::{FeedHandle, ServerConfig, ServerLoop};
use piano::prelude::*;

const SEED: u64 = 0xF1EE7;

fn fresh_server(high_water: usize, drain_chunk: usize) -> ServerLoop {
    ServerLoop::new(
        AuthService::new(PianoConfig::with_threshold(1.0)),
        ChaCha8Rng::seed_from_u64(SEED),
        ServerConfig {
            high_water,
            drain_chunk,
            ..ServerConfig::default()
        },
    )
}

/// Runs `feeds` concurrent clients through a fresh in-memory server with
/// `codec`, returning decisions in handshake order.
fn transport_decisions(feeds: usize, codec: WireCodec) -> Vec<AuthDecision> {
    let server = fresh_server(6_000, 2_048);
    let (connector, mut listener) = memory_hub();
    let config = server.with_service(|s| s.config().action.clone());

    // Handshakes run sequentially so session randomness binds to feed
    // index deterministically; the streaming itself is fully concurrent.
    let mut handles = Vec::with_capacity(feeds);
    let mut server_threads = Vec::with_capacity(feeds);
    for _ in 0..feeds {
        let transport = connector.connect().expect("hub open");
        let server_clone = server.clone();
        let conn = listener.accept_conn().expect("accept");
        server_threads.push(std::thread::spawn(move || server_clone.serve(conn)));
        handles.push(FeedHandle::connect(transport, &[codec]).expect("handshake"));
    }
    let client_threads: Vec<_> = handles
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                assert_eq!(feed.codec(), codec, "server honors the offer");
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).expect("stream");
                feed.finish().expect("stream end");
                feed.await_decision().expect("verdict")
            })
        })
        .collect();

    assert_eq!(server.wait_for_reports(feeds), feeds, "every feed reports");
    let hub = hub_recording(&server);
    let decided = server.scan_and_decide(&hub, 16_384);
    assert_eq!(decided, feeds, "every session decides");

    let decisions: Vec<AuthDecision> = client_threads
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();
    let server_outcomes: Vec<_> = server_threads
        .into_iter()
        .map(|t| t.join().expect("server thread").expect("not dropped"))
        .collect();
    // The verdict the client received is the one the service recorded.
    for ((_, server_decision), client_decision) in server_outcomes.iter().zip(&decisions) {
        assert_eq!(server_decision, client_decision);
    }
    let stats = server.stats();
    assert_eq!(stats.connections, feeds as u64);
    assert_eq!(stats.connections_dropped, 0);
    assert_eq!(stats.sessions_decided, feeds as u64);
    assert_eq!(stats.busy_replies, stats.credit_replies);
    match codec {
        WireCodec::Raw => assert_eq!(stats.wire_audio_bytes, stats.raw_audio_bytes),
        WireCodec::I16Delta => assert!(
            stats.compression_ratio() >= 3.5,
            "fleet compression only {:.2}x",
            stats.compression_ratio()
        ),
    }
    decisions
}

/// The same fleet without any transport: voucher sessions fed directly,
/// reports routed by hand, hub scanned on the service.
fn direct_decisions(feeds: usize) -> Vec<AuthDecision> {
    let mut service = AuthService::new(PianoConfig::with_threshold(1.0));
    let mut rng = ChaCha8Rng::seed_from_u64(SEED);
    let config = service.config().action.clone();
    let mut ids = Vec::with_capacity(feeds);
    let mut vouchers = Vec::with_capacity(feeds);
    for _ in 0..feeds {
        let id = service.open_session(false, &mut rng);
        let challenge = service.poll_transmit(id).expect("challenge");
        let mut voucher = AuthSession::voucher_with(Arc::clone(service.detector()));
        let rec = feed_recording(&challenge, &config);
        voucher.handle_message(challenge).expect("challenge ok");
        for chunk in rec.chunks(1_024) {
            let _ = voucher.push_audio(chunk);
        }
        let _ = voucher.finish_audio();
        let report = voucher.poll_transmit().expect("report");
        service.handle_message(id, report).expect("routed");
        ids.push(id);
        vouchers.push(voucher);
    }
    let hub = hub_recording_for(&service, &ids);
    for chunk in hub.chunks(16_384) {
        let _ = service.push_audio(chunk);
    }
    let _ = service.finish_audio();
    ids.iter()
        .map(|id| service.decision(*id).expect("decided").clone())
        .collect()
}

#[test]
fn framed_stream_survives_any_transport_segmentation() {
    // One thread writes a frame stream in awkward slices; the peer
    // reassembles. Every message must arrive intact and in order.
    let msgs: Vec<Message> = (0..40)
        .map(|i| match i % 4 {
            0 => Message::AudioChunk {
                session: 9,
                seq: i as u32,
                samples: vec![i as f64; 100 + i].into(),
            },
            1 => Message::AudioBatchI16 {
                session: 9,
                start_seq: i as u32,
                chunks: vec![(0..50 + i).map(|j| (j * 31) as i16).collect::<Vec<i16>>()].into(),
            },
            2 => Message::Busy {
                session: 9,
                buffered_samples: i as u64,
                high_water: 1,
            },
            _ => Message::StreamEnd { session: i as u64 },
        })
        .collect();
    let stream: Vec<u8> = msgs.iter().flat_map(|m| m.encode_framed()).collect();
    let (mut client, mut server) = memory_pair();
    let writer = {
        let stream = stream.clone();
        std::thread::spawn(move || {
            // Deterministically awkward slice lengths: 1, 2, …, 17, 1, …
            let mut pos = 0;
            let mut step = 1;
            while pos < stream.len() {
                let end = (pos + step).min(stream.len());
                client.write_all(&stream[pos..end]).unwrap();
                pos = end;
                step = step % 17 + 1;
            }
            client
        })
    };
    let mut reader = FrameReader::new();
    let mut got = Vec::new();
    let mut buf = [0u8; 97];
    while got.len() < msgs.len() {
        let n = server.read_some(&mut buf).unwrap();
        assert!(n > 0, "stream ended early");
        reader.push(&buf[..n]);
        while let Some(m) = reader.next_frame().unwrap() {
            got.push(m);
        }
    }
    assert_eq!(got, msgs);
    drop(writer.join().unwrap());
}

#[test]
fn fleet_runs_under_the_env_selected_codec() {
    // The CI matrix sets PIANO_WIRE_CODEC ∈ {off, i16-delta}; this fleet
    // negotiates whatever the environment selected, so the suite's wire
    // traffic genuinely differs between matrix entries.
    let codec = WireCodec::from_env();
    let decisions = transport_decisions(3, codec);
    assert!(decisions.iter().all(AuthDecision::is_granted));
}

#[test]
fn server_loop_decisions_match_direct_ingestion_for_100_feeds() {
    const FEEDS: usize = 100;
    let direct = direct_decisions(FEEDS);
    for d in &direct {
        match d {
            AuthDecision::Granted { distance_m } => {
                assert!(
                    (distance_m - 0.5).abs() < 0.1,
                    "direct distance {distance_m}"
                )
            }
            other => panic!("direct path denied: {other:?}"),
        }
    }
    let raw = transport_decisions(FEEDS, WireCodec::Raw);
    let compressed = transport_decisions(FEEDS, WireCodec::I16Delta);
    assert_eq!(raw, direct, "codec-off transport diverged from direct");
    assert_eq!(
        compressed, direct,
        "i16-delta transport diverged from direct"
    );
}

#[test]
fn poisoned_connection_is_dropped_alone() {
    const GOOD: usize = 3;
    let server = fresh_server(6_000, 2_048);
    let (connector, mut listener) = memory_hub();
    let config = server.with_service(|s| s.config().action.clone());

    // One malicious client: a valid handshake, then garbage bytes.
    let mut server_threads = Vec::new();
    let bad_transport = connector.connect().unwrap();
    {
        let conn = listener.accept_conn().unwrap();
        let server_clone = server.clone();
        server_threads.push(std::thread::spawn(move || server_clone.serve(conn)));
    }
    let mut bad = FeedHandle::connect(bad_transport, &[WireCodec::I16Delta]).unwrap();
    let bad_thread = std::thread::spawn(move || {
        // One honest batch, then an oversized length prefix — the
        // receiver's reader poisons and the connection is dropped.
        bad.send_batch(&[vec![1.0; 512]]).unwrap();
        bad.into_transport()
            .write_all(&u32::MAX.to_le_bytes())
            .unwrap();
    });

    let mut good_handles = Vec::new();
    for _ in 0..GOOD {
        let transport = connector.connect().unwrap();
        let conn = listener.accept_conn().unwrap();
        let server_clone = server.clone();
        server_threads.push(std::thread::spawn(move || server_clone.serve(conn)));
        good_handles.push(FeedHandle::connect(transport, &[WireCodec::I16Delta]).unwrap());
    }
    let good_threads: Vec<_> = good_handles
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).unwrap();
                feed.finish().unwrap();
                feed.await_decision().unwrap()
            })
        })
        .collect();

    bad_thread.join().unwrap();
    // The dropped connection counts toward the wait, so waiting on the
    // full connection count cannot hang; only the healthy feeds report.
    assert_eq!(server.wait_for_reports(GOOD + 1), GOOD);
    let hub = hub_recording(&server);
    let decided = server.scan_and_decide(&hub, 16_384);
    assert_eq!(decided, GOOD, "the healthy feeds all decide");
    for t in good_threads {
        assert!(t.join().unwrap().is_granted(), "healthy feed granted");
    }
    let outcomes: Vec<_> = server_threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    assert_eq!(outcomes.iter().filter(|o| o.is_none()).count(), 1);
    let stats = server.stats();
    assert_eq!(stats.connections, (GOOD + 1) as u64);
    assert_eq!(stats.connections_dropped, 1);
    assert_eq!(stats.sessions_decided, GOOD as u64);
}

#[test]
fn sender_ignoring_busy_past_the_hard_limit_is_dropped() {
    // A tiny high-water mark and a drain rate of one sample per turn: the
    // rogue sender outruns the scan and blows through the hard limit.
    let server = fresh_server(500, 1);
    let (connector, mut listener) = memory_hub();
    let transport = connector.connect().unwrap();
    let conn = listener.accept_conn().unwrap();
    let server_clone = server.clone();
    let server_thread = std::thread::spawn(move || server_clone.serve(conn));
    let feed = FeedHandle::connect(transport, &[WireCodec::Raw]).unwrap();
    let session = feed.session();
    // Bypass the handle's pacing: write max-size batches directly,
    // never reading Busy.
    let mut t = feed.into_transport();
    let chunk = vec![1.0f64; piano::core::wire::MAX_AUDIO_CHUNK_SAMPLES];
    let mut seq = 0u32;
    let sent = loop {
        let msg = Message::AudioBatch {
            session,
            start_seq: seq,
            chunks: vec![chunk.clone(); 4].into(),
        };
        seq += 4;
        if t.write_all(&msg.encode_framed()).is_err() {
            // The server dropped us: the pipe is closed.
            break seq;
        }
        if seq > 64 {
            break seq; // plenty past the hard limit either way
        }
    };
    assert!(sent > 4, "more than one batch went out");
    assert!(
        server_thread.join().unwrap().is_none(),
        "connection dropped"
    );
    assert_eq!(server.stats().connections_dropped, 1);
}

#[test]
fn tcp_loopback_smoke_or_skip() {
    let Some((mut listener, addr)) = tcp_loopback() else {
        eprintln!("skipping: loopback TCP unavailable in this environment");
        return;
    };
    const FEEDS: usize = 2;
    let server = fresh_server(6_000, 2_048);
    let config = server.with_service(|s| s.config().action.clone());
    let mut server_threads = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..FEEDS {
        let transport = std::net::TcpStream::connect(addr).expect("connect loopback");
        let conn = listener.accept_conn().expect("accept loopback");
        let server_clone = server.clone();
        server_threads.push(std::thread::spawn(move || server_clone.serve(conn)));
        handles.push(FeedHandle::connect(transport, &[WireCodec::I16Delta]).expect("handshake"));
    }
    let clients: Vec<_> = handles
        .into_iter()
        .map(|mut feed| {
            let config = config.clone();
            std::thread::spawn(move || {
                let rec = feed_recording(feed.challenge(), &config);
                feed.send_recording(&rec, 1_024, 4).unwrap();
                feed.finish().unwrap();
                feed.await_decision().unwrap()
            })
        })
        .collect();
    assert_eq!(server.wait_for_reports(FEEDS), FEEDS);
    let hub = hub_recording(&server);
    assert_eq!(server.scan_and_decide(&hub, 16_384), FEEDS);
    for c in clients {
        assert!(c.join().unwrap().is_granted());
    }
    for s in server_threads {
        assert!(s.join().unwrap().is_some());
    }
}
