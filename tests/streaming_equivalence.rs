//! Property: feeding ANY chunking of a recording through
//! `StreamingDetector` yields exactly the `Detection` (location, power,
//! decision) — and the same work accounting — as `Detector::detect` on the
//! full buffer.
//!
//! This is the contract the streaming session API is built on: sans-IO
//! sessions conclude with offline-equivalent results no matter how the
//! host's audio callback slices the stream.

use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::config::ActionConfig;
use piano::core::detect::{Detector, SignalSignature};
use piano::core::signal::ReferenceSignal;
use piano::core::stream::StreamingDetector;

/// Builds a deterministic recording: optional embedded signal plus mild
/// deterministic noise, so cases cover found/absent/below-threshold.
fn build_recording(
    cfg: &ActionConfig,
    signal: &ReferenceSignal,
    len: usize,
    offset: usize,
    gain: f64,
    noise_amp: f64,
    noise_seed: u64,
) -> Vec<f64> {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(noise_seed);
    let mut rec: Vec<f64> = (0..len)
        .map(|_| rng.gen_range(-1.0..1.0) * noise_amp)
        .collect();
    if gain > 0.0 && len >= cfg.signal_len {
        let offset = offset.min(len - cfg.signal_len);
        for (i, &v) in signal.waveform().iter().enumerate() {
            rec[offset + i] += v * gain;
        }
    }
    rec
}

/// Feeds `rec` through a streaming scan using `chunks` cyclically for the
/// split sizes (uneven tail included), then finishes.
fn stream_result(
    detector: &Arc<Detector>,
    sig: &SignalSignature,
    rec: &[f64],
    chunks: &[usize],
) -> piano::core::detect::ScanResult {
    let mut s = StreamingDetector::new(Arc::clone(detector), vec![sig.clone()]);
    let mut pos = 0usize;
    let mut k = 0usize;
    while pos < rec.len() {
        let take = chunks[k % chunks.len()].clamp(1, rec.len() - pos);
        let _ = s.push(&rec[pos..pos + take]);
        pos += take;
        k += 1;
    }
    s.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_chunking_matches_offline_detection(
        // Chunk sizes 1..4096, arbitrary uneven pattern cycled over the stream.
        chunks in proptest::collection::vec(1usize..4096, 1..6),
        len in 3000usize..24_000,
        offset_frac in 0.0f64..1.0,
        gain_sel in 0usize..4,
        sig_seed in 0u64..1_000,
    ) {
        let cfg = ActionConfig::default();
        let detector = Arc::new(Detector::new(&cfg));
        let signal = ReferenceSignal::random(&cfg, &mut ChaCha8Rng::seed_from_u64(sig_seed));
        let signature = SignalSignature::of(&signal, &cfg);
        // 0: absent, 1: below the α floor, 2: borderline, 3: clean.
        let gain = [0.0, 0.05, 0.12, 0.4][gain_sel];
        let offset = ((len as f64) * offset_frac) as usize;
        let rec = build_recording(&cfg, &signal, len, offset, gain, 0.01, sig_seed ^ 0xA5);

        let offline = detector.detect_many(&rec, &[&signature]);
        let streamed = stream_result(&detector, &signature, &rec, &chunks);
        prop_assert_eq!(streamed, offline);
    }

    #[test]
    fn single_sample_chunking_matches_offline(
        len in 4096usize..9000,
        sig_seed in 0u64..100,
    ) {
        // The pathological 1-sample split, on short recordings to keep the
        // case affordable.
        let cfg = ActionConfig::default();
        let detector = Arc::new(Detector::new(&cfg));
        let signal = ReferenceSignal::random(&cfg, &mut ChaCha8Rng::seed_from_u64(sig_seed));
        let signature = SignalSignature::of(&signal, &cfg);
        let rec = build_recording(&cfg, &signal, len, len / 3, 0.3, 0.005, sig_seed);

        let offline = detector.detect_many(&rec, &[&signature]);
        let streamed = stream_result(&detector, &signature, &rec, &[1]);
        prop_assert_eq!(streamed, offline);
    }
}
