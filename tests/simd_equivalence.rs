//! Differential kernel-conformance suite for the SIMD dispatch layer.
//!
//! The numerical contract (`piano_dsp::simd` module docs) is that every
//! shipped SIMD backend is **bit-identical** to the scalar reference for
//! all three vectorized kernels — the radix-2 butterfly stages (complex
//! and real-input FFT paths), the sliding-DFT nominal-step advance, and
//! the Goertzel bank. This suite proves it with `f64::to_bits` equality
//! over proptest-generated inputs:
//!
//! * complex + real FFTs across every power-of-two size 1..=16384,
//! * Goertzel banks of 1..=64 bins,
//! * sliding-DFT runs of ≥ 10⁴ slide steps,
//!
//! and ties the three implementations together with the retained
//! `forward_reference` differential (seed kernel ≈ scalar ≈ SIMD).
//!
//! Backends the running CPU lacks are skipped (they are unconstructible
//! here — `set_backend` refuses them); the scalar reference is never
//! skipped, so the suite is meaningful even on hardware with no SIMD at
//! all. Every check pins explicit backends via the `*_with` entry
//! points, so this file mutates no process-wide state and parallel test
//! threads cannot interfere.

use piano::dsp::fft::{fft_real_padded, FftPlan, RealFftPlan};
use piano::dsp::simd::{self, DspBackend};
use piano::dsp::sparse::{goertzel_power, GoertzelBank, SlidingDft};
use piano::dsp::Complex64;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The SIMD backends this CPU can run (scalar excluded: it is the
/// reference each one is compared against).
fn simd_backends() -> Vec<DspBackend> {
    simd::available_backends()
        .into_iter()
        .filter(|&b| b != DspBackend::Scalar)
        .collect()
}

fn assert_bits_eq(got: &[Complex64], want: &[Complex64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.re.to_bits(), w.re.to_bits(), "{ctx}: re of element {i}");
        assert_eq!(g.im.to_bits(), w.im.to_bits(), "{ctx}: im of element {i}");
    }
}

fn assert_f64_bits_eq(got: &[f64], want: &[f64], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{ctx}: element {i}");
    }
}

fn complex_signal(rng: &mut ChaCha8Rng, n: usize) -> Vec<Complex64> {
    (0..n)
        .map(|_| Complex64::new(rng.gen_range(-1e3..1e3), rng.gen_range(-1e3..1e3)))
        .collect()
}

fn real_signal(rng: &mut ChaCha8Rng, n: usize) -> Vec<f64> {
    (0..n).map(|_| rng.gen_range(-1e3..1e3)).collect()
}

#[test]
fn scalar_reference_is_never_skipped() {
    // The suite's floor: scalar is always available and always the
    // reference, and the active backend is always one the CPU can run.
    let available = simd::available_backends();
    assert!(available.contains(&DspBackend::Scalar));
    assert!(simd::active_backend().is_available());
    // Forcing an unavailable backend is refused, so "auto-skip" here can
    // only ever drop genuinely unavailable SIMD paths.
    for b in DspBackend::ALL {
        assert_eq!(simd::set_backend(b).is_ok(), b.is_available());
    }
    simd::reset_backend_from_env();
}

#[test]
fn env_override_semantics_are_pinned() {
    // The CI matrix forces PIANO_DSP_SIMD ∈ {off, auto}; pin what every
    // value means without mutating this process's environment.
    assert_eq!(simd::backend_for_env_value(Some("off")), DspBackend::Scalar);
    assert_eq!(simd::backend_for_env_value(None), simd::best_backend());
    assert_eq!(
        simd::backend_for_env_value(Some("auto")),
        simd::best_backend()
    );
    // A named backend is honored iff available, else scalar — never a
    // silently different SIMD path.
    for b in [DspBackend::Sse2, DspBackend::Avx2, DspBackend::Neon] {
        let expect = if b.is_available() {
            b
        } else {
            DspBackend::Scalar
        };
        assert_eq!(simd::backend_for_env_value(Some(b.name())), expect);
    }
    assert_eq!(
        simd::backend_for_env_value(Some("not-a-backend")),
        DspBackend::Scalar
    );
}

proptest! {
    /// Complex forward/inverse transform: every SIMD backend is
    /// bit-identical to scalar at every power-of-two size 1..=16384, and
    /// the scalar kernel still matches the retained seed kernel
    /// (`forward_reference`) — so all three implementations agree.
    #[test]
    fn complex_fft_backends_match_scalar_bitwise(
        bits in 0u32..=14,
        seed in any::<u64>(),
    ) {
        let n = 1usize << bits;
        let plan = FftPlan::new(n);
        let input = complex_signal(&mut ChaCha8Rng::seed_from_u64(seed), n);

        let mut scalar = input.clone();
        plan.forward_with(&mut scalar, DspBackend::Scalar);
        let mut reference = input.clone();
        plan.forward_reference(&mut reference);
        for (a, b) in scalar.iter().zip(&reference) {
            prop_assert!(
                (*a - *b).abs() < 1e-9 * (1.0 + b.abs()),
                "scalar vs seed reference at size {}: {} vs {}", n, a, b
            );
        }

        let mut scalar_inv = scalar.clone();
        plan.inverse_with(&mut scalar_inv, DspBackend::Scalar);
        for backend in simd_backends() {
            let mut buf = input.clone();
            plan.forward_with(&mut buf, backend);
            assert_bits_eq(&buf, &scalar, &format!("{backend} forward n={n}"));
            plan.inverse_with(&mut buf, backend);
            assert_bits_eq(&buf, &scalar_inv, &format!("{backend} inverse n={n}"));
        }
    }

    /// Real-input path (the detector's hot transform): full spectrum and
    /// power outputs are bit-identical to scalar on every backend, and
    /// scalar matches the padded-complex reference to rounding.
    #[test]
    fn real_fft_backends_match_scalar_bitwise(
        bits in 1u32..=14,
        seed in any::<u64>(),
    ) {
        let n = 1usize << bits;
        let plan = RealFftPlan::new(n);
        let input = real_signal(&mut ChaCha8Rng::seed_from_u64(seed), n);

        let (mut scratch, mut spec_scalar, mut pow_scalar) = (Vec::new(), Vec::new(), Vec::new());
        plan.forward_full_with(&input, &mut scratch, &mut spec_scalar, DspBackend::Scalar);
        plan.power_into_with(&input, &mut scratch, &mut pow_scalar, DspBackend::Scalar);

        let padded = fft_real_padded(&input);
        let scale = 1.0 + padded.iter().map(|z| z.abs()).fold(0.0, f64::max);
        for (a, b) in spec_scalar.iter().zip(&padded) {
            prop_assert!((*a - *b).abs() < 1e-9 * scale, "scalar vs padded: {} vs {}", a, b);
        }

        for backend in simd_backends() {
            let (mut spec, mut pow) = (Vec::new(), Vec::new());
            plan.forward_full_with(&input, &mut scratch, &mut spec, backend);
            assert_bits_eq(&spec, &spec_scalar, &format!("{backend} spectrum n={n}"));
            plan.power_into_with(&input, &mut scratch, &mut pow, backend);
            assert_f64_bits_eq(&pow, &pow_scalar, &format!("{backend} power n={n}"));
        }
    }

    /// Goertzel banks of 1..=64 bins over arbitrary signal lengths:
    /// bit-identical to scalar per backend, and the scalar bank matches
    /// the standalone single-bin recurrence.
    #[test]
    fn goertzel_bank_backends_match_scalar_bitwise(
        n in 1usize..=2048,
        n_bins in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let signal = real_signal(&mut rng, n);
        // Bins may exceed the signal length (mirror-bin indexing).
        let bins: Vec<usize> = (0..n_bins).map(|_| rng.gen_range(0..2 * n)).collect();
        let bank = GoertzelBank::new(n, bins.clone());

        let mut scalar = Vec::new();
        bank.powers_into_with(&signal, &mut scalar, DspBackend::Scalar);
        for (&b, &p) in bins.iter().zip(&scalar) {
            let single = goertzel_power(&signal, b);
            prop_assert_eq!(
                p.to_bits(), single.to_bits(),
                "scalar bank must be the single-bin recurrence at bin {}", b
            );
        }

        for backend in simd_backends() {
            let mut powers = Vec::new();
            bank.powers_into_with(&signal, &mut powers, backend);
            assert_f64_bits_eq(&powers, &scalar, &format!("{backend} bank n={n}"));
        }
    }

    /// Sliding DFT advanced in lockstep per backend: nominal steps and
    /// the clamped irregular final step, arbitrary window sizes, steps,
    /// and bin counts (including odd counts exercising remainder lanes).
    #[test]
    fn sliding_dft_backends_match_scalar_bitwise(
        bits in 2u32..=12,
        step in 1usize..=16,
        n_bins in 1usize..=64,
        steps in 1usize..=64,
        seed in any::<u64>(),
    ) {
        let n = 1usize << bits;
        let step = step.min(n); // a slide cannot exceed the window
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let bins: Vec<usize> = (0..n_bins).map(|_| rng.gen_range(0..2 * n)).collect();
        let rec = real_signal(&mut rng, n + step * steps + step / 2 + 1);

        let mut scalar = SlidingDft::new(n, step, bins.clone());
        scalar.init_with(&rec[..n], DspBackend::Scalar);
        let mut trackers: Vec<(DspBackend, SlidingDft)> = simd_backends()
            .into_iter()
            .map(|b| {
                let mut s = SlidingDft::new(n, step, bins.clone());
                s.init_with(&rec[..n], b);
                s
                    .state()
                    .iter()
                    .zip(scalar.state())
                    .for_each(|(g, w)| {
                        assert_eq!(g.re.to_bits(), w.re.to_bits(), "{b} init");
                        assert_eq!(g.im.to_bits(), w.im.to_bits(), "{b} init");
                    });
                (b, s)
            })
            .collect();

        let mut j = 0;
        for _ in 0..steps {
            scalar.advance_with(&rec[j..j + step], &rec[j + n..j + n + step], DspBackend::Scalar);
            for (b, s) in trackers.iter_mut() {
                s.advance_with(&rec[j..j + step], &rec[j + n..j + n + step], *b);
                assert_bits_eq(s.state(), scalar.state(), &format!("{b} at offset {j}"));
            }
            j += step;
        }
        // Irregular (clamped) final step, shorter than the nominal one.
        let last = step / 2 + 1;
        if last < step {
            scalar.advance_with(&rec[j..j + last], &rec[j + n..j + n + last], DspBackend::Scalar);
            for (b, s) in trackers.iter_mut() {
                s.advance_with(&rec[j..j + last], &rec[j + n..j + n + last], *b);
                assert_bits_eq(s.state(), scalar.state(), &format!("{b} irregular step"));
            }
        }
    }
}

/// The satellite's depth requirement: a sliding-DFT run of ≥ 10⁴ slide
/// steps stays bit-identical to scalar on every backend at *every* step,
/// and the final state still matches a fresh transform to rounding (the
/// incremental update is exact, so drift stays far below thresholds).
#[test]
fn sliding_dft_stays_bitwise_scalar_over_ten_thousand_steps() {
    let n = 256;
    let step = 4;
    const STEPS: usize = 10_000;
    // Seven bins: odd count exercises every backend's remainder lane.
    let bins = vec![0usize, 3, 17, 100, 128, 200, 255];
    let mut rng = ChaCha8Rng::seed_from_u64(0x51D_57E9);
    let rec: Vec<f64> = (0..n + step * STEPS)
        .map(|_| rng.gen_range(-100.0..100.0))
        .collect();

    let mut scalar = SlidingDft::new(n, step, bins.clone());
    scalar.init_with(&rec[..n], DspBackend::Scalar);
    let mut trackers: Vec<(DspBackend, SlidingDft)> = simd_backends()
        .into_iter()
        .map(|b| {
            let mut s = SlidingDft::new(n, step, bins.clone());
            s.init_with(&rec[..n], b);
            (b, s)
        })
        .collect();

    let mut j = 0;
    for k in 0..STEPS {
        scalar.advance_with(
            &rec[j..j + step],
            &rec[j + n..j + n + step],
            DspBackend::Scalar,
        );
        for (b, s) in trackers.iter_mut() {
            s.advance_with(&rec[j..j + step], &rec[j + n..j + n + step], *b);
            assert_bits_eq(s.state(), scalar.state(), &format!("{b} at step {k}"));
        }
        j += step;
    }
    assert_eq!(j, step * STEPS, "must have slid 10^4 steps");

    // After 10^4 incremental updates the scalar (and therefore every
    // backend's) state still matches a fresh transform of the final
    // window to rounding.
    let spec = piano::dsp::fft::fft_real(&rec[j..j + n]);
    for (i, &b) in bins.iter().enumerate() {
        let got = scalar.state()[i];
        let expect = spec[b % n];
        assert!(
            (got - expect).abs() < 1e-5 * (1.0 + expect.abs()),
            "bin {b}: {got} vs {expect}"
        );
    }
}
