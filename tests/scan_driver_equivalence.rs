//! Conformance property: for ANY chunking of a recording and ANY worker
//! count, the thread-pool [`ScanDriver`] produces exactly the serial
//! `StreamingDetector` behavior — the same provisional `StreamEvent`s in
//! the same order, the same per-signature early-detection state, and a
//! bit-identical `finish()` result (locations, powers, work accounting).
//!
//! This is the contract that makes the worker pool a pure throughput
//! knob: `AuthService` can size its pool per deployment (or per the
//! `PIANO_SCAN_WORKERS` environment knob the CI matrix pins) without any
//! observable change in authentication behavior.

use std::sync::Arc;

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use piano::core::config::ActionConfig;
use piano::core::detect::{Detector, SignalSignature};
use piano::core::signal::ReferenceSignal;
use piano::core::stream::{EarlyDetection, ScanDriver, StreamEvent, StreamingDetector};

/// Worker counts the conformance suite pins (serial, even, round, prime).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Builds a deterministic recording with up to two embedded signals plus
/// mild deterministic noise.
fn build_recording(
    cfg: &ActionConfig,
    signals: &[(&ReferenceSignal, usize, f64)],
    len: usize,
    noise_amp: f64,
    noise_seed: u64,
) -> Vec<f64> {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(noise_seed);
    let mut rec: Vec<f64> = (0..len)
        .map(|_| rng.gen_range(-1.0..1.0) * noise_amp)
        .collect();
    for &(signal, offset, gain) in signals {
        if gain > 0.0 && len >= cfg.signal_len {
            let offset = offset.min(len - cfg.signal_len);
            for (i, &v) in signal.waveform().iter().enumerate() {
                rec[offset + i] += v * gain;
            }
        }
    }
    rec
}

/// Everything observable about one streaming run.
#[derive(Debug, PartialEq)]
struct RunTrace {
    events: Vec<(usize, StreamEvent)>,
    early: Vec<Option<EarlyDetection>>,
    early_fine_evals: usize,
    result: piano::core::detect::ScanResult,
}

/// Streams `rec` through a scan under `driver`, slicing with `chunks`
/// cyclically, and records the full observable trace.
fn run_trace(
    detector: &Arc<Detector>,
    sigs: &[SignalSignature],
    rec: &[f64],
    chunks: &[usize],
    driver: ScanDriver,
) -> RunTrace {
    let mut s = StreamingDetector::new(Arc::clone(detector), sigs.to_vec());
    let mut events = Vec::new();
    let mut pos = 0usize;
    let mut k = 0usize;
    while pos < rec.len() {
        let take = chunks[k % chunks.len()].clamp(1, rec.len() - pos);
        for ev in driver.drive(&mut s, &rec[pos..pos + take]) {
            events.push((pos + take, ev));
        }
        pos += take;
        k += 1;
    }
    let early = (0..sigs.len())
        .map(|i| s.early_detection(i).copied())
        .collect();
    RunTrace {
        events,
        early,
        early_fine_evals: s.early_fine_evals(),
        result: s.finish(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_worker_count_matches_the_serial_streaming_scan(
        // Up to ~0.37 s ticks: small ticks take the inline fallback,
        // large ones genuinely shard — both must match serial exactly.
        chunks in proptest::collection::vec(1usize..16_384, 1..5),
        len in 9000usize..30_000,
        offset_a_frac in 0.0f64..1.0,
        offset_v_frac in 0.0f64..1.0,
        gain_sel in 0usize..4,
        sig_seed in 0u64..1_000,
    ) {
        let cfg = ActionConfig::default();
        let detector = Arc::new(Detector::new(&cfg));
        let sa = ReferenceSignal::random(&cfg, &mut ChaCha8Rng::seed_from_u64(sig_seed));
        let sv = ReferenceSignal::random(&cfg, &mut ChaCha8Rng::seed_from_u64(sig_seed ^ 0x5A5A));
        let sigs = vec![SignalSignature::of(&sa, &cfg), SignalSignature::of(&sv, &cfg)];
        // 0: both absent, 1: below the α floor, 2: borderline, 3: clean.
        let gain = [0.0, 0.05, 0.12, 0.4][gain_sel];
        let rec = build_recording(
            &cfg,
            &[
                (&sa, ((len as f64) * offset_a_frac) as usize, gain),
                (&sv, ((len as f64) * offset_v_frac) as usize, gain),
            ],
            len,
            0.01,
            sig_seed ^ 0xC3,
        );

        let serial = run_trace(&detector, &sigs, &rec, &chunks, ScanDriver::serial());
        // The serial streaming scan itself is pinned to the offline result
        // elsewhere (tests/streaming_equivalence.rs); here every pool
        // width must reproduce the serial trace bit for bit.
        for workers in WORKER_COUNTS {
            let sharded = run_trace(&detector, &sigs, &rec, &chunks, ScanDriver::new(workers));
            prop_assert_eq!(&sharded, &serial, "workers = {}", workers);
        }
    }

    #[test]
    fn sharded_finish_matches_the_offline_scan(
        chunk in 1usize..16_000,
        len in 9000usize..24_000,
        offset_frac in 0.0f64..1.0,
        sig_seed in 0u64..500,
    ) {
        // Transitively: driver ≡ serial streaming ≡ offline. Checked
        // directly here so a regression in either leg cannot mask the other.
        let cfg = ActionConfig::default();
        let detector = Arc::new(Detector::new(&cfg));
        let signal = ReferenceSignal::random(&cfg, &mut ChaCha8Rng::seed_from_u64(sig_seed));
        let sigs = vec![SignalSignature::of(&signal, &cfg)];
        let rec = build_recording(
            &cfg,
            &[(&signal, ((len as f64) * offset_frac) as usize, 0.3)],
            len,
            0.005,
            sig_seed,
        );
        let offline = detector.detect_many(&rec, &[&sigs[0]]);
        let sharded = run_trace(&detector, &sigs, &rec, &[chunk], ScanDriver::new(4));
        prop_assert_eq!(sharded.result, offline);
    }
}

#[test]
fn driver_from_env_respects_the_worker_knob() {
    // This test owns the env var within this test binary; the proptests
    // above never read it (they pin worker counts explicitly).
    std::env::set_var(piano::core::stream::SCAN_WORKERS_ENV, "3");
    assert_eq!(ScanDriver::from_env().workers(), 3);
    std::env::set_var(piano::core::stream::SCAN_WORKERS_ENV, "not-a-number");
    let fallback = ScanDriver::from_env().workers();
    assert!(fallback >= 1, "malformed values fall back to parallelism");
    std::env::remove_var(piano::core::stream::SCAN_WORKERS_ENV);
    assert!(ScanDriver::from_env().workers() >= 1);
}
