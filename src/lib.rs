//! # PIANO — Proximity-based User Authentication on Voice-Powered IoT Devices
//!
//! A full Rust reproduction of *Gong et al., ICDCS 2017*
//! (arXiv:1704.03118): proximity-based user authentication built on
//! **ACTION**, a secure two-way acoustic ranging protocol using
//! frequency-domain randomized reference signals.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`piano_core`] — the protocol itself: reference signals, the
//!   frequency-based detector (Algorithms 1 & 2), two-way ranging (Eq. 3),
//!   the streaming session API (the sans-IO `AuthSession` state machine
//!   and the multi-tenant `AuthService`) and the FRR/FAR model.
//! * [`piano_acoustics`] — the simulated physical layer: propagation,
//!   environments, device hardware, clocks, energy/timing cost models.
//! * [`piano_bluetooth`] — pairing and the range-gated secure channel.
//! * [`piano_attacks`] — the paper's threat models (zero-effort, guessing
//!   replay, all-frequency spoofing) and the guessing analysis.
//! * [`piano_baselines`] — ACTION-CC and Echo-Secure (Fig. 2b), plus an
//!   ambience comparator.
//! * [`piano_eval`] — experiment harness regenerating every table/figure.
//! * [`piano_net`] — the transport subsystem: byte-stream transports
//!   (in-memory duplex + loopback TCP), the deadline-supervised
//!   thread-per-connection ingest `ServerLoop` (suspend/resume,
//!   overload shedding), the credit-paced client `FeedHandle` with its
//!   reconnect-and-resume `ResilientFeed` wrapper, the seeded
//!   fault-injection `FaultyTransport`, and the i16 delta PCM codec
//!   layer.
//!
//! # Quickstart
//!
//! ```
//! use piano::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(1);
//!
//! // A user's smartwatch vouches for their phone.
//! let phone = Device::phone(1, Position::ORIGIN, 11);
//! let watch = Device::phone(2, Position::new(0.4, 0.0, 0.0), 22);
//!
//! let mut service = AuthService::new(PianoConfig::default());
//! service.register(&phone, &watch, &mut rng); // once, at setup
//!
//! let mut office = AcousticField::new(Environment::office(), 7);
//! let decision = service.authenticate_pair(&mut office, &phone, &watch, 0.0, &mut rng);
//! assert!(decision.is_granted());
//! ```

#![forbid(unsafe_code)]

pub use piano_acoustics as acoustics;
pub use piano_attacks as attacks;
pub use piano_baselines as baselines;
pub use piano_bluetooth as bluetooth;
pub use piano_core as core;
pub use piano_dsp as dsp;
pub use piano_eval as eval;
pub use piano_net as net;

/// The names most programs need, in one import.
pub mod prelude {
    pub use piano_acoustics::{
        AcousticField, AudioBuffer, DeviceClock, Environment, MicrophoneModel, Position,
        SpeakerModel, Wall,
    };
    pub use piano_bluetooth::{BluetoothLink, DeviceId, PairingRegistry};
    pub use piano_core::action::{run_action, run_session_pair, ActionOutcome, DistanceEstimate};
    pub use piano_core::config::ActionConfig;
    pub use piano_core::continuous::{ContinuousScheduler, ContinuousSession, SessionPolicy};
    pub use piano_core::device::Device;
    pub use piano_core::piano::{AuthDecision, DenialReason, PianoAuthenticator, PianoConfig};
    pub use piano_core::signal::{ReferenceSignal, SignalSampler};
    pub use piano_core::stream::{
        AuthService, AuthSession, ScanDriver, SessionEvent, SessionId, SessionPhase,
        ShardedAuthService, StreamingDetector,
    };
    pub use piano_core::stream::{DropCause, DropCounts, ServiceStats};
    pub use piano_core::wire::{FrameReader, IngestFeed, Message, WireCodec};
    pub use piano_dsp::simd::DspBackend;
    pub use piano_net::{
        FaultPlan, FaultyTransport, FeedHandle, ReactorServer, ResilientFeed, RetryPolicy,
        ServerConfig, ServerLoop,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exports_compile() {
        use crate::prelude::*;
        let _ = Position::ORIGIN;
        let _ = PianoConfig::default();
        let _ = ActionConfig::default();
    }
}
